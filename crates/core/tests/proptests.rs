//! Property-based tests for the RoboRun runtime: time budgeting, the knob
//! solver and the governor.

use proptest::prelude::*;
use roborun_core::{
    Governor, GovernorConfig, KnobSolver, PipelineLatencyModel, RuntimeMode, SpatialProfile,
    TimeBudgeter, WaypointState,
};
use roborun_geom::Vec3;
use roborun_sim::ComputeLatencyModel;

fn arb_profile() -> impl Strategy<Value = SpatialProfile> {
    (
        0.2f64..6.0,         // velocity
        0.3f64..50.0,        // gap_min
        1.0f64..60.0,        // closest obstacle
        2.0f64..40.0,        // visibility
        100.0f64..60_000.0,  // sensor volume
        100.0f64..200_000.0, // map volume
    )
        .prop_map(
            |(velocity, gap_min, obstacle, visibility, sensor_volume, map_volume)| SpatialProfile {
                position: Vec3::ZERO,
                velocity,
                gap_avg: gap_min * 1.5,
                gap_min,
                closest_obstacle: obstacle,
                closest_unknown: visibility,
                visibility,
                sensor_volume,
                map_volume,
                upcoming_waypoints: Vec::new(),
            },
        )
}

fn model() -> PipelineLatencyModel {
    PipelineLatencyModel::from_simulation(&ComputeLatencyModel::calibrated(), true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn local_budget_monotonicities(v1 in 0.2f64..8.0, v2 in 0.2f64..8.0,
                                   d1 in 1.0f64..40.0, d2 in 1.0f64..40.0) {
        let b = TimeBudgeter::default();
        let (v_lo, v_hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let (d_lo, d_hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        // Faster → never a longer deadline (same visibility).
        prop_assert!(b.local_budget(v_hi, d_lo) <= b.local_budget(v_lo, d_lo) + 1e-9);
        // Clearer → never a shorter deadline (same velocity).
        prop_assert!(b.local_budget(v_lo, d_hi) + 1e-9 >= b.local_budget(v_lo, d_lo));
        // Always within the clamps.
        let budget = b.local_budget(v1, d1);
        prop_assert!(budget >= b.min_budget && budget <= b.max_budget);
    }

    #[test]
    fn global_budget_never_exceeds_benign_accumulation(vel in 0.3f64..5.0, vis in 3.0f64..40.0,
                                                       n in 0usize..10) {
        let b = TimeBudgeter::default();
        let current = WaypointState { position: Vec3::ZERO, velocity: vel, visibility: vis };
        let upcoming: Vec<WaypointState> = (1..=n)
            .map(|i| WaypointState {
                position: Vec3::new(i as f64 * 5.0, 0.0, 0.0),
                velocity: vel,
                visibility: vis,
            })
            .collect();
        let global = b.global_budget(&current, &upcoming);
        prop_assert!(global >= b.min_budget && global <= b.max_budget);
        // Adding a blind, fast waypoint can only shrink the budget.
        let mut worse = upcoming.clone();
        worse.insert(
            0,
            WaypointState { position: Vec3::new(1.0, 0.0, 0.0), velocity: 8.0, visibility: 1.0 },
        );
        let worse_budget = b.global_budget(&current, &worse);
        prop_assert!(worse_budget <= global + 1e-9);
    }

    #[test]
    fn safe_velocity_is_consistent_with_budget(latency in 0.05f64..6.0, vis in 2.0f64..40.0) {
        let b = TimeBudgeter::default();
        let v = b.safe_velocity(latency, vis, 8.0);
        prop_assert!(v >= b.velocity_floor - 1e-9 && v <= 8.0 + 1e-9);
        // At the returned velocity (if above the floor), the budget covers
        // the latency.
        if v > b.velocity_floor + 1e-6 {
            prop_assert!(b.local_budget_raw(v, vis) >= latency - 1e-6);
        }
    }

    #[test]
    fn solver_output_always_valid(profile in arb_profile(), budget in 0.05f64..20.0) {
        let solver = KnobSolver::default();
        let model = model();
        let outcome = solver.solve(budget, &profile, &model);
        // Structural validity (Table II ranges + Eq. 3 orderings).
        prop_assert!(outcome.knobs.validate(&solver.ranges).is_ok());
        // Lattice membership.
        let lattice = solver.ranges.precision_lattice();
        prop_assert!(lattice.iter().any(|&p| (p - outcome.knobs.point_cloud_precision).abs() < 1e-9));
        prop_assert!(lattice.iter().any(|&p| (p - outcome.knobs.map_to_planner_precision).abs() < 1e-9));
        // Predicted latency consistent with the model and the overrun flag.
        let predicted = model.predict(&outcome.knobs);
        prop_assert!((predicted - outcome.predicted_latency).abs() < 1e-9);
        prop_assert_eq!(outcome.budget_exceeded, predicted > budget + 1e-9);
    }

    #[test]
    fn solver_latency_monotone_in_budget(profile in arb_profile(), b1 in 0.05f64..20.0, b2 in 0.05f64..20.0) {
        let solver = KnobSolver::default();
        let model = model();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        let small = solver.solve(lo, &profile, &model);
        let large = solver.solve(hi, &profile, &model);
        // A larger budget never buys a *cheaper* plan than a smaller budget.
        prop_assert!(large.predicted_latency + 1e-9 >= small.predicted_latency);
    }

    #[test]
    fn governor_policies_respect_mode_contract(profile in arb_profile()) {
        let aware = Governor::new(GovernorConfig::default());
        let oblivious = Governor::new(GovernorConfig {
            mode: RuntimeMode::SpatialOblivious,
            ..GovernorConfig::default()
        });
        let p_aware = aware.decide(&profile);
        let p_oblivious = oblivious.decide(&profile);
        prop_assert_eq!(p_aware.mode, RuntimeMode::SpatialAware);
        prop_assert_eq!(p_oblivious.mode, RuntimeMode::SpatialOblivious);
        // The oblivious policy ignores the profile entirely.
        prop_assert_eq!(p_oblivious.knobs, roborun_core::KnobSettings::static_baseline());
        // Both deadlines are positive and bounded.
        prop_assert!(p_aware.deadline > 0.0 && p_aware.deadline <= 30.0 + 1e-9);
        prop_assert!(p_oblivious.deadline > 0.0);
        // The aware policy's precision never exceeds the coarsest lattice level.
        prop_assert!(p_aware.knobs.point_cloud_precision <= 9.6 + 1e-9);
    }

    #[test]
    fn governor_velocity_law_is_monotone(lat1 in 0.05f64..5.0, lat2 in 0.05f64..5.0, vis in 2.0f64..40.0) {
        let gov = Governor::new(GovernorConfig::default());
        let (lo, hi) = if lat1 <= lat2 { (lat1, lat2) } else { (lat2, lat1) };
        prop_assert!(gov.safe_velocity(hi, vis) <= gov.safe_velocity(lo, vis) + 1e-9);
    }
}
