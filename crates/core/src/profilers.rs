//! Profilers: extracting the Table I variables from the pipeline's data
//! structures.
//!
//! | variable profiled                   | pipeline stage                | used for              |
//! |-------------------------------------|-------------------------------|-----------------------|
//! | gap between obstacles               | point cloud                   | precision             |
//! | closest obstacle, closest unknown   | point cloud, OctoMap, smoother| precision, volume, deadline |
//! | sensor, map volume                  | point cloud, OctoMap          | volume                |
//! | velocity, position                  | sensors                       | deadline              |
//! | trajectory                          | smoother                      | deadline              |
//!
//! The profilers only read pipeline data structures (point cloud, occupancy
//! map, trajectory, sensor state) — never the simulator's ground truth — so
//! the governor sees the world exactly the way the real system would.

use crate::budget::WaypointState;
use roborun_env::gaps::aabb_gap;
use roborun_geom::{Aabb, Vec3};
use roborun_perception::{OccupancyMap, PointCloud};
use roborun_planning::Trajectory;
use serde::{Deserialize, Serialize};

/// The spatial state the governor makes its decision from (one row of
/// Table I per field group).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialProfile {
    /// MAV position (metres).
    pub position: Vec3,
    /// MAV speed (m/s).
    pub velocity: f64,
    /// Average gap between nearby observed obstacles (metres).
    pub gap_avg: f64,
    /// Minimum gap between nearby observed obstacles (metres).
    pub gap_min: f64,
    /// Distance to the closest observed obstacle (metres).
    pub closest_obstacle: f64,
    /// Distance to the closest unknown space along the direction of travel
    /// (metres).
    pub closest_unknown: f64,
    /// Visibility estimate used for the deadline (metres): the shorter of
    /// the closest obstacle and closest unknown, capped by sensing range.
    pub visibility: f64,
    /// Volume delivered by the sensors this decision (m³).
    pub sensor_volume: f64,
    /// Volume of known space in the map (m³).
    pub map_volume: f64,
    /// Upcoming waypoints (position, planned speed, expected visibility)
    /// for Algorithm 1.
    pub upcoming_waypoints: Vec<WaypointState>,
}

impl SpatialProfile {
    /// A profile describing completely open space — useful as a governor
    /// input in examples and tests: `velocity` m/s and `visibility` metres,
    /// no obstacles anywhere near.
    pub fn open_space(velocity: f64, visibility: f64) -> Self {
        SpatialProfile {
            position: Vec3::ZERO,
            velocity,
            gap_avg: 100.0,
            gap_min: 100.0,
            closest_obstacle: 100.0,
            closest_unknown: visibility,
            visibility,
            sensor_volume: 5_000.0,
            map_volume: 20_000.0,
            upcoming_waypoints: Vec::new(),
        }
    }

    /// A profile describing a tight, congested aisle: near obstacles, small
    /// gaps, short visibility.
    pub fn congested(velocity: f64, gap: f64, obstacle_distance: f64) -> Self {
        SpatialProfile {
            position: Vec3::ZERO,
            velocity,
            gap_avg: gap * 1.5,
            gap_min: gap,
            closest_obstacle: obstacle_distance,
            closest_unknown: obstacle_distance * 1.5,
            visibility: obstacle_distance,
            sensor_volume: 30_000.0,
            map_volume: 50_000.0,
            upcoming_waypoints: Vec::new(),
        }
    }

    /// The waypoint state corresponding to the MAV's current situation
    /// (W₀ of Algorithm 1).
    pub fn current_waypoint(&self) -> WaypointState {
        WaypointState {
            position: self.position,
            velocity: self.velocity,
            visibility: self.visibility,
        }
    }
}

/// Configuration of the profilers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Profilers {
    /// Radius around the MAV within which obstacles are clustered for the
    /// gap analysis (metres).
    pub gap_radius: f64,
    /// Sensing range cap on the visibility estimate (metres).
    pub max_visibility: f64,
    /// Floor on the visibility estimate (metres).
    pub min_visibility: f64,
    /// Sampling step for the unknown-space probe (metres).
    pub probe_step: f64,
    /// Number of upcoming trajectory waypoints handed to Algorithm 1.
    pub waypoint_horizon: usize,
    /// Time spacing between the sampled upcoming waypoints (seconds).
    pub waypoint_spacing: f64,
}

impl Default for Profilers {
    fn default() -> Self {
        Profilers {
            gap_radius: 20.0,
            max_visibility: 40.0,
            min_visibility: 2.0,
            probe_step: 0.5,
            waypoint_horizon: 5,
            waypoint_spacing: 2.0,
        }
    }
}

impl Profilers {
    /// Builds a [`SpatialProfile`] from the pipeline's data structures.
    ///
    /// * `cloud` — this decision's (already down-sampled) point cloud.
    /// * `map` — the occupancy map after integration.
    /// * `trajectory` — the currently followed trajectory, if any.
    /// * `position` / `velocity` — sensor (GPS/IMU) state.
    /// * `heading` — direction of travel used for the unknown-space probe.
    pub fn profile(
        &self,
        cloud: &PointCloud,
        map: &OccupancyMap,
        trajectory: Option<&Trajectory>,
        position: Vec3,
        velocity: f64,
        heading: Vec3,
    ) -> SpatialProfile {
        // --- Gap analysis from the observed obstacle clusters. ---
        let clusters = extract_obstacle_clusters(map, position, self.gap_radius);
        let (gap_min, gap_avg) = cluster_gaps(&clusters);

        // --- Closest obstacle / closest unknown. ---
        let closest_obstacle = map
            .nearest_occupied_distance(position, self.max_visibility)
            .unwrap_or(self.max_visibility);
        let probe_dir = if heading.norm() > 1e-9 {
            heading
        } else {
            Vec3::X
        };
        let closest_unknown =
            map.distance_to_unknown(position, probe_dir, self.max_visibility, self.probe_step);

        // --- Visibility estimate for the deadline. ---
        let visibility = closest_obstacle
            .min(closest_unknown)
            .clamp(self.min_visibility, self.max_visibility);

        // --- Volumes. ---
        // The sensed volume is the extent of this decision's returns,
        // inflated by one metre so a planar wall (zero-thickness AABB) still
        // registers a finite observed volume.
        let sensor_volume = cloud
            .bounds()
            .map(|b| b.inflate(1.0).volume())
            .unwrap_or(0.0);
        let map_volume = map.known_volume();

        // --- Upcoming waypoints from the smoother's trajectory. ---
        let upcoming_waypoints = match trajectory {
            Some(traj) if !traj.is_empty() => (1..=self.waypoint_horizon)
                .filter_map(|i| {
                    let t = i as f64 * self.waypoint_spacing;
                    traj.sample_at(t).map(|sample| {
                        // Expected visibility at a future waypoint: what the
                        // map currently knows about that region.
                        let future_obstacle = map
                            .nearest_occupied_distance(sample.position, self.max_visibility)
                            .unwrap_or(self.max_visibility);
                        WaypointState {
                            position: sample.position,
                            velocity: sample.speed.max(0.1),
                            visibility: future_obstacle
                                .clamp(self.min_visibility, self.max_visibility),
                        }
                    })
                })
                .collect(),
            _ => Vec::new(),
        };

        SpatialProfile {
            position,
            velocity,
            gap_avg,
            gap_min,
            closest_obstacle,
            closest_unknown,
            visibility,
            sensor_volume,
            map_volume,
            upcoming_waypoints,
        }
    }
}

/// Groups occupied voxels near `center` into connected obstacle clusters
/// (26-neighbourhood union-find) and returns each cluster's bounding box.
///
/// To keep the per-decision cost bounded, voxels are first re-keyed at a
/// coarse clustering resolution (≥ 1.2 m); gap estimates therefore carry
/// roughly that granularity, which is ample for the governor's precision
/// constraints.
pub fn extract_obstacle_clusters(map: &OccupancyMap, center: Vec3, radius: f64) -> Vec<Aabb> {
    let cluster_res = map.resolution().max(1.2);
    let mut coarse: std::collections::HashMap<roborun_geom::VoxelKey, Aabb> =
        std::collections::HashMap::new();
    for (_, b) in map
        .occupied_voxels()
        .filter(|(_, b)| b.distance_to_point(center) <= radius)
    {
        let key = roborun_geom::VoxelKey::from_point(b.center(), cluster_res);
        coarse
            .entry(key)
            .and_modify(|acc| *acc = Aabb::union(acc, &b))
            .or_insert(b);
    }
    let nearby: Vec<(roborun_geom::VoxelKey, Aabb)> = coarse.into_iter().collect();
    if nearby.is_empty() {
        return Vec::new();
    }
    // Union-find over voxel indices.
    let mut parent: Vec<usize> = (0..nearby.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..nearby.len() {
        for j in (i + 1)..nearby.len() {
            let (ka, kb) = (nearby[i].0, nearby[j].0);
            if (ka.x - kb.x).abs() <= 1 && (ka.y - kb.y).abs() <= 1 && (ka.z - kb.z).abs() <= 1 {
                let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
    }
    let mut clusters: std::collections::HashMap<usize, Aabb> = std::collections::HashMap::new();
    for (i, (_, bounds)) in nearby.iter().enumerate() {
        let root = find(&mut parent, i);
        clusters
            .entry(root)
            .and_modify(|b| *b = Aabb::union(b, bounds))
            .or_insert(*bounds);
    }
    let mut out: Vec<Aabb> = clusters.into_values().collect();
    out.sort_by(|a, b| {
        a.distance_to_point(center)
            .partial_cmp(&b.distance_to_point(center))
            .expect("distances are never NaN")
    });
    out
}

/// Minimum and average surface-to-surface gap between obstacle clusters.
/// Returns the open-space sentinel (100 m) when fewer than two clusters
/// exist.
fn cluster_gaps(clusters: &[Aabb]) -> (f64, f64) {
    const OPEN: f64 = 100.0;
    if clusters.len() < 2 {
        return (OPEN, OPEN);
    }
    let mut min_gap = f64::INFINITY;
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..clusters.len() {
        for j in (i + 1)..clusters.len() {
            let gap = aabb_gap(&clusters[i], &clusters[j]);
            min_gap = min_gap.min(gap);
            sum += gap;
            pairs += 1;
        }
    }
    ((min_gap).min(OPEN), (sum / pairs as f64).min(OPEN))
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_planning::{smooth_path, SmoothingConfig};

    fn map_from_points(points: Vec<Vec3>) -> OccupancyMap {
        let mut map = OccupancyMap::new(0.3);
        map.integrate_cloud(&PointCloud::new(Vec3::new(0.0, 0.0, 5.0), points), 0.3);
        map
    }

    fn column(x: f64, y: f64) -> Vec<Vec3> {
        (0..10)
            .flat_map(move |k| {
                (0..3).map(move |dy| Vec3::new(x, y + dy as f64 * 0.3, 4.0 + k as f64 * 0.3))
            })
            .collect()
    }

    #[test]
    fn open_space_profile_reports_large_gaps() {
        let profilers = Profilers::default();
        let map = OccupancyMap::new(0.3);
        let cloud = PointCloud::empty(Vec3::new(0.0, 0.0, 5.0));
        let profile = profilers.profile(&cloud, &map, None, Vec3::new(0.0, 0.0, 5.0), 2.0, Vec3::X);
        assert_eq!(profile.gap_min, 100.0);
        assert_eq!(profile.gap_avg, 100.0);
        assert_eq!(profile.closest_obstacle, profilers.max_visibility);
        assert_eq!(profile.sensor_volume, 0.0);
        assert_eq!(profile.map_volume, 0.0);
        // An empty map is all unknown, so the visibility estimate collapses
        // to the floor — the governor must be conservative before it has
        // seen anything.
        assert_eq!(profile.visibility, profilers.min_visibility);
        assert!(profile.upcoming_waypoints.is_empty());
        assert_eq!(profile.current_waypoint().velocity, 2.0);
    }

    #[test]
    fn two_columns_produce_a_measurable_gap() {
        let profilers = Profilers::default();
        // Two pillars ~4 m apart (surface to surface) ahead of the MAV.
        let mut points = column(8.0, -2.5);
        points.extend(column(8.0, 2.2));
        let map = map_from_points(points.clone());
        let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 5.0), points);
        let profile = profilers.profile(&cloud, &map, None, Vec3::new(0.0, 0.0, 5.0), 1.5, Vec3::X);
        assert!(profile.gap_min < 6.0, "gap_min {}", profile.gap_min);
        assert!(profile.gap_min > 2.0, "gap_min {}", profile.gap_min);
        assert!(profile.gap_avg >= profile.gap_min);
        assert!(profile.closest_obstacle < 10.0);
        assert!(profile.visibility <= profile.closest_obstacle);
        assert!(profile.sensor_volume > 0.0);
        assert!(profile.map_volume > 0.0);
    }

    #[test]
    fn single_cluster_reports_open_gap_but_near_obstacle() {
        let profilers = Profilers::default();
        let points = column(6.0, 0.0);
        let map = map_from_points(points.clone());
        let cloud = PointCloud::new(Vec3::new(0.0, 0.0, 5.0), points);
        let profile = profilers.profile(&cloud, &map, None, Vec3::new(0.0, 0.0, 5.0), 1.0, Vec3::X);
        assert_eq!(profile.gap_min, 100.0);
        assert!(profile.closest_obstacle < 7.0);
    }

    #[test]
    fn cluster_extraction_merges_adjacent_voxels() {
        let map = map_from_points(column(8.0, 0.0));
        let clusters = extract_obstacle_clusters(&map, Vec3::new(0.0, 0.0, 5.0), 30.0);
        assert_eq!(clusters.len(), 1, "one pillar must form one cluster");
        let far = extract_obstacle_clusters(&map, Vec3::new(200.0, 0.0, 5.0), 10.0);
        assert!(far.is_empty());
    }

    #[test]
    fn trajectory_produces_upcoming_waypoints() {
        let profilers = Profilers::default();
        let map = map_from_points(column(30.0, 0.0));
        let cloud = PointCloud::empty(Vec3::new(0.0, 0.0, 5.0));
        let traj = smooth_path(
            &[Vec3::new(0.0, 0.0, 5.0), Vec3::new(40.0, 0.0, 5.0)],
            3.0,
            &SmoothingConfig::default(),
        );
        let profile = profilers.profile(
            &cloud,
            &map,
            Some(&traj),
            Vec3::new(0.0, 0.0, 5.0),
            3.0,
            Vec3::X,
        );
        assert!(!profile.upcoming_waypoints.is_empty());
        assert!(profile.upcoming_waypoints.len() <= profilers.waypoint_horizon);
        // Waypoints advance along the trajectory.
        let xs: Vec<f64> = profile
            .upcoming_waypoints
            .iter()
            .map(|w| w.position.x)
            .collect();
        for w in xs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        // Visibility at each waypoint is clamped to the profiler's range.
        for w in &profile.upcoming_waypoints {
            assert!(w.visibility >= profilers.min_visibility);
            assert!(w.visibility <= profilers.max_visibility);
            assert!(w.velocity > 0.0);
        }
    }

    #[test]
    fn preset_profiles_are_sensible() {
        let open = SpatialProfile::open_space(2.5, 40.0);
        assert_eq!(open.visibility, 40.0);
        assert!(open.gap_min > 10.0);
        let tight = SpatialProfile::congested(0.5, 2.0, 3.0);
        assert!(tight.gap_min < open.gap_min);
        assert!(tight.visibility < open.visibility);
    }
}
