//! The governor's fitted per-stage latency models (paper Eq. 4).
//!
//! The paper profiles "a representative set of precision-volume
//! combinations" per stage and fits
//!
//! > `δ_i(p_i, v_i) = (q_{i,0}·p̂³ + q_{i,1}·p̂² + q_{i,2}·p̂)·(q_{i,3}·v_i)`
//!
//! with `p̂ = 1/p`, reporting `<8%` average MSE. The governor then uses the
//! fitted `δ_i` inside the Eq. 3 solver. This module provides both the
//! model itself and the least-squares fitting path, so the reproduction can
//! (a) load the calibrated coefficients directly from the simulation
//! substrate, or (b) re-derive them from profiled samples exactly as the
//! paper does and verify the fit quality.

use crate::KnobSettings;
use roborun_sim::{ComputeLatencyModel, PipelineStage, StageCoefficients};
use serde::{Deserialize, Serialize};

/// A profiled latency sample of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Precision knob (metres).
    pub precision: f64,
    /// Volume knob (m³).
    pub volume: f64,
    /// Observed latency (seconds).
    pub latency: f64,
}

/// The governor's end-to-end latency model: one Eq. 4 model per governed
/// stage plus the pipeline's fixed costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineLatencyModel {
    /// Perception (OctoMap) stage model.
    pub perception: StageCoefficients,
    /// Perception-to-planning stage model.
    pub perception_to_planning: StageCoefficients,
    /// Planning stage model.
    pub planning: StageCoefficients,
    /// Fixed latency independent of the knobs (point cloud + control +
    /// base communication + the runtime's own overhead), seconds.
    pub fixed: f64,
    /// Communication cost per exported cubic metre (seconds per m³).
    pub comm_per_volume: f64,
}

impl PipelineLatencyModel {
    /// Builds the model from the simulation substrate's calibrated ground
    /// truth — the shortcut equivalent of a perfect profiling run.
    pub fn from_simulation(sim: &ComputeLatencyModel, with_runtime_overhead: bool) -> Self {
        PipelineLatencyModel {
            perception: sim.perception,
            perception_to_planning: sim.perception_to_planning,
            planning: sim.planning,
            fixed: sim.point_cloud_fixed
                + sim.control_fixed
                + sim.comm_base
                + if with_runtime_overhead {
                    sim.runtime_overhead
                } else {
                    0.0
                },
            comm_per_volume: sim.comm_per_volume,
        }
    }

    /// Fits one stage's Eq. 4 coefficients from profiled samples by linear
    /// least squares on the features `[v·p̂³, v·p̂², v·p̂]` (the model is
    /// linear in `q0·q3, q1·q3, q2·q3`; we absorb `q3` into the other
    /// coefficients and set it to 1, which is an equivalent
    /// parameterisation).
    ///
    /// Returns the coefficients and the relative root-mean-square error of
    /// the fit, or `None` when fewer than three samples are given or the
    /// normal equations are singular.
    pub fn fit_stage(samples: &[LatencySample]) -> Option<(StageCoefficients, f64)> {
        if samples.len() < 3 {
            return None;
        }
        // Normal equations for 3 unknowns.
        let mut ata = [[0.0f64; 3]; 3];
        let mut aty = [0.0f64; 3];
        for s in samples {
            let p_hat = 1.0 / s.precision;
            let f = [
                s.volume * p_hat.powi(3),
                s.volume * p_hat.powi(2),
                s.volume * p_hat,
            ];
            for i in 0..3 {
                aty[i] += f[i] * s.latency;
                for j in 0..3 {
                    ata[i][j] += f[i] * f[j];
                }
            }
        }
        let coeffs = solve3(ata, aty)?;
        let fitted = StageCoefficients {
            q0: coeffs[0],
            q1: coeffs[1],
            q2: coeffs[2],
            q3: 1.0,
        };
        // Relative RMS error.
        let mut err = 0.0;
        let mut norm = 0.0;
        for s in samples {
            let pred = fitted.latency(s.precision, s.volume);
            err += (pred - s.latency).powi(2);
            norm += s.latency.powi(2);
        }
        let rel_rmse = if norm > 0.0 { (err / norm).sqrt() } else { 0.0 };
        Some((fitted, rel_rmse))
    }

    /// Predicted latency of one governed stage.
    pub fn stage_latency(&self, stage: PipelineStage, precision: f64, volume: f64) -> f64 {
        match stage {
            PipelineStage::Perception => self.perception.latency(precision, volume),
            PipelineStage::PerceptionToPlanning => {
                self.perception_to_planning.latency(precision, volume)
            }
            PipelineStage::Planning => self.planning.latency(precision, volume),
            PipelineStage::PointCloud | PipelineStage::Control => 0.0,
        }
    }

    /// Predicted end-to-end decision latency for a knob assignment
    /// (the `Σ δ_i` term of Eq. 3 plus fixed and communication costs).
    pub fn predict(&self, knobs: &KnobSettings) -> f64 {
        self.fixed
            + self.comm_per_volume * knobs.map_to_planner_volume
            + self
                .perception
                .latency(knobs.point_cloud_precision, knobs.octomap_volume)
            + self
                .perception_to_planning
                .latency(knobs.map_to_planner_precision, knobs.map_to_planner_volume)
            + self
                .planning
                .latency(knobs.map_to_planner_precision, knobs.planner_volume)
    }
}

/// Solves a 3×3 linear system with partial pivoting. Returns `None` when
/// the system is (numerically) singular relative to its own scale.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> Option<[f64; 3]> {
    let scale = a
        .iter()
        .flat_map(|row| row.iter())
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
        .max(1e-300);
    for col in 0..3 {
        let mut pivot = col;
        for row in (col + 1)..3 {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-10 * scale {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..3 {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (entry, pivot_entry) in a[row][col..3].iter_mut().zip(&pivot_row[col..3]) {
                *entry -= factor * pivot_entry;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for col in (row + 1)..3 {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_geom::precision_lattice;

    fn profiling_grid(truth: &StageCoefficients) -> Vec<LatencySample> {
        let mut samples = Vec::new();
        for &p in &precision_lattice(0.3, 6) {
            for v in [5_000.0, 20_000.0, 46_000.0, 80_000.0, 150_000.0] {
                samples.push(LatencySample {
                    precision: p,
                    volume: v,
                    latency: truth.latency(p, v),
                });
            }
        }
        samples
    }

    #[test]
    fn fit_recovers_simulation_coefficients_within_paper_mse() {
        let sim = ComputeLatencyModel::calibrated();
        for truth in [sim.perception, sim.perception_to_planning, sim.planning] {
            let samples = profiling_grid(&truth);
            let (fitted, rel_rmse) = PipelineLatencyModel::fit_stage(&samples).unwrap();
            // The paper reports <8% average MSE; a noiseless grid should fit
            // essentially exactly.
            assert!(rel_rmse < 0.08, "relative RMSE {rel_rmse}");
            // Predictions agree with the ground truth across the grid.
            for s in &samples {
                let pred = fitted.latency(s.precision, s.volume);
                assert!((pred - s.latency).abs() <= 0.05 * s.latency.max(0.01));
            }
        }
    }

    #[test]
    fn fit_handles_noisy_samples_within_tolerance() {
        let sim = ComputeLatencyModel::calibrated();
        let mut samples = profiling_grid(&sim.perception);
        // Add a deterministic ±4% ripple to emulate measurement noise.
        for (i, s) in samples.iter_mut().enumerate() {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            s.latency *= 1.0 + sign * 0.04;
        }
        let (_, rel_rmse) = PipelineLatencyModel::fit_stage(&samples).unwrap();
        assert!(rel_rmse < 0.08, "noisy fit RMSE {rel_rmse}");
    }

    #[test]
    fn fit_requires_enough_samples() {
        let sim = ComputeLatencyModel::calibrated();
        let samples = profiling_grid(&sim.perception);
        assert!(PipelineLatencyModel::fit_stage(&samples[..2]).is_none());
        // Degenerate (all-identical) samples are singular.
        let degenerate = vec![samples[0]; 10];
        assert!(PipelineLatencyModel::fit_stage(&degenerate).is_none());
    }

    #[test]
    fn prediction_matches_simulation_breakdown() {
        let sim = ComputeLatencyModel::calibrated();
        let model = PipelineLatencyModel::from_simulation(&sim, true);
        let knobs = KnobSettings::static_baseline();
        let predicted = model.predict(&knobs);
        let simulated = sim
            .decision_breakdown(
                knobs.point_cloud_precision,
                knobs.octomap_volume,
                knobs.map_to_planner_precision,
                knobs.map_to_planner_volume,
                knobs.map_to_planner_precision,
                knobs.planner_volume,
                true,
            )
            .total();
        assert!(
            (predicted - simulated).abs() < 1e-9,
            "{predicted} vs {simulated}"
        );
    }

    #[test]
    fn prediction_monotone_in_knob_aggressiveness() {
        let sim = ComputeLatencyModel::calibrated();
        let model = PipelineLatencyModel::from_simulation(&sim, true);
        let strict = KnobSettings::static_baseline();
        let relaxed = KnobSettings {
            point_cloud_precision: 9.6,
            map_to_planner_precision: 9.6,
            octomap_volume: 5_000.0,
            map_to_planner_volume: 10_000.0,
            planner_volume: 10_000.0,
        };
        assert!(model.predict(&strict) > 5.0 * model.predict(&relaxed));
        assert!(model.stage_latency(PipelineStage::Perception, 0.3, 46_000.0) > 0.0);
        assert_eq!(
            model.stage_latency(PipelineStage::PointCloud, 0.3, 1.0),
            0.0
        );
    }

    #[test]
    fn runtime_overhead_toggle_changes_fixed_cost() {
        let sim = ComputeLatencyModel::calibrated();
        let with = PipelineLatencyModel::from_simulation(&sim, true);
        let without = PipelineLatencyModel::from_simulation(&sim, false);
        assert!((with.fixed - without.fixed - sim.runtime_overhead).abs() < 1e-12);
    }
}
