//! Runtime modes: spatial-aware (RoboRun) vs spatial-oblivious (baseline).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which runtime drives the navigation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeMode {
    /// RoboRun: profilers + governor + operators, knobs re-tuned every
    /// decision.
    SpatialAware,
    /// The state-of-the-art static baseline (MAVBench-style): worst-case
    /// knobs fixed at design time, worst-case deadline.
    SpatialOblivious,
}

impl RuntimeMode {
    /// Both modes, in the order the paper's figures list them
    /// (baseline first).
    pub const ALL: [RuntimeMode; 2] = [RuntimeMode::SpatialOblivious, RuntimeMode::SpatialAware];

    /// `true` for the RoboRun (spatial-aware) mode.
    pub fn is_aware(self) -> bool {
        matches!(self, RuntimeMode::SpatialAware)
    }

    /// Short label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeMode::SpatialAware => "roborun",
            RuntimeMode::SpatialOblivious => "baseline",
        }
    }
}

impl fmt::Display for RuntimeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeMode::SpatialAware => f.write_str("spatial-aware (RoboRun)"),
            RuntimeMode::SpatialOblivious => f.write_str("spatial-oblivious (static baseline)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_flags() {
        assert!(RuntimeMode::SpatialAware.is_aware());
        assert!(!RuntimeMode::SpatialOblivious.is_aware());
        assert_eq!(RuntimeMode::SpatialAware.label(), "roborun");
        assert_eq!(RuntimeMode::SpatialOblivious.label(), "baseline");
        assert_eq!(RuntimeMode::ALL.len(), 2);
        assert_eq!(RuntimeMode::ALL[0], RuntimeMode::SpatialOblivious);
        assert!(format!("{}", RuntimeMode::SpatialAware).contains("RoboRun"));
        assert!(format!("{}", RuntimeMode::SpatialOblivious).contains("static"));
    }
}
