//! Operators: enforcing a governor [`Policy`] on the pipeline stages.
//!
//! The paper's operators are small pieces of code inside each stage that
//! read the policy and adjust that stage's behaviour (point-cloud sampling
//! distance, OctoMap ray-trace step, export pruning, planner volume
//! monitor). In this reproduction the stages live in the perception and
//! planning crates; this module provides the single place where a
//! [`Policy`]'s knob values are translated into the concrete per-stage
//! configurations those crates consume, so that every pipeline (the mission
//! runner, the examples, user code) applies the knobs the same way.

use crate::Policy;
use roborun_geom::Vec3;
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use serde::{Deserialize, Serialize};

/// Work report of one perception-stage application (how much data survived
/// each operator) — useful for telemetry and for validating that the knobs
/// actually bite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionWork {
    /// Points in the raw cloud before any operator ran.
    pub raw_points: usize,
    /// Points left after the precision (down-sampling) operator.
    pub after_precision: usize,
    /// Points left after the volume operator.
    pub after_volume: usize,
    /// Voxel updates performed by the occupancy-map integration.
    pub map_updates: usize,
    /// Occupied boxes exported to the planner.
    pub exported_boxes: usize,
    /// Volume exported to the planner (m³).
    pub exported_volume: f64,
}

/// Applies a [`Policy`]'s knobs to the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operators {
    /// Minimum ray-trace carve step (metres); the simulation substrate never
    /// carves finer than this regardless of the precision knob (the charged
    /// latency comes from the calibrated model, not from the carve loop).
    pub min_carve_step: f64,
}

impl Default for Operators {
    fn default() -> Self {
        Operators {
            min_carve_step: 0.5,
        }
    }
}

impl Operators {
    /// Applies the perception-side operators for one decision:
    ///
    /// 1. point-cloud precision operator (grid averaging at `p₀`),
    /// 2. point-cloud volume operator (nearest-first integration up to `v₀`),
    /// 3. OctoMap integration with the ray-trace step tied to `p₀`,
    /// 4. perception-to-planning export at precision `p₁` and volume `v₁`.
    ///
    /// Returns the planner's map view and a [`PerceptionWork`] report.
    pub fn apply_perception(
        &self,
        policy: &Policy,
        raw_cloud: &PointCloud,
        map: &mut OccupancyMap,
        reference: Vec3,
    ) -> (PlannerMap, PerceptionWork) {
        let knobs = policy.knobs;
        let raw_points = raw_cloud.len();
        let downsampled = raw_cloud.downsampled(knobs.point_cloud_precision);
        let after_precision = downsampled.len();
        let limited = downsampled.volume_limited(reference, knobs.octomap_volume);
        let after_volume = limited.len();
        let carve_step = knobs.point_cloud_precision.max(self.min_carve_step);
        let map_updates = map.integrate_cloud(&limited, carve_step);
        let export = PlannerMap::export(
            map,
            &ExportConfig::new(
                knobs.map_to_planner_precision,
                knobs.map_to_planner_volume,
                reference,
            ),
        );
        let work = PerceptionWork {
            raw_points,
            after_precision,
            after_volume,
            map_updates,
            exported_boxes: export.len(),
            exported_volume: export.occupied_volume(),
        };
        (export, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Governor, GovernorConfig, RuntimeMode, SpatialProfile};

    fn dense_cloud(origin: Vec3) -> PointCloud {
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(12.0, y as f64 * 0.25, z as f64 * 0.25)))
            .collect();
        PointCloud::new(origin, points)
    }

    #[test]
    fn relaxed_policy_does_less_work_than_strict_policy() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = dense_cloud(origin);
        let operators = Operators::default();

        let aware = Governor::new(GovernorConfig::default());
        let open_policy = aware.decide(&SpatialProfile::open_space(2.0, 40.0));
        let oblivious = Governor::new(GovernorConfig {
            mode: RuntimeMode::SpatialOblivious,
            ..GovernorConfig::default()
        });
        let static_policy = oblivious.decide(&SpatialProfile::open_space(2.0, 40.0));

        let mut map_a = OccupancyMap::new(0.3);
        let (_, relaxed) = operators.apply_perception(&open_policy, &cloud, &mut map_a, origin);
        let mut map_b = OccupancyMap::new(0.3);
        let (_, strict) = operators.apply_perception(&static_policy, &cloud, &mut map_b, origin);

        assert_eq!(relaxed.raw_points, strict.raw_points);
        assert!(relaxed.after_precision < strict.after_precision);
        assert!(relaxed.map_updates < strict.map_updates);
        assert!(relaxed.exported_boxes <= strict.exported_boxes);
    }

    #[test]
    fn operators_chain_is_monotone() {
        // Each operator can only shrink (or keep) the data it receives.
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = dense_cloud(origin);
        let operators = Operators::default();
        let governor = Governor::new(GovernorConfig::default());
        for profile in [
            SpatialProfile::open_space(2.0, 40.0),
            SpatialProfile::congested(0.5, 0.8, 2.0),
            SpatialProfile::congested(1.0, 3.0, 8.0),
        ] {
            let policy = governor.decide(&profile);
            let mut map = OccupancyMap::new(0.3);
            let (export, work) = operators.apply_perception(&policy, &cloud, &mut map, origin);
            assert!(work.after_precision <= work.raw_points);
            assert!(work.after_volume <= work.after_precision);
            assert_eq!(work.exported_boxes, export.len());
            assert!((work.exported_volume - export.occupied_volume()).abs() < 1e-9);
            // The exported volume respects the policy's budget (plus one voxel).
            assert!(
                work.exported_volume
                    <= policy.knobs.map_to_planner_volume + export.voxel_size().powi(3) + 1e-6
            );
        }
    }

    #[test]
    fn empty_cloud_produces_empty_work() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let operators = Operators::default();
        let governor = Governor::new(GovernorConfig::default());
        let policy = governor.decide(&SpatialProfile::open_space(1.0, 40.0));
        let mut map = OccupancyMap::new(0.3);
        let (export, work) =
            operators.apply_perception(&policy, &PointCloud::empty(origin), &mut map, origin);
        assert_eq!(work.raw_points, 0);
        assert_eq!(work.after_volume, 0);
        assert_eq!(work.map_updates, 0);
        assert!(export.is_empty());
    }
}
