//! Per-decision telemetry: the raw material of the paper's Figures 5, 10
//! and 11.

use crate::{KnobSettings, RuntimeMode};
use roborun_geom::{percentile, LogHistogram, Vec3};
use roborun_sim::LatencyBreakdown;
use serde::{Deserialize, Serialize};

/// Typed degradation state of one decision: which rung of the
/// graceful-degradation ladder (if any) the runtime stood on when the
/// decision was taken. `Healthy` is the default and the only state a
/// fault-free mission ever records; the remaining states are ordered from
/// mildest to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Degradation {
    /// No degradation: the decision ran on fresh data with a working
    /// planner.
    #[default]
    Healthy,
    /// Perception data was stale (the map missed one or more integration
    /// epochs) and the safe-velocity law was derated by the data's age.
    StalePerception,
    /// The planning watchdog fired and a bounded retry recovered a plan
    /// within the latency budget.
    RetriedPlan,
    /// Planning failed outright; the last valid trajectory was reused
    /// because it was still clear.
    ReusedTrajectory,
    /// No usable trajectory: the vehicle braked and held position for the
    /// epoch.
    Hover,
    /// The ladder bottomed out: the vehicle flew a wedge retreat and the
    /// mission ended in a recorded safe-stop.
    SafeStop,
}

impl Degradation {
    /// `true` for any state other than [`Degradation::Healthy`].
    pub fn is_degraded(&self) -> bool {
        *self != Degradation::Healthy
    }
}

/// Everything recorded about one navigation decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Mission time at the start of the decision (seconds).
    pub time: f64,
    /// MAV position at the decision (metres).
    pub position: Vec3,
    /// Commanded velocity for the following interval (m/s).
    pub commanded_velocity: f64,
    /// Profiled visibility (metres).
    pub visibility: f64,
    /// Decision deadline (time budget) the governor computed (seconds).
    pub deadline: f64,
    /// Knob assignment enforced for this decision.
    pub knobs: KnobSettings,
    /// Simulated latency breakdown of the decision.
    pub breakdown: LatencyBreakdown,
    /// CPU utilisation over the decision interval (`[0, 1]`).
    pub cpu_utilization: f64,
    /// Zone label (`'A'`, `'B'`, `'C'`) when the mission layout is known.
    pub zone: Option<char>,
    /// Latency masked from the critical path by plan-ahead overlap
    /// (seconds): planning work that ran on the speculation worker during
    /// the previous decision's execution window instead of serialising
    /// with this decision. Zero when plan-ahead is disabled or the
    /// speculation was discarded.
    pub masked_latency: f64,
    /// Degradation-ladder rung the runtime stood on for this decision
    /// ([`Degradation::Healthy`] on a fault-free mission).
    pub degradation: Degradation,
}

impl DecisionRecord {
    /// End-to-end latency of the decision (seconds): every stage's cost,
    /// whether it ran on the critical path or was masked by overlap.
    pub fn latency(&self) -> f64 {
        self.breakdown.total()
    }

    /// The latency the mission actually waited for (seconds): the
    /// end-to-end total minus what plan-ahead masked. Equal to
    /// [`DecisionRecord::latency`] whenever nothing was masked.
    pub fn critical_path_latency(&self) -> f64 {
        self.breakdown.critical_path(self.masked_latency)
    }

    /// `true` when the decision met its deadline. The deadline governs
    /// the decision's *reaction time*, so it is judged against the
    /// critical-path latency — masked planning work never delayed the
    /// MAV's response.
    pub fn met_deadline(&self) -> bool {
        self.critical_path_latency() <= self.deadline + 1e-9
    }
}

/// The full per-decision log of one mission.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MissionTelemetry {
    /// Runtime mode the mission ran with.
    pub mode: Option<RuntimeMode>,
    records: Vec<DecisionRecord>,
}

impl MissionTelemetry {
    /// Creates an empty log for the given mode.
    pub fn new(mode: RuntimeMode) -> Self {
        MissionTelemetry {
            mode: Some(mode),
            records: Vec::new(),
        }
    }

    /// Appends a decision record.
    pub fn push(&mut self, record: DecisionRecord) {
        self.records.push(record);
    }

    /// The recorded decisions, in mission order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// End-to-end latencies of every decision (seconds).
    pub fn latencies(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.latency()).collect()
    }

    /// Median decision latency, or `None` when empty.
    pub fn median_latency(&self) -> Option<f64> {
        percentile(&self.latencies(), 0.5)
    }

    /// End-to-end decision latencies on the shared fixed-bucket
    /// log-scale lattice — the same histogram the tracer's per-span-kind
    /// summaries use, so mission reports and trace summaries agree on
    /// bucket boundaries (and merge across missions).
    pub fn latency_histogram(&self) -> LogHistogram {
        self.records.iter().map(|r| r.latency()).collect()
    }

    /// 95th-percentile decision latency (seconds) from the shared
    /// histogram, or `None` when empty. Bucketed: the relative error is
    /// bounded by the lattice resolution (~7.5% median), unlike the
    /// exact [`MissionTelemetry::median_latency`].
    pub fn p95_latency(&self) -> Option<f64> {
        self.latency_histogram().quantile(0.95)
    }

    /// 99th-percentile decision latency (seconds) from the shared
    /// histogram, or `None` when empty.
    pub fn p99_latency(&self) -> Option<f64> {
        self.latency_histogram().quantile(0.99)
    }

    /// Exact worst-case decision latency (seconds), or `None` when empty.
    pub fn max_latency(&self) -> Option<f64> {
        self.latency_histogram().max()
    }

    /// Critical-path latencies of every decision (seconds): what the
    /// mission actually waited for after plan-ahead masking.
    pub fn critical_path_latencies(&self) -> Vec<f64> {
        self.records
            .iter()
            .map(|r| r.critical_path_latency())
            .collect()
    }

    /// Median critical-path decision latency, or `None` when empty.
    pub fn median_critical_path_latency(&self) -> Option<f64> {
        percentile(&self.critical_path_latencies(), 0.5)
    }

    /// Total latency masked by plan-ahead over the mission (seconds).
    pub fn total_masked_latency(&self) -> f64 {
        self.records.iter().map(|r| r.masked_latency).sum()
    }

    /// Mean CPU utilisation over the mission.
    pub fn mean_cpu_utilization(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.cpu_utilization).sum::<f64>() / self.records.len() as f64
    }

    /// Mean commanded velocity over the mission (m/s).
    pub fn mean_velocity(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.commanded_velocity)
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// Fraction of decisions that met their deadline.
    pub fn deadline_hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.met_deadline()).count() as f64 / self.records.len() as f64
    }

    /// Records belonging to a zone (by label).
    pub fn records_in_zone(&self, zone: char) -> Vec<&DecisionRecord> {
        self.records
            .iter()
            .filter(|r| r.zone == Some(zone))
            .collect()
    }

    /// Latency spread (max − min) within a zone, the quantity the paper
    /// uses to show RoboRun matches environment heterogeneity (Section V-C).
    pub fn latency_spread_in_zone(&self, zone: char) -> f64 {
        let latencies: Vec<f64> = self
            .records_in_zone(zone)
            .iter()
            .map(|r| r.latency())
            .collect();
        match (
            latencies.iter().cloned().fold(f64::INFINITY, f64::min),
            latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ) {
            (min, max) if min.is_finite() && max.is_finite() => max - min,
            _ => 0.0,
        }
    }

    /// Mean normalised latency breakdown over the mission (Fig. 11b): the
    /// average share each stage contributes to the end-to-end latency.
    pub fn mean_breakdown_shares(&self) -> Vec<(&'static str, f64)> {
        if self.records.is_empty() {
            return Vec::new();
        }
        let mut acc: Vec<(&'static str, f64)> = self.records[0]
            .breakdown
            .normalized()
            .iter()
            .map(|&(name, _)| (name, 0.0))
            .collect();
        for r in &self.records {
            for (slot, (_, share)) in acc.iter_mut().zip(r.breakdown.normalized()) {
                slot.1 += share;
            }
        }
        for slot in &mut acc {
            slot.1 /= self.records.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(time: f64, latency: f64, deadline: f64, zone: char) -> DecisionRecord {
        DecisionRecord {
            time,
            position: Vec3::new(time * 2.0, 0.0, 5.0),
            commanded_velocity: 2.0,
            visibility: 20.0,
            deadline,
            knobs: KnobSettings::static_baseline(),
            breakdown: LatencyBreakdown {
                point_cloud: 0.21,
                perception: latency * 0.5,
                perception_to_planning: latency * 0.1,
                planning: latency * 0.3,
                control: 0.01,
                communication: latency * 0.1,
                runtime_overhead: 0.05,
            },
            cpu_utilization: 0.5,
            zone: Some(zone),
            masked_latency: 0.0,
            degradation: Degradation::Healthy,
        }
    }

    #[test]
    fn empty_telemetry() {
        let t = MissionTelemetry::new(RuntimeMode::SpatialAware);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.median_latency().is_none());
        assert_eq!(t.mean_cpu_utilization(), 0.0);
        assert_eq!(t.mean_velocity(), 0.0);
        assert_eq!(t.deadline_hit_rate(), 1.0);
        assert!(t.mean_breakdown_shares().is_empty());
        assert_eq!(t.latency_spread_in_zone('A'), 0.0);
    }

    #[test]
    fn aggregates_over_records() {
        let mut t = MissionTelemetry::new(RuntimeMode::SpatialAware);
        t.push(record(0.0, 1.0, 2.0, 'A'));
        t.push(record(5.0, 0.4, 2.0, 'B'));
        t.push(record(10.0, 3.0, 2.0, 'C'));
        assert_eq!(t.len(), 3);
        assert_eq!(t.records().len(), 3);
        let median = t.median_latency().unwrap();
        assert!(median > 0.4 && median < 3.5);
        assert!((t.mean_cpu_utilization() - 0.5).abs() < 1e-12);
        assert!((t.mean_velocity() - 2.0).abs() < 1e-12);
        // Two of three met the 2 s deadline (latencies ≈1.27, 0.73, 3.07).
        assert!((t.deadline_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.records_in_zone('B').len(), 1);
        assert_eq!(t.records_in_zone('Z').len(), 0);
    }

    #[test]
    fn met_deadline_and_latency() {
        let r = record(0.0, 1.0, 2.0, 'A');
        assert!(r.met_deadline());
        assert!(r.latency() > 1.0);
        let late = record(0.0, 5.0, 1.0, 'A');
        assert!(!late.met_deadline());
    }

    #[test]
    fn masked_latency_shortens_the_critical_path() {
        let mut r = record(0.0, 2.0, 2.0, 'A');
        // Unmasked, the decision misses its deadline.
        assert!(r.latency() > r.deadline);
        assert!(!r.met_deadline());
        assert_eq!(
            r.critical_path_latency().to_bits(),
            r.latency().to_bits(),
            "zero masked latency must not perturb the total"
        );
        // Masking the full planning stage pulls it under the deadline.
        r.masked_latency = r.breakdown.planning;
        assert!(r.critical_path_latency() < r.latency());
        assert!(r.met_deadline());
        // Telemetry-level aggregation sees the masked totals.
        let mut t = MissionTelemetry::new(RuntimeMode::SpatialAware);
        t.push(r.clone());
        t.push(record(1.0, 1.0, 2.0, 'A'));
        assert!((t.total_masked_latency() - r.masked_latency).abs() < 1e-12);
        assert!(t.median_critical_path_latency().unwrap() <= t.median_latency().unwrap() + 1e-12);
        assert_eq!(t.critical_path_latencies().len(), 2);
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let mut t = MissionTelemetry::new(RuntimeMode::SpatialOblivious);
        for i in 0..5 {
            t.push(record(i as f64, 1.0 + i as f64 * 0.2, 3.0, 'A'));
        }
        let shares = t.mean_breakdown_shares();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(shares.iter().any(|(name, _)| *name == "octomap"));
    }

    #[test]
    fn zone_spread_reflects_heterogeneity() {
        let mut t = MissionTelemetry::new(RuntimeMode::SpatialAware);
        // Zone A: heterogeneous latencies; zone B: constant.
        t.push(record(0.0, 0.5, 5.0, 'A'));
        t.push(record(1.0, 4.0, 5.0, 'A'));
        t.push(record(2.0, 1.0, 5.0, 'B'));
        t.push(record(3.0, 1.0, 5.0, 'B'));
        assert!(t.latency_spread_in_zone('A') > t.latency_spread_in_zone('B'));
        assert!(t.latency_spread_in_zone('B') < 1e-9);
    }
}
