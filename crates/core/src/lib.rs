//! RoboRun — the spatial-aware runtime (the paper's primary contribution).
//!
//! RoboRun sits in the runtime layer of the MAV's system stack (paper
//! Fig. 6) and continuously re-tunes the navigation pipeline's precision and
//! volume knobs so that each decision's latency fits the deadline the
//! physical space imposes. It is built from three components:
//!
//! * **Profilers** ([`Profilers`], [`SpatialProfile`]) — post-process the
//!   pipeline's data structures (point cloud, occupancy map, trajectory,
//!   sensor state) to extract the Table I variables: gaps between obstacles,
//!   closest obstacle / closest unknown, sensor and map volume, velocity,
//!   position and the upcoming trajectory.
//! * **Governor** ([`Governor`]) — computes the decision deadline with the
//!   time-budgeting algorithm (Eq. 1 + Algorithm 1, [`TimeBudgeter`]) and
//!   solves the constrained optimisation of Eq. 3 ([`KnobSolver`]) over the
//!   fitted per-stage latency models of Eq. 4 ([`PipelineLatencyModel`]) to
//!   produce a [`Policy`]: one precision/volume setting per pipeline stage.
//! * **Operators** — the knob assignments in the policy are enforced by the
//!   perception/planning crates (point-cloud down-sampling, OctoMap
//!   ray-trace step, map export pruning, planner volume monitor); the
//!   [`KnobSettings`] type is the contract between the governor and those
//!   operators.
//!
//! The spatial-oblivious baseline of the paper's evaluation is available as
//! [`RuntimeMode::SpatialOblivious`]: a static worst-case knob assignment
//! (Table II) with a worst-case deadline.
//!
//! # Example
//!
//! ```
//! use roborun_core::{Governor, GovernorConfig, SpatialProfile};
//!
//! let governor = Governor::new(GovernorConfig::default());
//! // A wide-open profile: far visibility, huge gaps, no obstacle nearby.
//! let open = SpatialProfile::open_space(2.0, 40.0);
//! let policy = governor.decide(&open);
//! // In open space the governor relaxes precision to the coarsest level.
//! assert!(policy.knobs.point_cloud_precision > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod budget;
pub mod governor;
pub mod knobs;
pub mod latency_model;
pub mod modes;
pub mod operators;
pub mod profilers;
pub mod safety;
pub mod solver;
pub mod telemetry;

pub use ablation::KnobAblation;
pub use budget::{TimeBudgeter, WaypointState};
pub use governor::{Governor, GovernorConfig, Policy};
pub use knobs::{KnobRanges, KnobSettings};
pub use latency_model::PipelineLatencyModel;
pub use modes::RuntimeMode;
pub use operators::{Operators, PerceptionWork};
pub use profilers::{Profilers, SpatialProfile};
pub use safety::SafetyReport;
pub use solver::{KnobSolver, SolverConfig};
pub use telemetry::{DecisionRecord, Degradation, MissionTelemetry};
