//! Time budgeting: paper Eq. 1 and Algorithm 1.
//!
//! The time budget (decision deadline) is "the maximum time the MAV can
//! spend processing a sampled input while ensuring a safe flight":
//!
//! > `budget = (d − d_stop(v)) / v`          (Eq. 1)
//!
//! where `v` is the traversal velocity, `d` the visibility and `d_stop(v)`
//! the stopping distance. Because velocity and visibility change along the
//! planned trajectory, Algorithm 1 refines the instantaneous budget with a
//! running minimum over the upcoming waypoints: at each waypoint the time
//! already consumed flying there is subtracted and the local budget at that
//! waypoint is imposed, so that the returned *global* budget is safe with
//! respect to every waypoint the MAV will reach while the computation runs.

use roborun_geom::Vec3;
use roborun_sim::StoppingModel;
use serde::{Deserialize, Serialize};

/// Velocity/visibility state at one (current or upcoming) waypoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointState {
    /// Waypoint position (metres).
    pub position: Vec3,
    /// Planned traversal speed at the waypoint (m/s).
    pub velocity: f64,
    /// Expected visibility at the waypoint (metres).
    pub visibility: f64,
}

/// Computes decision deadlines from velocity, visibility and the stopping
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeBudgeter {
    /// Stopping-distance model (paper Eq. 2).
    pub stopping: StoppingModel,
    /// Lower clamp on any returned budget (seconds); prevents a zero or
    /// negative deadline from stalling the pipeline entirely.
    pub min_budget: f64,
    /// Upper clamp on any returned budget (seconds); beyond this the
    /// deadline no longer constrains the solver.
    pub max_budget: f64,
    /// Velocity floor (m/s) used in Eq. 1 to avoid dividing by zero while
    /// hovering.
    pub velocity_floor: f64,
}

impl Default for TimeBudgeter {
    fn default() -> Self {
        TimeBudgeter {
            stopping: StoppingModel::paper_default(),
            min_budget: 0.1,
            max_budget: 30.0,
            velocity_floor: 0.2,
        }
    }
}

impl TimeBudgeter {
    /// Creates a budgeter with a specific stopping model and default clamps.
    pub fn new(stopping: StoppingModel) -> Self {
        TimeBudgeter {
            stopping,
            ..TimeBudgeter::default()
        }
    }

    /// Eq. 1: the local (instantaneous) budget for the given velocity and
    /// visibility, clamped to `[min_budget, max_budget]`.
    pub fn local_budget(&self, velocity: f64, visibility: f64) -> f64 {
        let v = velocity.abs().max(self.velocity_floor);
        let margin = visibility - self.stopping.stopping_distance(v);
        (margin / v).clamp(self.min_budget, self.max_budget)
    }

    /// Raw (un-clamped) Eq. 1 value; may be negative when the visibility is
    /// shorter than the stopping distance. Exposed for analysis/plots.
    pub fn local_budget_raw(&self, velocity: f64, visibility: f64) -> f64 {
        let v = velocity.abs().max(self.velocity_floor);
        (visibility - self.stopping.stopping_distance(v)) / v
    }

    /// Algorithm 1: the global budget taking the upcoming waypoints into
    /// account. `current` is the MAV's present state (W₀); `upcoming` are
    /// the next planned waypoints in flight order (W₁ …).
    pub fn global_budget(&self, current: &WaypointState, upcoming: &[WaypointState]) -> f64 {
        // Line 1: bg ← 0, br ← Eq. 1 at W0.
        let mut global = 0.0f64;
        let mut remaining = self.local_budget_raw(current.velocity, current.visibility);
        let mut previous = *current;
        // Lines 2-7.
        for waypoint in upcoming {
            let flight_time = flight_time(&previous, waypoint, self.velocity_floor);
            remaining -= flight_time;
            let local = self.local_budget_raw(waypoint.velocity, waypoint.visibility);
            remaining = remaining.min(local);
            if remaining <= 0.0 {
                break;
            }
            global += flight_time;
            previous = *waypoint;
        }
        // With no upcoming waypoints the budget degenerates to Eq. 1 at W0.
        if upcoming.is_empty() {
            global = self.local_budget_raw(current.velocity, current.visibility);
        } else if global == 0.0 {
            // The first upcoming waypoint already exhausts the budget: fall
            // back to the instantaneous budget, clamped below.
            global = remaining
                .max(0.0)
                .min(self.local_budget_raw(current.velocity, current.visibility));
        }
        global.clamp(self.min_budget, self.max_budget)
    }

    /// The largest velocity whose local budget still covers `latency`
    /// seconds at the given visibility (the runtime's safe-velocity law,
    /// solved by bisection). Returns the velocity floor when even hovering
    /// cannot cover the latency.
    pub fn safe_velocity(&self, latency: f64, visibility: f64, max_velocity: f64) -> f64 {
        let fits = |v: f64| self.local_budget_raw(v, visibility) >= latency;
        if !fits(self.velocity_floor) {
            return self.velocity_floor;
        }
        if fits(max_velocity) {
            return max_velocity;
        }
        let mut lo = self.velocity_floor;
        let mut hi = max_velocity;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Flight time between two waypoints at the (floored) speed of the first.
fn flight_time(from: &WaypointState, to: &WaypointState, velocity_floor: f64) -> f64 {
    let distance = from.position.distance(to.position);
    distance / from.velocity.abs().max(velocity_floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, velocity: f64, visibility: f64) -> WaypointState {
        WaypointState {
            position: Vec3::new(x, 0.0, 5.0),
            velocity,
            visibility,
        }
    }

    #[test]
    fn local_budget_matches_eq1() {
        let b = TimeBudgeter::default();
        // v = 1 m/s, d = 10 m, dstop(1) = 0.615 → (10 - 0.615)/1 = 9.385 s.
        assert!((b.local_budget(1.0, 10.0) - 9.385).abs() < 1e-9);
        // Raw value may exceed the clamp.
        assert!(b.local_budget_raw(0.2, 40.0) > 30.0);
        assert_eq!(b.local_budget(0.2, 40.0), 30.0);
    }

    #[test]
    fn budget_shrinks_with_velocity_and_grows_with_visibility() {
        // The monotonicities of Fig. 2b.
        let b = TimeBudgeter::default();
        let mut last = f64::INFINITY;
        for v in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let budget = b.local_budget(v, 20.0);
            assert!(budget <= last + 1e-12, "budget must fall with velocity");
            last = budget;
        }
        let mut last = 0.0;
        for d in [5.0, 10.0, 20.0, 40.0] {
            let budget = b.local_budget(2.0, d);
            assert!(budget >= last, "budget must rise with visibility");
            last = budget;
        }
    }

    #[test]
    fn zero_velocity_does_not_divide_by_zero() {
        let b = TimeBudgeter::default();
        let budget = b.local_budget(0.0, 10.0);
        assert!(budget.is_finite());
        assert!(budget > 0.0);
    }

    #[test]
    fn short_visibility_clamps_to_min_budget() {
        let b = TimeBudgeter::default();
        // Visibility shorter than the stopping distance → raw budget < 0.
        assert!(b.local_budget_raw(5.0, 1.0) < 0.0);
        assert_eq!(b.local_budget(5.0, 1.0), b.min_budget);
    }

    #[test]
    fn global_budget_equals_local_without_waypoints() {
        let b = TimeBudgeter::default();
        let current = wp(0.0, 1.0, 10.0);
        let g = b.global_budget(&current, &[]);
        assert!((g - b.local_budget(1.0, 10.0)).abs() < 1e-9);
    }

    #[test]
    fn global_budget_is_limited_by_bad_upcoming_waypoint() {
        let b = TimeBudgeter::default();
        // Now: slow and clear → generous local budget.
        let current = wp(0.0, 0.5, 30.0);
        // Soon (1 m away): fast and blind → tiny local budget.
        let upcoming = [wp(1.0, 4.0, 2.0)];
        let global = b.global_budget(&current, &upcoming);
        let local_only = b.local_budget(0.5, 30.0);
        assert!(
            global < local_only,
            "global {global} should be below local {local_only}"
        );
    }

    #[test]
    fn global_budget_accumulates_flight_time_over_benign_waypoints() {
        let b = TimeBudgeter::default();
        let current = wp(0.0, 2.0, 40.0);
        // Waypoints 10 m apart at 2 m/s with clear visibility: each hop adds
        // 5 s of flight time to the accumulated budget.
        let upcoming = [
            wp(10.0, 2.0, 40.0),
            wp(20.0, 2.0, 40.0),
            wp(30.0, 2.0, 40.0),
        ];
        let global = b.global_budget(&current, &upcoming);
        assert!(global >= 10.0, "accumulated budget {global}");
        assert!(global <= b.max_budget);
    }

    #[test]
    fn global_budget_never_exceeds_clamp() {
        let b = TimeBudgeter::default();
        let current = wp(0.0, 0.3, 40.0);
        let upcoming: Vec<WaypointState> =
            (1..200).map(|i| wp(i as f64 * 5.0, 0.3, 40.0)).collect();
        let g = b.global_budget(&current, &upcoming);
        assert!(g <= b.max_budget);
        assert!(g >= b.min_budget);
    }

    #[test]
    fn safe_velocity_inverse_of_budget() {
        let b = TimeBudgeter::default();
        // With 40 m visibility and a 0.3 s latency the drone can go fast.
        let fast = b.safe_velocity(0.3, 40.0, 8.0);
        assert!(fast > 5.0);
        // With 2 m visibility and a 4.7 s latency it crawls (paper's ~0.4 m/s).
        let slow = b.safe_velocity(4.7, 2.0, 8.0);
        assert!(slow < 0.6, "slow velocity {slow}");
        assert!(slow >= b.velocity_floor);
        // The budget at the returned velocity indeed covers the latency.
        assert!(b.local_budget_raw(slow, 2.0) >= 4.7 - 1e-6 || slow == b.velocity_floor);
        // Infeasible latency returns the floor.
        assert_eq!(b.safe_velocity(1000.0, 1.0, 8.0), b.velocity_floor);
        // Trivially feasible latency returns the cap.
        assert_eq!(b.safe_velocity(0.01, 40.0, 3.0), 3.0);
    }

    #[test]
    fn safe_velocity_monotone_in_latency_and_visibility() {
        let b = TimeBudgeter::default();
        let mut last = f64::INFINITY;
        for latency in [0.2, 0.5, 1.0, 2.0, 4.0] {
            let v = b.safe_velocity(latency, 20.0, 10.0);
            assert!(v <= last + 1e-9);
            last = v;
        }
        let mut last = 0.0;
        for visibility in [2.0, 5.0, 10.0, 20.0, 40.0] {
            let v = b.safe_velocity(1.0, visibility, 10.0);
            assert!(v >= last - 1e-9);
            last = v;
        }
    }
}
