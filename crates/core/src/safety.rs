//! Safety assessment of a mission's telemetry.
//!
//! The paper's central safety argument is that "decision latency must
//! always be less than the decision deadline" (Section II-A). The governor
//! tries to enforce that inequality per decision; this module audits a
//! finished mission's telemetry against it and summarises how close the
//! runtime came to the line — the check an engineer would run before
//! trusting a configuration in the field.

use crate::budget::TimeBudgeter;
use crate::telemetry::MissionTelemetry;
use serde::{Deserialize, Serialize};

/// Summary of how well a mission respected the space-induced time budget.
///
/// Two views are reported:
///
/// * **pre-decision deadline** — the budget the governor computed *before*
///   the decision, at the velocity the MAV was flying at that instant.
///   Latency above this value means the governor had to slow the MAV down
///   afterwards; it is common near obstacles and is informational.
/// * **commanded-velocity budget** — the Eq. 1 budget evaluated at the
///   velocity the runtime actually commanded for the following epoch, with
///   the profiled visibility. `latency ≤ budget(commanded_velocity)` is the
///   invariant the safe-velocity law enforces; violations here mean the MAV
///   was flying faster than its reaction time allowed (only possible when
///   even the velocity floor cannot cover the latency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyReport {
    /// Number of decisions audited.
    pub decisions: usize,
    /// Decisions whose latency exceeded the pre-decision deadline.
    pub deadline_violations: usize,
    /// Decisions whose latency exceeded the budget at the commanded
    /// velocity (the enforced invariant).
    pub velocity_violations: usize,
    /// Largest latency / pre-decision-deadline ratio observed.
    pub worst_overshoot_ratio: f64,
    /// Mean latency / pre-decision-deadline ratio (how much of the budget
    /// is typically consumed).
    pub mean_budget_consumption: f64,
    /// Smallest pre-decision deadline seen (seconds) — how tight the space
    /// ever made the budget.
    pub tightest_deadline: f64,
    /// Largest decision latency seen (seconds).
    pub worst_latency: f64,
}

impl SafetyReport {
    /// Audits a mission's telemetry with the default [`TimeBudgeter`].
    pub fn from_telemetry(telemetry: &MissionTelemetry) -> Self {
        SafetyReport::audit(telemetry, &TimeBudgeter::default())
    }

    /// Audits a mission's telemetry against a specific budgeter (use the
    /// one the governor flew with if it was customised).
    pub fn audit(telemetry: &MissionTelemetry, budgeter: &TimeBudgeter) -> Self {
        let records = telemetry.records();
        let decisions = records.len();
        let mut deadline_violations = 0usize;
        let mut velocity_violations = 0usize;
        let mut worst_ratio = 0.0f64;
        let mut ratio_sum = 0.0f64;
        let mut tightest_deadline = f64::INFINITY;
        let mut worst_latency = 0.0f64;
        for r in records {
            let latency = r.latency();
            let deadline = r.deadline.max(1e-9);
            let ratio = latency / deadline;
            if latency > r.deadline {
                deadline_violations += 1;
            }
            let commanded_budget = budgeter.local_budget(r.commanded_velocity, r.visibility);
            if latency > commanded_budget + 1e-9 {
                velocity_violations += 1;
            }
            worst_ratio = worst_ratio.max(ratio);
            ratio_sum += ratio;
            tightest_deadline = tightest_deadline.min(r.deadline);
            worst_latency = worst_latency.max(latency);
        }
        SafetyReport {
            decisions,
            deadline_violations,
            velocity_violations,
            worst_overshoot_ratio: worst_ratio,
            mean_budget_consumption: if decisions > 0 {
                ratio_sum / decisions as f64
            } else {
                0.0
            },
            tightest_deadline: if tightest_deadline.is_finite() {
                tightest_deadline
            } else {
                0.0
            },
            worst_latency,
        }
    }

    /// Fraction of decisions whose latency exceeded the pre-decision
    /// deadline, in `[0, 1]`.
    pub fn violation_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.deadline_violations as f64 / self.decisions as f64
        }
    }

    /// Fraction of decisions that violated the commanded-velocity budget —
    /// the enforced safety invariant — in `[0, 1]`.
    pub fn velocity_violation_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.velocity_violations as f64 / self.decisions as f64
        }
    }

    /// `true` when no decision violated the commanded-velocity budget.
    pub fn is_clean(&self) -> bool {
        self.velocity_violations == 0
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{} decisions, {} over the pre-decision deadline ({:.1}%), {} over the commanded-velocity budget ({:.1}%), worst ratio {:.2}, tightest deadline {:.2} s",
            self.decisions,
            self.deadline_violations,
            self.violation_rate() * 100.0,
            self.velocity_violations,
            self.velocity_violation_rate() * 100.0,
            self.worst_overshoot_ratio,
            self.tightest_deadline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobSettings;
    use crate::modes::RuntimeMode;
    use crate::telemetry::{DecisionRecord, Degradation};
    use roborun_geom::Vec3;
    use roborun_sim::LatencyBreakdown;

    fn record(latency: f64, deadline: f64, velocity: f64, visibility: f64) -> DecisionRecord {
        DecisionRecord {
            time: 0.0,
            position: Vec3::ZERO,
            commanded_velocity: velocity,
            visibility,
            deadline,
            knobs: KnobSettings::static_baseline(),
            breakdown: LatencyBreakdown {
                point_cloud: latency,
                ..LatencyBreakdown::default()
            },
            cpu_utilization: 0.4,
            zone: Some('B'),
            masked_latency: 0.0,
            degradation: Degradation::Healthy,
        }
    }

    fn telemetry(records: &[DecisionRecord]) -> MissionTelemetry {
        let mut t = MissionTelemetry::new(RuntimeMode::SpatialAware);
        for r in records {
            t.push(r.clone());
        }
        t
    }

    #[test]
    fn clean_mission_reports_no_violations() {
        let report = SafetyReport::from_telemetry(&telemetry(&[
            record(0.5, 2.0, 1.0, 10.0),
            record(1.0, 2.0, 1.0, 10.0),
            record(0.2, 1.0, 1.0, 10.0),
        ]));
        assert!(report.is_clean());
        assert_eq!(report.decisions, 3);
        assert_eq!(report.deadline_violations, 0);
        assert_eq!(report.velocity_violations, 0);
        assert_eq!(report.violation_rate(), 0.0);
        assert!(report.worst_overshoot_ratio <= 0.5 + 1e-9);
        assert!((report.tightest_deadline - 1.0).abs() < 1e-12);
        assert!((report.worst_latency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pre_decision_deadline_violations_are_counted() {
        let report = SafetyReport::from_telemetry(&telemetry(&[
            record(3.0, 2.0, 1.0, 10.0),
            record(0.5, 2.0, 1.0, 10.0),
            record(2.4, 2.0, 1.0, 10.0),
        ]));
        assert_eq!(report.deadline_violations, 2);
        // The commanded-velocity budget (≈9.4 s at 1 m/s with 10 m
        // visibility) is still respected, so the invariant holds.
        assert_eq!(report.velocity_violations, 0);
        assert!(report.is_clean());
        assert!((report.violation_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.worst_overshoot_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn commanded_velocity_budget_violations_are_flagged() {
        // 4 m/s with only 3 m visibility: the stopping distance alone
        // exceeds the visibility, so any latency above the clamp floor
        // violates the enforced invariant.
        let report = SafetyReport::from_telemetry(&telemetry(&[record(1.5, 2.0, 4.0, 3.0)]));
        assert_eq!(report.velocity_violations, 1);
        assert!(!report.is_clean());
        assert!((report.velocity_violation_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_telemetry_is_trivially_clean() {
        let report =
            SafetyReport::from_telemetry(&MissionTelemetry::new(RuntimeMode::SpatialAware));
        assert!(report.is_clean());
        assert_eq!(report.decisions, 0);
        assert_eq!(report.mean_budget_consumption, 0.0);
        assert_eq!(report.tightest_deadline, 0.0);
    }

    #[test]
    fn summary_mentions_the_key_numbers() {
        let report = SafetyReport::from_telemetry(&telemetry(&[
            record(1.0, 2.0, 1.0, 10.0),
            record(3.0, 2.0, 1.0, 10.0),
        ]));
        let text = report.summary();
        assert!(text.contains("2 decisions"));
        assert!(text.contains("1 over the pre-decision deadline"));
        assert!(text.contains("commanded-velocity budget"));
    }
}
