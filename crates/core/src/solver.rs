//! The governor's knob solver: the constrained optimisation of paper Eq. 3.
//!
//! > minimise  `(δ_d − Σ_i δ_i(p_i, v_i))²`
//! >
//! > subject to  `g_min ≤ p₀ ≤ min(p₁, g_avg, d_obs)`
//! >             `v₀ ≤ v₁ ≤ min(v_sensor, v_map)`
//! >             `p_i ∈ {vox_min · 2ⁿ}`  (and `p₁ = p₂`)
//!
//! The precision domain is a six-element power-of-two lattice and the
//! volume knobs are searched over a small discretisation of their Table II
//! ranges, so exhaustive enumeration is both exact over the discretised
//! space and fast (a few thousand candidate evaluations of a cubic
//! polynomial — well under a millisecond), playing the role of the paper's
//! "mathematical solver".
//!
//! A note on the first constraint: the paper literally writes
//! `g_min ≤ p₀`, i.e. the voxel may not be *finer* than the minimum gap.
//! When the surroundings are open (`g_min` is the open-space sentinel) this
//! lower bound exceeds the coarsest lattice level; we clamp it to the
//! lattice so the solver simply picks the coarsest precision, which is the
//! behaviour the paper describes for open space.

use crate::{KnobRanges, KnobSettings, PipelineLatencyModel, SpatialProfile};
use serde::{Deserialize, Serialize};

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Number of discretisation steps per volume knob.
    pub volume_steps: usize,
    /// Weight of the quality tie-breaker: among assignments with (nearly)
    /// the same budget error, prefer finer precision and larger volumes.
    pub quality_bias: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            volume_steps: 6,
            quality_bias: 1e-3,
        }
    }
}

/// Outcome of one solver run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOutcome {
    /// Chosen knob assignment.
    pub knobs: KnobSettings,
    /// Latency the model predicts for the chosen knobs (seconds).
    pub predicted_latency: f64,
    /// The (δ_d − Σδ)² objective value at the chosen knobs.
    pub objective: f64,
    /// `true` when even the cheapest feasible assignment exceeds the budget
    /// (the governor then runs at the cheapest point and accepts the
    /// overrun, exactly like the paper's high-latency outliers near
    /// obstacles).
    pub budget_exceeded: bool,
}

/// The Eq. 3 solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobSolver {
    /// Admissible knob ranges (Table II).
    pub ranges: KnobRanges,
    /// Solver configuration.
    pub config: SolverConfig,
}

impl KnobSolver {
    /// Creates a solver over the given ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges are invalid or `volume_steps < 2`.
    pub fn new(ranges: KnobRanges, config: SolverConfig) -> Self {
        ranges.validate().expect("invalid knob ranges");
        assert!(config.volume_steps >= 2, "need at least two volume steps");
        KnobSolver { ranges, config }
    }

    /// Solves Eq. 3 for the given time budget `delta_d` (seconds), spatial
    /// profile and latency model.
    pub fn solve(
        &self,
        delta_d: f64,
        profile: &SpatialProfile,
        model: &PipelineLatencyModel,
    ) -> SolverOutcome {
        let lattice = self.ranges.precision_lattice();
        let coarsest = *lattice.last().expect("lattice is never empty");

        // Constraint bounds for p0 from the profile.
        let p0_upper_demand = profile
            .gap_avg
            .min(profile.closest_obstacle)
            .clamp(self.ranges.precision_min, coarsest);
        let p0_lower = profile.gap_min.min(coarsest).max(self.ranges.precision_min);

        // Admissible p0 lattice points. When the [g_min, min(g_avg, d_obs)]
        // window contains no lattice point, the safety-critical upper bound
        // (the space's precision demand) wins and the paper's lower bound is
        // dropped: we take the finest lattice value not exceeding the
        // demand, falling back to the finest level overall.
        let mut p0_candidates: Vec<f64> = lattice
            .iter()
            .copied()
            .filter(|&p| p >= p0_lower - 1e-9 && p <= p0_upper_demand + 1e-9)
            .collect();
        if p0_candidates.is_empty() {
            let fallback = lattice
                .iter()
                .copied()
                .filter(|&p| p <= p0_upper_demand + 1e-9)
                .fold(f64::NAN, f64::max);
            p0_candidates.push(if fallback.is_nan() {
                lattice[0]
            } else {
                fallback
            });
        }

        // Volume upper bounds: v1 ≤ min(v_sensor, v_map) and the Table II caps.
        let v1_cap = self
            .ranges
            .map_to_planner_volume_max
            .min(self.ranges.sensor_volume_max.max(profile.sensor_volume))
            .min(profile.map_volume.max(self.ranges.sensor_volume_max));
        let v0_cap = self.ranges.octomap_volume_max;
        let v2_cap = self.ranges.planner_volume_max;

        let volume_grid = |cap: f64| -> Vec<f64> {
            let n = self.config.volume_steps;
            (1..=n).map(|i| cap * i as f64 / n as f64).collect()
        };

        let mut best: Option<(f64, f64, KnobSettings, f64)> = None; // (score, quality, knobs, latency)
        for &p1 in &lattice {
            for &p0 in &p0_candidates {
                // Constraint: p0 ≤ p1.
                if p0 > p1 + 1e-9 {
                    continue;
                }
                for &v1 in &volume_grid(v1_cap) {
                    for &v0 in &volume_grid(v0_cap) {
                        if v0 > v1 + 1e-9 {
                            continue;
                        }
                        for &v2 in &volume_grid(v2_cap) {
                            let knobs = KnobSettings {
                                point_cloud_precision: p0,
                                map_to_planner_precision: p1,
                                octomap_volume: v0,
                                map_to_planner_volume: v1,
                                planner_volume: v2,
                            };
                            let latency = model.predict(&knobs);
                            let objective = (delta_d - latency).powi(2);
                            // Quality: finer precision and more volume are
                            // better world models; used only to break ties.
                            let quality = (1.0 / p0)
                                + (1.0 / p1) * 0.5
                                + (v0 / v0_cap + v1 / v1_cap + v2 / v2_cap) * 0.25;
                            let score = objective - self.config.quality_bias * quality;
                            let better = match &best {
                                None => true,
                                Some((best_score, _, _, _)) => score < *best_score,
                            };
                            if better {
                                best = Some((score, quality, knobs, latency));
                            }
                        }
                    }
                }
            }
        }

        let (_, _, knobs, predicted_latency) =
            best.expect("solver always evaluates at least one candidate");
        SolverOutcome {
            knobs,
            predicted_latency,
            objective: (delta_d - predicted_latency).powi(2),
            budget_exceeded: predicted_latency > delta_d + 1e-9,
        }
    }
}

impl Default for KnobSolver {
    fn default() -> Self {
        KnobSolver::new(KnobRanges::table_ii(), SolverConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_sim::ComputeLatencyModel;

    fn model() -> PipelineLatencyModel {
        PipelineLatencyModel::from_simulation(&ComputeLatencyModel::calibrated(), true)
    }

    #[test]
    fn generous_budget_buys_quality() {
        let solver = KnobSolver::default();
        let profile = SpatialProfile::congested(1.0, 1.0, 4.0);
        let tight = solver.solve(0.5, &profile, &model());
        let generous = solver.solve(8.0, &profile, &model());
        // A larger budget must never produce a *cheaper* (lower-latency)
        // plan than a smaller budget.
        assert!(generous.predicted_latency >= tight.predicted_latency);
        // And the generous plan should spend more of its budget on volume
        // or precision.
        let q = |k: &KnobSettings| 1.0 / k.point_cloud_precision + k.map_to_planner_volume / 1e6;
        assert!(q(&generous.knobs) >= q(&tight.knobs));
    }

    #[test]
    fn open_space_relaxes_precision_to_coarsest() {
        let solver = KnobSolver::default();
        let profile = SpatialProfile::open_space(2.0, 40.0);
        let outcome = solver.solve(1.0, &profile, &model());
        assert!(outcome.knobs.point_cloud_precision >= 4.8);
        assert!(!outcome.budget_exceeded);
        assert!(outcome.predicted_latency <= 1.0 + 1e-9);
    }

    #[test]
    fn congestion_demands_fine_precision() {
        let solver = KnobSolver::default();
        // Gaps of ~1 m demand sub-metre voxels.
        let profile = SpatialProfile::congested(0.5, 0.8, 2.0);
        let outcome = solver.solve(6.0, &profile, &model());
        // Eq. 3 bounds p0 by min(g_avg, d_obs) = 1.2 m from above and by
        // g_min = 0.8 m from below; the only admissible lattice point is
        // 1.2 m, far finer than the 9.6 m open-space choice.
        assert!(
            outcome.knobs.point_cloud_precision <= 1.2 + 1e-9,
            "precision {} too coarse for a 1.2 m average gap",
            outcome.knobs.point_cloud_precision
        );
    }

    #[test]
    fn impossible_budget_reports_overrun_at_cheapest_plan() {
        let solver = KnobSolver::default();
        let profile = SpatialProfile::congested(0.5, 0.5, 1.0);
        // A 1 ms budget cannot cover even the fixed pipeline costs.
        let outcome = solver.solve(0.001, &profile, &model());
        assert!(outcome.budget_exceeded);
        assert!(outcome.predicted_latency > 0.001);
        // The chosen plan should be (close to) the cheapest feasible one:
        // coarse export precision and small volumes.
        assert!(outcome.knobs.octomap_volume <= 20_000.0 + 1e-6);
    }

    #[test]
    fn solution_always_satisfies_structural_constraints() {
        let solver = KnobSolver::default();
        let model = model();
        let profiles = [
            SpatialProfile::open_space(1.0, 40.0),
            SpatialProfile::open_space(4.0, 10.0),
            SpatialProfile::congested(0.5, 0.5, 1.0),
            SpatialProfile::congested(2.0, 3.0, 8.0),
        ];
        let lattice = solver.ranges.precision_lattice();
        for profile in &profiles {
            for budget in [0.2, 1.0, 3.0, 10.0] {
                let outcome = solver.solve(budget, profile, &model);
                let k = outcome.knobs;
                assert!(k.validate(&solver.ranges).is_ok(), "{k} violates Table II");
                // Precisions on the lattice.
                for p in [k.point_cloud_precision, k.map_to_planner_precision] {
                    assert!(
                        lattice.iter().any(|&l| (l - p).abs() < 1e-9),
                        "precision {p} not on the lattice"
                    );
                }
                // Eq. 3 orderings.
                assert!(k.point_cloud_precision <= k.map_to_planner_precision + 1e-9);
                assert!(k.octomap_volume <= k.map_to_planner_volume + 1e-9);
            }
        }
    }

    #[test]
    fn predicted_latency_matches_model() {
        let solver = KnobSolver::default();
        let model = model();
        let profile = SpatialProfile::congested(1.0, 2.0, 5.0);
        let outcome = solver.solve(2.0, &profile, &model);
        assert!((model.predict(&outcome.knobs) - outcome.predicted_latency).abs() < 1e-12);
        assert!((outcome.objective - (2.0 - outcome.predicted_latency).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn solver_is_fast_enough_for_per_decision_use() {
        let solver = KnobSolver::default();
        let model = model();
        let profile = SpatialProfile::congested(1.0, 2.0, 5.0);
        let start = std::time::Instant::now();
        for _ in 0..50 {
            let _ = solver.solve(2.0, &profile, &model);
        }
        let per_call = start.elapsed().as_secs_f64() / 50.0;
        assert!(per_call < 0.05, "solver took {per_call} s per call");
    }

    #[test]
    #[should_panic(expected = "volume steps")]
    fn rejects_degenerate_volume_grid() {
        let _ = KnobSolver::new(
            KnobRanges::table_ii(),
            SolverConfig {
                volume_steps: 1,
                ..SolverConfig::default()
            },
        );
    }
}
