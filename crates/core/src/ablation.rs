//! Per-knob ablations of the spatial-aware runtime.
//!
//! RoboRun's gains come from six knobs acting together (paper Section III-B:
//! two precision operators and three volume operators spread over the
//! perception, perception-to-planning and planning stages, plus the shared
//! precision constraint). A natural design question the paper leaves
//! implicit is how much each knob family contributes. [`KnobAblation`]
//! answers it: it freezes selected knobs at their static (Table II) values
//! while the governor keeps adapting the rest, so a mission can be re-run
//! with, say, precision adaptation disabled and only volume adaptation
//! active.

use crate::knobs::KnobSettings;
use serde::{Deserialize, Serialize};

/// Selects which knobs are frozen at the static baseline values.
///
/// The default ablation freezes nothing (full RoboRun). Freezing every
/// knob reproduces the spatial-oblivious knob assignment while keeping the
/// dynamic deadline, which isolates the contribution of knob adaptation
/// from the contribution of deadline adaptation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KnobAblation {
    /// Freeze the point-cloud precision operator at 0.3 m.
    pub freeze_point_cloud_precision: bool,
    /// Freeze the OctoMap-to-planner precision operator at 0.3 m.
    pub freeze_map_to_planner_precision: bool,
    /// Freeze the OctoMap volume operator at 46 000 m³.
    pub freeze_octomap_volume: bool,
    /// Freeze the OctoMap-to-planner volume operator at 150 000 m³.
    pub freeze_map_to_planner_volume: bool,
    /// Freeze the planner volume operator at 150 000 m³.
    pub freeze_planner_volume: bool,
}

impl KnobAblation {
    /// No ablation: every knob adapts (full RoboRun).
    pub fn none() -> Self {
        KnobAblation::default()
    }

    /// Freeze every knob at the Table II static values.
    pub fn all() -> Self {
        KnobAblation {
            freeze_point_cloud_precision: true,
            freeze_map_to_planner_precision: true,
            freeze_octomap_volume: true,
            freeze_map_to_planner_volume: true,
            freeze_planner_volume: true,
        }
    }

    /// Freeze only the precision operators (volume still adapts).
    pub fn precision_frozen() -> Self {
        KnobAblation {
            freeze_point_cloud_precision: true,
            freeze_map_to_planner_precision: true,
            ..KnobAblation::default()
        }
    }

    /// Freeze only the volume operators (precision still adapts).
    pub fn volume_frozen() -> Self {
        KnobAblation {
            freeze_octomap_volume: true,
            freeze_map_to_planner_volume: true,
            freeze_planner_volume: true,
            ..KnobAblation::default()
        }
    }

    /// `true` when nothing is frozen.
    pub fn is_none(&self) -> bool {
        *self == KnobAblation::default()
    }

    /// Number of frozen knobs.
    pub fn frozen_count(&self) -> usize {
        [
            self.freeze_point_cloud_precision,
            self.freeze_map_to_planner_precision,
            self.freeze_octomap_volume,
            self.freeze_map_to_planner_volume,
            self.freeze_planner_volume,
        ]
        .iter()
        .filter(|&&frozen| frozen)
        .count()
    }

    /// Applies the ablation: frozen knobs are overwritten with their static
    /// (Table II) values, the others pass through unchanged.
    pub fn apply(&self, mut knobs: KnobSettings) -> KnobSettings {
        let fixed = KnobSettings::static_baseline();
        if self.freeze_point_cloud_precision {
            knobs.point_cloud_precision = fixed.point_cloud_precision;
        }
        if self.freeze_map_to_planner_precision {
            knobs.map_to_planner_precision = fixed.map_to_planner_precision;
        }
        if self.freeze_octomap_volume {
            knobs.octomap_volume = fixed.octomap_volume;
        }
        if self.freeze_map_to_planner_volume {
            knobs.map_to_planner_volume = fixed.map_to_planner_volume;
        }
        if self.freeze_planner_volume {
            knobs.planner_volume = fixed.planner_volume;
        }
        knobs
    }

    /// A short label for tables ("none", "precision", "volume", "all",
    /// or a list of frozen knob abbreviations).
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        if *self == KnobAblation::all() {
            return "all".to_string();
        }
        if *self == KnobAblation::precision_frozen() {
            return "precision".to_string();
        }
        if *self == KnobAblation::volume_frozen() {
            return "volume".to_string();
        }
        let mut parts = Vec::new();
        if self.freeze_point_cloud_precision {
            parts.push("pc_prec");
        }
        if self.freeze_map_to_planner_precision {
            parts.push("map_prec");
        }
        if self.freeze_octomap_volume {
            parts.push("om_vol");
        }
        if self.freeze_map_to_planner_volume {
            parts.push("map_vol");
        }
        if self.freeze_planner_volume {
            parts.push("plan_vol");
        }
        parts.join("+")
    }

    /// The ablation variants the experiments sweep: none, each knob family,
    /// each individual knob, and all.
    pub fn catalog() -> Vec<(String, KnobAblation)> {
        let mut variants = vec![
            ("none".to_string(), KnobAblation::none()),
            ("precision".to_string(), KnobAblation::precision_frozen()),
            ("volume".to_string(), KnobAblation::volume_frozen()),
            ("all".to_string(), KnobAblation::all()),
        ];
        let singles = [
            (
                "pc_prec",
                KnobAblation {
                    freeze_point_cloud_precision: true,
                    ..KnobAblation::default()
                },
            ),
            (
                "map_prec",
                KnobAblation {
                    freeze_map_to_planner_precision: true,
                    ..KnobAblation::default()
                },
            ),
            (
                "om_vol",
                KnobAblation {
                    freeze_octomap_volume: true,
                    ..KnobAblation::default()
                },
            ),
            (
                "map_vol",
                KnobAblation {
                    freeze_map_to_planner_volume: true,
                    ..KnobAblation::default()
                },
            ),
            (
                "plan_vol",
                KnobAblation {
                    freeze_planner_volume: true,
                    ..KnobAblation::default()
                },
            ),
        ];
        variants.extend(singles.into_iter().map(|(name, a)| (name.to_string(), a)));
        variants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knobs::KnobRanges;

    fn relaxed() -> KnobSettings {
        KnobSettings::most_relaxed(&KnobRanges::table_ii())
    }

    #[test]
    fn no_ablation_passes_knobs_through() {
        let knobs = relaxed();
        assert_eq!(KnobAblation::none().apply(knobs), knobs);
        assert!(KnobAblation::none().is_none());
        assert_eq!(KnobAblation::none().frozen_count(), 0);
    }

    #[test]
    fn full_ablation_reproduces_the_static_baseline() {
        let ablated = KnobAblation::all().apply(relaxed());
        assert_eq!(ablated, KnobSettings::static_baseline());
        assert_eq!(KnobAblation::all().frozen_count(), 5);
    }

    #[test]
    fn precision_ablation_only_touches_precision_knobs() {
        let knobs = relaxed();
        let ablated = KnobAblation::precision_frozen().apply(knobs);
        let baseline = KnobSettings::static_baseline();
        assert_eq!(
            ablated.point_cloud_precision,
            baseline.point_cloud_precision
        );
        assert_eq!(
            ablated.map_to_planner_precision,
            baseline.map_to_planner_precision
        );
        assert_eq!(ablated.octomap_volume, knobs.octomap_volume);
        assert_eq!(ablated.map_to_planner_volume, knobs.map_to_planner_volume);
        assert_eq!(ablated.planner_volume, knobs.planner_volume);
    }

    #[test]
    fn volume_ablation_only_touches_volume_knobs() {
        let knobs = relaxed();
        let ablated = KnobAblation::volume_frozen().apply(knobs);
        let baseline = KnobSettings::static_baseline();
        assert_eq!(ablated.point_cloud_precision, knobs.point_cloud_precision);
        assert_eq!(ablated.octomap_volume, baseline.octomap_volume);
        assert_eq!(ablated.planner_volume, baseline.planner_volume);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        assert_eq!(KnobAblation::none().label(), "none");
        assert_eq!(KnobAblation::all().label(), "all");
        assert_eq!(KnobAblation::precision_frozen().label(), "precision");
        assert_eq!(KnobAblation::volume_frozen().label(), "volume");
        let single = KnobAblation {
            freeze_octomap_volume: true,
            ..KnobAblation::default()
        };
        assert_eq!(single.label(), "om_vol");
        let pair = KnobAblation {
            freeze_point_cloud_precision: true,
            freeze_planner_volume: true,
            ..KnobAblation::default()
        };
        assert_eq!(pair.label(), "pc_prec+plan_vol");
    }

    #[test]
    fn catalog_covers_families_and_singles_without_duplicates() {
        let catalog = KnobAblation::catalog();
        assert_eq!(catalog.len(), 9);
        let labels: std::collections::HashSet<_> =
            catalog.iter().map(|(name, _)| name.clone()).collect();
        assert_eq!(labels.len(), catalog.len());
        // The "none" entry must be first so experiment tables read naturally.
        assert_eq!(catalog[0].0, "none");
        assert!(catalog[0].1.is_none());
    }
}
