//! The governor: time budgeting + solving = a per-decision policy.
//!
//! "The governor computes optimal time budgeting policies based on the
//! MAV's internal and external states (e.g., velocity and obstacle
//! density), which are monitored by profilers. These policies are passed to
//! the operators for enforcement." (paper Section III-A)

use crate::{
    KnobAblation, KnobRanges, KnobSettings, KnobSolver, PipelineLatencyModel, RuntimeMode,
    SolverConfig, SpatialProfile, TimeBudgeter,
};
use roborun_sim::{ComputeLatencyModel, LatencyBreakdown};
use serde::{Deserialize, Serialize};

/// The policy the governor hands to the operators for one decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Knob assignment the operators must enforce.
    pub knobs: KnobSettings,
    /// Decision deadline (time budget, seconds) the knobs were fitted to.
    pub deadline: f64,
    /// Latency the governor's model predicts for the knobs (seconds).
    pub predicted_latency: f64,
    /// `true` when even the cheapest knobs exceed the deadline.
    pub budget_exceeded: bool,
    /// Mode that produced the policy.
    pub mode: RuntimeMode,
}

/// Governor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Runtime mode (spatial-aware or the static baseline).
    pub mode: RuntimeMode,
    /// Knob ranges (Table II).
    pub ranges: KnobRanges,
    /// Time budgeter (Eq. 1 / Algorithm 1).
    pub budgeter: TimeBudgeter,
    /// Solver discretisation.
    pub solver: SolverConfig,
    /// Worst-case visibility assumed by the spatial-oblivious baseline
    /// (metres).
    pub oblivious_visibility: f64,
    /// Maximum commanded velocity of the mission (m/s); the baseline's
    /// static deadline is derived from the velocity it can actually sustain.
    pub max_velocity: f64,
    /// Ablation switch: when `false`, the governor uses only the
    /// instantaneous Eq. 1 budget instead of the waypoint-aware
    /// Algorithm 1 (the design choice DESIGN.md calls out for ablation).
    pub waypoint_budgeting: bool,
    /// Per-knob ablation: selected knobs are frozen at their static
    /// (Table II) values after the solver runs, isolating the contribution
    /// of each operator family.
    pub ablation: KnobAblation,
    /// Stale-perception derating: metres of effective visibility shed per
    /// second of perception-data age in
    /// [`Governor::safe_velocity_stale`]. Zero disables derating.
    pub stale_derate_rate: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            mode: RuntimeMode::SpatialAware,
            ranges: KnobRanges::table_ii(),
            budgeter: TimeBudgeter::default(),
            solver: SolverConfig::default(),
            oblivious_visibility: 2.0,
            max_velocity: 5.0,
            waypoint_budgeting: true,
            ablation: KnobAblation::none(),
            stale_derate_rate: 1.5,
        }
    }
}

/// The RoboRun governor.
#[derive(Debug, Clone)]
pub struct Governor {
    config: GovernorConfig,
    model: PipelineLatencyModel,
    solver: KnobSolver,
}

impl Governor {
    /// Creates a governor with the calibrated simulation latency model.
    pub fn new(config: GovernorConfig) -> Self {
        let model = PipelineLatencyModel::from_simulation(
            &ComputeLatencyModel::calibrated(),
            config.mode.is_aware(),
        );
        Self::with_model(config, model)
    }

    /// Creates a governor with an explicit (e.g. freshly fitted) latency
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the knob ranges are invalid.
    pub fn with_model(config: GovernorConfig, model: PipelineLatencyModel) -> Self {
        let solver = KnobSolver::new(config.ranges, config.solver);
        Governor {
            config,
            model,
            solver,
        }
    }

    /// The governor's configuration.
    pub fn config(&self) -> &GovernorConfig {
        &self.config
    }

    /// The latency model used by the solver.
    pub fn model(&self) -> &PipelineLatencyModel {
        &self.model
    }

    /// The static policy of the spatial-oblivious baseline: Table II static
    /// knobs and the worst-case deadline, independent of the profile.
    pub fn oblivious_policy(&self) -> Policy {
        let knobs = KnobSettings::static_baseline();
        let predicted_latency = self.model.predict(&knobs);
        let deadline = self
            .config
            .budgeter
            .local_budget(self.baseline_velocity(), self.config.oblivious_visibility);
        Policy {
            knobs,
            deadline,
            predicted_latency,
            budget_exceeded: predicted_latency > deadline,
            mode: RuntimeMode::SpatialOblivious,
        }
    }

    /// The velocity the spatial-oblivious design can actually sustain: the
    /// largest velocity whose worst-case budget covers its static latency
    /// (this is how the paper's baseline ends up at ~0.4 m/s).
    pub fn baseline_velocity(&self) -> f64 {
        let static_latency = self.model.predict(&KnobSettings::static_baseline());
        self.config.budgeter.safe_velocity(
            static_latency,
            self.config.oblivious_visibility,
            self.config.max_velocity,
        )
    }

    /// Produces the policy for one decision from the profiled spatial state.
    ///
    /// In [`RuntimeMode::SpatialOblivious`] the profile is ignored and the
    /// static policy is returned, exactly as a design-time-configured
    /// pipeline would behave.
    pub fn decide(&self, profile: &SpatialProfile) -> Policy {
        match self.config.mode {
            RuntimeMode::SpatialOblivious => self.oblivious_policy(),
            RuntimeMode::SpatialAware => {
                let deadline = if self.config.waypoint_budgeting {
                    self.config
                        .budgeter
                        .global_budget(&profile.current_waypoint(), &profile.upcoming_waypoints)
                } else {
                    self.config
                        .budgeter
                        .local_budget(profile.velocity, profile.visibility)
                };
                let outcome = self.solver.solve(deadline, profile, &self.model);
                let (knobs, predicted_latency, budget_exceeded) = if self.config.ablation.is_none()
                {
                    (
                        outcome.knobs,
                        outcome.predicted_latency,
                        outcome.budget_exceeded,
                    )
                } else {
                    // Frozen knobs revert to their static values; the
                    // predicted latency must reflect what the pipeline will
                    // actually be charged for.
                    let knobs = self.config.ablation.apply(outcome.knobs);
                    let predicted = self.model.predict(&knobs);
                    (knobs, predicted, predicted > deadline)
                };
                Policy {
                    knobs,
                    deadline,
                    predicted_latency,
                    budget_exceeded,
                    mode: RuntimeMode::SpatialAware,
                }
            }
        }
    }

    /// The velocity the MAV may safely command for the next interval given
    /// the decision's actual latency and the profiled visibility.
    pub fn safe_velocity(&self, latency: f64, visibility: f64) -> f64 {
        self.config
            .budgeter
            .safe_velocity(latency, visibility, self.config.max_velocity)
    }

    /// [`Governor::safe_velocity`] for a decision whose planning stage was
    /// (partially) masked by plan-ahead overlap: the budget law reasons
    /// about *reaction time*, so it must see the critical-path latency —
    /// planning work hidden behind the previous execution window never
    /// delayed the MAV's response. With zero masked latency this is
    /// exactly the plain [`Governor::safe_velocity`] of the breakdown's
    /// total.
    pub fn safe_velocity_overlapped(
        &self,
        breakdown: &LatencyBreakdown,
        masked_planning: f64,
        visibility: f64,
    ) -> f64 {
        self.safe_velocity(breakdown.critical_path(masked_planning), visibility)
    }

    /// [`Governor::safe_velocity`] in a world with *moving* obstacles:
    /// the budget law's reaction window must absorb not only the MAV's
    /// own motion but the worst closing speed of any nearby obstacle —
    /// an obstacle approaching at `closing_speed` eats
    /// `closing_speed · latency` metres of the visible margin before the
    /// next decision can react, so the effective visibility shrinks by
    /// exactly that much (floored at zero). With `closing_speed == 0`
    /// (every static world) this is bit-identical to the plain
    /// [`Governor::safe_velocity`].
    pub fn safe_velocity_closing(&self, latency: f64, visibility: f64, closing_speed: f64) -> f64 {
        if closing_speed <= 0.0 {
            return self.safe_velocity(latency, visibility);
        }
        let effective = (visibility - closing_speed * latency).max(0.0);
        self.safe_velocity(latency, effective)
    }

    /// [`Governor::safe_velocity_closing`] on *stale* perception data: a
    /// profile computed from voxels last refreshed `data_age` seconds ago
    /// overstates how much of the world is actually known, so the
    /// effective visibility sheds
    /// [`GovernorConfig::stale_derate_rate`]` · data_age` metres (floored
    /// at zero) before the closing-speed and latency terms apply — the
    /// data-age analogue of the closing-speed term. With `data_age == 0`
    /// (fresh data, every healthy decision) this is bit-identical to
    /// [`Governor::safe_velocity_closing`].
    pub fn safe_velocity_stale(
        &self,
        latency: f64,
        visibility: f64,
        closing_speed: f64,
        data_age: f64,
    ) -> f64 {
        if data_age <= 0.0 {
            return self.safe_velocity_closing(latency, visibility, closing_speed);
        }
        let effective = (visibility - data_age * self.config.stale_derate_rate).max(0.0);
        self.safe_velocity_closing(latency, effective, closing_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aware() -> Governor {
        Governor::new(GovernorConfig::default())
    }

    fn oblivious() -> Governor {
        Governor::new(GovernorConfig {
            mode: RuntimeMode::SpatialOblivious,
            ..GovernorConfig::default()
        })
    }

    #[test]
    fn oblivious_policy_is_static_and_worst_case() {
        let gov = oblivious();
        let open = SpatialProfile::open_space(2.0, 40.0);
        let tight = SpatialProfile::congested(0.5, 0.5, 1.0);
        let p1 = gov.decide(&open);
        let p2 = gov.decide(&tight);
        assert_eq!(p1.knobs, p2.knobs);
        assert_eq!(p1.knobs, KnobSettings::static_baseline());
        assert_eq!(p1.deadline, p2.deadline);
        assert_eq!(p1.mode, RuntimeMode::SpatialOblivious);
        // The baseline's static latency exceeds its worst-case deadline at
        // any meaningful velocity, which is precisely why it must crawl.
        assert!(p1.predicted_latency > 3.0);
    }

    #[test]
    fn baseline_velocity_is_paper_scale() {
        let gov = oblivious();
        let v = gov.baseline_velocity();
        // The paper's oblivious baseline averages ~0.4 m/s.
        assert!(v > 0.15 && v < 0.8, "baseline velocity {v}");
    }

    #[test]
    fn aware_governor_adapts_knobs_to_space() {
        let gov = aware();
        let open = gov.decide(&SpatialProfile::open_space(2.0, 40.0));
        let tight = gov.decide(&SpatialProfile::congested(0.5, 0.8, 2.0));
        // Open space: coarse precision, low latency.
        assert!(open.knobs.point_cloud_precision > tight.knobs.point_cloud_precision);
        assert!(open.predicted_latency < tight.predicted_latency);
        assert_eq!(open.mode, RuntimeMode::SpatialAware);
        // Congestion: precision bounded by Eq. 3's min(g_avg, d_obs) = 1.2 m.
        assert!(tight.knobs.point_cloud_precision <= 1.2 + 1e-9);
    }

    #[test]
    fn aware_deadline_tracks_visibility_and_velocity() {
        let gov = aware();
        let fast_blind = gov.decide(&SpatialProfile::congested(4.0, 2.0, 3.0));
        let slow_clear = gov.decide(&SpatialProfile::open_space(0.5, 40.0));
        assert!(slow_clear.deadline > fast_blind.deadline);
    }

    #[test]
    fn aware_policy_fits_budget_when_feasible() {
        let gov = aware();
        let profile = SpatialProfile::open_space(1.0, 30.0);
        let policy = gov.decide(&profile);
        assert!(!policy.budget_exceeded);
        assert!(policy.predicted_latency <= policy.deadline + 1e-9);
    }

    #[test]
    fn safe_velocity_reflects_latency() {
        let gov = aware();
        let fast = gov.safe_velocity(0.3, 40.0);
        let slow = gov.safe_velocity(4.5, 2.0);
        assert!(fast > 4.0 * slow, "fast {fast} vs slow {slow}");
        assert!(fast <= gov.config().max_velocity + 1e-9);
    }

    #[test]
    fn overlapped_safe_velocity_reflects_the_masked_planning_stage() {
        let gov = aware();
        let sim = ComputeLatencyModel::calibrated();
        let b = sim.decision_breakdown(0.6, 20_000.0, 1.2, 50_000.0, 1.2, 80_000.0, true);
        // Visibility short enough that the budget law binds (the cap at
        // `max_velocity` would hide the latency term entirely).
        let plain = gov.safe_velocity_overlapped(&b, 0.0, 2.0);
        assert_eq!(
            plain.to_bits(),
            gov.safe_velocity(b.total(), 2.0).to_bits(),
            "zero masked latency must reproduce the plain safe velocity"
        );
        assert!(plain < gov.config().max_velocity);
        // Masking the planning stage buys commanded velocity.
        let masked = gov.safe_velocity_overlapped(&b, b.planning, 2.0);
        assert!(masked > plain, "masked {masked} vs plain {plain}");
        assert_eq!(
            masked.to_bits(),
            gov.safe_velocity(b.total() - b.planning, 2.0).to_bits()
        );
    }

    #[test]
    fn closing_speed_costs_velocity_and_zero_is_identity() {
        let gov = aware();
        let plain = gov.safe_velocity(1.0, 10.0);
        // Zero closing speed: bit-identical to the plain budget.
        assert_eq!(
            gov.safe_velocity_closing(1.0, 10.0, 0.0).to_bits(),
            plain.to_bits()
        );
        // An approaching obstacle shrinks the usable margin.
        let closing = gov.safe_velocity_closing(1.0, 10.0, 3.0);
        assert!(closing < plain, "closing {closing} vs plain {plain}");
        assert_eq!(
            closing.to_bits(),
            gov.safe_velocity(1.0, 7.0).to_bits(),
            "closing term must shave exactly closing_speed * latency off visibility"
        );
        // Faster obstacles cost more; the floor keeps the result finite.
        assert!(gov.safe_velocity_closing(1.0, 10.0, 8.0) <= closing);
        let swamped = gov.safe_velocity_closing(1.0, 10.0, 50.0);
        assert!(swamped >= 0.0 && swamped.is_finite());
    }

    #[test]
    fn data_age_costs_velocity_and_zero_is_identity() {
        let gov = aware();
        let plain = gov.safe_velocity_closing(1.0, 10.0, 2.0);
        // Fresh data: bit-identical to the closing-speed budget.
        assert_eq!(
            gov.safe_velocity_stale(1.0, 10.0, 2.0, 0.0).to_bits(),
            plain.to_bits()
        );
        // Stale data derates visibility by stale_derate_rate * age.
        let rate = gov.config().stale_derate_rate;
        let stale = gov.safe_velocity_stale(1.0, 10.0, 2.0, 2.0);
        assert!(stale < plain, "stale {stale} vs fresh {plain}");
        assert_eq!(
            stale.to_bits(),
            gov.safe_velocity_closing(1.0, 10.0 - 2.0 * rate, 2.0)
                .to_bits(),
            "stale term must shave exactly stale_derate_rate * data_age off visibility"
        );
        // Older data costs more; the floor keeps the result finite.
        assert!(gov.safe_velocity_stale(1.0, 10.0, 2.0, 5.0) <= stale);
        let swamped = gov.safe_velocity_stale(1.0, 10.0, 2.0, 1_000.0);
        assert!(swamped >= 0.0 && swamped.is_finite());
        // With both terms zeroed it collapses to the plain budget.
        assert_eq!(
            gov.safe_velocity_stale(1.0, 10.0, 0.0, 0.0).to_bits(),
            gov.safe_velocity(1.0, 10.0).to_bits()
        );
    }

    #[test]
    fn aware_velocity_advantage_matches_paper_direction() {
        // The headline mechanism: in open space RoboRun's cheap decisions
        // plus long visibility allow a much higher safe velocity than the
        // baseline's static worst case.
        let aware_gov = aware();
        let oblivious_gov = oblivious();
        let open_policy = aware_gov.decide(&SpatialProfile::open_space(2.0, 40.0));
        let aware_velocity = aware_gov.safe_velocity(open_policy.predicted_latency, 40.0);
        let baseline_velocity = oblivious_gov.baseline_velocity();
        let ratio = aware_velocity / baseline_velocity;
        assert!(
            ratio > 3.0,
            "velocity ratio {ratio} too small for the paper's 5X headline"
        );
    }

    #[test]
    fn with_model_uses_custom_model() {
        let sim = ComputeLatencyModel::calibrated();
        let model = PipelineLatencyModel::from_simulation(&sim, true);
        let gov = Governor::with_model(GovernorConfig::default(), model);
        assert!((gov.model().fixed - model.fixed).abs() < 1e-12);
    }

    #[test]
    fn knob_ablation_freezes_the_selected_knobs() {
        let open = SpatialProfile::open_space(2.0, 40.0);
        let free = aware().decide(&open);
        let frozen_precision = Governor::new(GovernorConfig {
            ablation: KnobAblation::precision_frozen(),
            ..GovernorConfig::default()
        })
        .decide(&open);
        let frozen_all = Governor::new(GovernorConfig {
            ablation: KnobAblation::all(),
            ..GovernorConfig::default()
        })
        .decide(&open);

        // Precision is pinned at the static 0.3 m while volumes still relax.
        assert_eq!(frozen_precision.knobs.point_cloud_precision, 0.3);
        assert_eq!(
            frozen_precision.knobs.octomap_volume,
            free.knobs.octomap_volume
        );
        // Full ablation reproduces the static knob assignment, so its
        // predicted latency is the baseline's and exceeds the open-space
        // optimum.
        assert_eq!(frozen_all.knobs, KnobSettings::static_baseline());
        assert!(frozen_all.predicted_latency > free.predicted_latency);
        assert!(frozen_precision.predicted_latency >= free.predicted_latency);
    }

    #[test]
    fn waypoint_budgeting_ablation_changes_the_deadline() {
        let with = Governor::new(GovernorConfig::default());
        let without = Governor::new(GovernorConfig {
            waypoint_budgeting: false,
            ..GovernorConfig::default()
        });
        // A profile whose upcoming waypoints are much worse than the present
        // (fast and blind soon): Algorithm 1 must shorten the deadline
        // relative to the instantaneous Eq. 1 value.
        let mut profile = SpatialProfile::open_space(0.5, 30.0);
        profile.upcoming_waypoints = vec![crate::WaypointState {
            position: roborun_geom::Vec3::new(1.0, 0.0, 5.0),
            velocity: 5.0,
            visibility: 2.0,
        }];
        let p_with = with.decide(&profile);
        let p_without = without.decide(&profile);
        assert!(p_with.deadline < p_without.deadline);
        // With benign upcoming waypoints the two agree (both clamped).
        let benign = SpatialProfile::open_space(0.5, 30.0);
        let a = with.decide(&benign);
        let b = without.decide(&benign);
        assert!((a.deadline - b.deadline).abs() < 1e-9);
    }
}
