//! The six precision/volume knobs and their static/dynamic values
//! (paper Table II).
//!
//! | knob                              | static (baseline) | dynamic range    |
//! |-----------------------------------|-------------------|------------------|
//! | point-cloud precision (m)         | 0.3               | 0.3 … 9.6        |
//! | OctoMap-to-planner precision (m)  | 0.3               | 0.3 … 9.6        |
//! | OctoMap volume (m³)               | 46 000            | 0 … 60 000       |
//! | OctoMap-to-planner volume (m³)    | 150 000           | 0 … 1 000 000    |
//! | planner volume (m³)               | 150 000           | 0 … 1 000 000    |
//!
//! (The planner's *precision* is constrained to equal the
//! OctoMap-to-planner precision — Eq. 3's "precision for the perception to
//! planning and planning to be equivalent" — which is why Table II lists
//! five rows for six operators.)

use roborun_geom::precision_lattice;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One complete assignment of the pipeline's precision/volume knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobSettings {
    /// Point-cloud precision `p₀` (metres): grid cell size of the
    /// point-cloud down-sampling operator and resolution of the OctoMap
    /// update it feeds.
    pub point_cloud_precision: f64,
    /// OctoMap-to-planner precision `p₁ = p₂` (metres): export voxel size
    /// and the planner's collision-check step.
    pub map_to_planner_precision: f64,
    /// OctoMap volume `v₀` (m³): volume of space integrated into the map.
    pub octomap_volume: f64,
    /// OctoMap-to-planner volume `v₁` (m³): volume exported to the planner.
    pub map_to_planner_volume: f64,
    /// Planner volume `v₂` (m³): exploration volume budget of RRT*.
    pub planner_volume: f64,
}

impl KnobSettings {
    /// The paper's static, spatial-oblivious baseline (Table II, "Static").
    pub fn static_baseline() -> Self {
        KnobSettings {
            point_cloud_precision: 0.3,
            map_to_planner_precision: 0.3,
            octomap_volume: 46_000.0,
            map_to_planner_volume: 150_000.0,
            planner_volume: 150_000.0,
        }
    }

    /// The most relaxed (cheapest) assignment within Table II's dynamic
    /// ranges — what the governor converges to in open sky.
    pub fn most_relaxed(ranges: &KnobRanges) -> Self {
        KnobSettings {
            point_cloud_precision: ranges.precision_max,
            map_to_planner_precision: ranges.precision_max,
            octomap_volume: ranges.octomap_volume_max * 0.1,
            map_to_planner_volume: ranges.map_to_planner_volume_max * 0.05,
            planner_volume: ranges.planner_volume_max * 0.05,
        }
    }

    /// Validates the settings against the given ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self, ranges: &KnobRanges) -> Result<(), String> {
        let check = |name: &str, value: f64, lo: f64, hi: f64| {
            if value < lo - 1e-9 || value > hi + 1e-9 {
                Err(format!("{name} = {value} outside [{lo}, {hi}]"))
            } else {
                Ok(())
            }
        };
        check(
            "point_cloud_precision",
            self.point_cloud_precision,
            ranges.precision_min,
            ranges.precision_max,
        )?;
        check(
            "map_to_planner_precision",
            self.map_to_planner_precision,
            ranges.precision_min,
            ranges.precision_max,
        )?;
        check(
            "octomap_volume",
            self.octomap_volume,
            0.0,
            ranges.octomap_volume_max,
        )?;
        check(
            "map_to_planner_volume",
            self.map_to_planner_volume,
            0.0,
            ranges.map_to_planner_volume_max,
        )?;
        check(
            "planner_volume",
            self.planner_volume,
            0.0,
            ranges.planner_volume_max,
        )?;
        if self.point_cloud_precision > self.map_to_planner_precision + 1e-9 {
            return Err(format!(
                "perception precision ({}) must not be coarser than the export precision ({})",
                self.point_cloud_precision, self.map_to_planner_precision
            ));
        }
        if self.octomap_volume > self.map_to_planner_volume + 1e-9 {
            // Eq. 3: v0 ≤ v1.
            return Err(format!(
                "octomap volume ({}) must not exceed the exported volume ({})",
                self.octomap_volume, self.map_to_planner_volume
            ));
        }
        Ok(())
    }
}

impl Default for KnobSettings {
    fn default() -> Self {
        Self::static_baseline()
    }
}

impl fmt::Display for KnobSettings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p0={:.2} m, p1={:.2} m, v0={:.0} m³, v1={:.0} m³, v2={:.0} m³",
            self.point_cloud_precision,
            self.map_to_planner_precision,
            self.octomap_volume,
            self.map_to_planner_volume,
            self.planner_volume
        )
    }
}

/// The admissible ranges of every knob (paper Table II, "Dynamic" column)
/// plus the precision lattice parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnobRanges {
    /// Finest voxel size `vox_min` (metres).
    pub precision_min: f64,
    /// Coarsest voxel size (metres).
    pub precision_max: f64,
    /// Number of power-of-two precision levels between min and max.
    pub precision_levels: usize,
    /// Maximum OctoMap volume (m³).
    pub octomap_volume_max: f64,
    /// Maximum OctoMap-to-planner volume (m³).
    pub map_to_planner_volume_max: f64,
    /// Maximum planner exploration volume (m³).
    pub planner_volume_max: f64,
    /// Maximum volume the sensors can deliver per decision (m³) — the
    /// `v_sensor` bound in Eq. 3.
    pub sensor_volume_max: f64,
}

impl KnobRanges {
    /// The paper's Table II dynamic ranges.
    pub fn table_ii() -> Self {
        KnobRanges {
            precision_min: 0.3,
            precision_max: 9.6,
            precision_levels: 6,
            octomap_volume_max: 60_000.0,
            map_to_planner_volume_max: 1_000_000.0,
            planner_volume_max: 1_000_000.0,
            sensor_volume_max: 60_000.0,
        }
    }

    /// The power-of-two precision lattice the solver searches
    /// (`{vox_min · 2^n}` clipped to `precision_max`).
    pub fn precision_lattice(&self) -> Vec<f64> {
        precision_lattice(self.precision_min, self.precision_levels)
            .into_iter()
            .filter(|&p| p <= self.precision_max + 1e-9)
            .collect()
    }

    /// Validates the ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.precision_min <= 0.0 {
            return Err("precision_min must be positive".into());
        }
        if self.precision_max < self.precision_min {
            return Err("precision_max must be >= precision_min".into());
        }
        if self.precision_levels == 0 {
            return Err("precision_levels must be at least 1".into());
        }
        if self.octomap_volume_max <= 0.0
            || self.map_to_planner_volume_max <= 0.0
            || self.planner_volume_max <= 0.0
            || self.sensor_volume_max <= 0.0
        {
            return Err("volume maxima must be positive".into());
        }
        Ok(())
    }
}

impl Default for KnobRanges {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let r = KnobRanges::table_ii();
        assert_eq!(r.precision_min, 0.3);
        assert_eq!(r.precision_max, 9.6);
        assert_eq!(r.octomap_volume_max, 60_000.0);
        assert_eq!(r.map_to_planner_volume_max, 1_000_000.0);
        assert_eq!(r.planner_volume_max, 1_000_000.0);
        assert!(r.validate().is_ok());
        assert_eq!(KnobRanges::default(), r);

        let s = KnobSettings::static_baseline();
        assert_eq!(s.point_cloud_precision, 0.3);
        assert_eq!(s.map_to_planner_precision, 0.3);
        assert_eq!(s.octomap_volume, 46_000.0);
        assert_eq!(s.map_to_planner_volume, 150_000.0);
        assert_eq!(s.planner_volume, 150_000.0);
        assert_eq!(KnobSettings::default(), s);
    }

    #[test]
    fn lattice_spans_table_ii_range() {
        let lattice = KnobRanges::table_ii().precision_lattice();
        assert_eq!(lattice, vec![0.3, 0.6, 1.2, 2.4, 4.8, 9.6]);
    }

    #[test]
    fn static_baseline_is_valid_for_table_ii() {
        let ranges = KnobRanges::table_ii();
        assert!(KnobSettings::static_baseline().validate(&ranges).is_ok());
        assert!(KnobSettings::most_relaxed(&ranges)
            .validate(&ranges)
            .is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_values() {
        let ranges = KnobRanges::table_ii();
        let too_fine = KnobSettings {
            point_cloud_precision: 0.1,
            ..KnobSettings::static_baseline()
        };
        assert!(too_fine.validate(&ranges).is_err());
        let too_much_volume = KnobSettings {
            octomap_volume: 100_000.0,
            map_to_planner_volume: 200_000.0,
            ..KnobSettings::static_baseline()
        };
        assert!(too_much_volume.validate(&ranges).is_err());
        // Constraint p0 <= p1.
        let inverted_precision = KnobSettings {
            point_cloud_precision: 2.4,
            map_to_planner_precision: 0.6,
            ..KnobSettings::static_baseline()
        };
        assert!(inverted_precision.validate(&ranges).is_err());
        // Constraint v0 <= v1.
        let inverted_volume = KnobSettings {
            octomap_volume: 50_000.0,
            map_to_planner_volume: 10_000.0,
            ..KnobSettings::static_baseline()
        };
        assert!(inverted_volume.validate(&ranges).is_err());
    }

    #[test]
    fn ranges_validation_rejects_nonsense() {
        let mut r = KnobRanges::table_ii();
        r.precision_min = 0.0;
        assert!(r.validate().is_err());
        let mut r2 = KnobRanges::table_ii();
        r2.precision_max = 0.1;
        assert!(r2.validate().is_err());
        let mut r3 = KnobRanges::table_ii();
        r3.precision_levels = 0;
        assert!(r3.validate().is_err());
        let mut r4 = KnobRanges::table_ii();
        r4.planner_volume_max = 0.0;
        assert!(r4.validate().is_err());
    }

    #[test]
    fn display_lists_all_knobs() {
        let s = format!("{}", KnobSettings::static_baseline());
        assert!(s.contains("p0"));
        assert!(s.contains("v2"));
    }
}
