//! A standard PID controller.

use serde::{Deserialize, Serialize};

/// Proportional–integral–derivative controller with output clamping and
/// integral anti-windup.
///
/// # Example
///
/// ```
/// use roborun_control::Pid;
/// let mut pid = Pid::new(1.0, 0.1, 0.05, 10.0);
/// let u = pid.update(2.0, 0.1);
/// assert!(u > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    kp: f64,
    ki: f64,
    kd: f64,
    output_limit: f64,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with the given gains and symmetric output limit.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative or `output_limit <= 0`.
    pub fn new(kp: f64, ki: f64, kd: f64, output_limit: f64) -> Self {
        assert!(
            kp >= 0.0 && ki >= 0.0 && kd >= 0.0,
            "PID gains must be non-negative"
        );
        assert!(output_limit > 0.0, "output limit must be positive");
        Pid {
            kp,
            ki,
            kd,
            output_limit,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Proportional gain.
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// Integral gain.
    pub fn ki(&self) -> f64 {
        self.ki
    }

    /// Derivative gain.
    pub fn kd(&self) -> f64 {
        self.kd
    }

    /// Updates the controller with the current `error` over a step of `dt`
    /// seconds, returning the clamped control output.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        assert!(dt > 0.0, "dt must be positive, got {dt}");
        self.integral += error * dt;
        // Anti-windup: clamp the integral so ki·integral alone cannot exceed
        // the output limit.
        if self.ki > 0.0 {
            let max_integral = self.output_limit / self.ki;
            self.integral = self.integral.clamp(-max_integral, max_integral);
        }
        let derivative = match self.last_error {
            Some(last) => (error - last) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        let raw = self.kp * error + self.ki * self.integral + self.kd * derivative;
        raw.clamp(-self.output_limit, self.output_limit)
    }

    /// Resets the integral and derivative history.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = Pid::new(2.0, 0.0, 0.0, 100.0);
        assert!((pid.update(3.0, 0.1) - 6.0).abs() < 1e-12);
        assert!((pid.update(-1.5, 0.1) + 3.0).abs() < 1e-12);
        assert_eq!(pid.kp(), 2.0);
        assert_eq!(pid.ki(), 0.0);
        assert_eq!(pid.kd(), 0.0);
    }

    #[test]
    fn integral_accumulates_and_saturates() {
        let mut pid = Pid::new(0.0, 1.0, 0.0, 5.0);
        let mut last = 0.0;
        for _ in 0..100 {
            last = pid.update(1.0, 0.5);
        }
        // Output saturates at the limit rather than growing without bound.
        assert!((last - 5.0).abs() < 1e-9);
        // After the error flips sign, the anti-windup lets the output
        // recover quickly instead of staying pinned.
        for _ in 0..12 {
            last = pid.update(-1.0, 0.5);
        }
        assert!(last < 0.0, "output should have recovered, got {last}");
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = Pid::new(0.0, 0.0, 1.0, 100.0);
        assert_eq!(pid.update(1.0, 0.1), 0.0); // no history yet
        let u = pid.update(2.0, 0.1);
        assert!((u - 10.0).abs() < 1e-9);
    }

    #[test]
    fn output_clamped_to_limit() {
        let mut pid = Pid::new(100.0, 0.0, 0.0, 3.0);
        assert_eq!(pid.update(10.0, 0.1), 3.0);
        assert_eq!(pid.update(-10.0, 0.1), -3.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(1.0, 1.0, 1.0, 10.0);
        pid.update(2.0, 0.5);
        pid.update(3.0, 0.5);
        pid.reset();
        // After a reset the derivative term is zero again and the integral
        // restarts from scratch.
        let u = pid.update(1.0, 1.0);
        assert!((u - (1.0 + 1.0)).abs() < 1e-9); // kp·e + ki·(e·dt)
    }

    #[test]
    fn closed_loop_converges_to_setpoint() {
        // Simple first-order plant: x' = u.
        let mut pid = Pid::new(2.0, 0.4, 0.1, 50.0);
        let mut x: f64 = 0.0;
        let setpoint = 5.0;
        let dt = 0.05;
        for _ in 0..400 {
            let u = pid.update(setpoint - x, dt);
            x += u * dt;
        }
        assert!((x - setpoint).abs() < 0.1, "converged to {x}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gain_panics() {
        let _ = Pid::new(-1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut pid = Pid::new(1.0, 0.0, 0.0, 1.0);
        let _ = pid.update(1.0, 0.0);
    }
}
