//! Control substrate: PID control and trajectory following.
//!
//! The paper's control stage "ensures that the MAV closely follows the
//! generated trajectory while guaranteeing stability. We use standard PID
//! control." Control is not one of the governor-managed stages (its cost is
//! small and constant), but the mission loop needs it to convert the
//! smoothed trajectory into velocity commands and to report tracking error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod follower;
pub mod pid;

pub use follower::{FollowCommand, TrajectoryFollower};
pub use pid::Pid;
