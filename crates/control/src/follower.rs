//! Trajectory following: turning the smoothed trajectory into velocity
//! commands for the simulated drone.

use crate::Pid;
use roborun_geom::Vec3;
use roborun_planning::Trajectory;
use serde::{Deserialize, Serialize};

/// A velocity command produced by the follower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowCommand {
    /// Point on the trajectory the drone should steer towards.
    pub target: Vec3,
    /// Commanded ground speed (m/s), already corrected for tracking error.
    pub speed: f64,
    /// Current cross-track error (metres).
    pub tracking_error: f64,
    /// `true` when the trajectory is finished (the target is its end).
    pub finished: bool,
}

/// Tracks progress along a [`Trajectory`] and produces velocity commands.
///
/// The follower looks ahead along the time-parameterised trajectory and uses
/// a PID loop on the cross-track error to modulate the commanded speed:
/// large tracking errors slow the drone down so it can re-converge, which is
/// also what keeps it stable when the runtime swaps trajectories after a
/// re-plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryFollower {
    trajectory: Trajectory,
    progress_time: f64,
    lookahead: f64,
    speed_pid: Pid,
}

impl TrajectoryFollower {
    /// Creates a follower for a trajectory with the given lookahead time
    /// (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `lookahead <= 0`.
    pub fn new(trajectory: Trajectory, lookahead: f64) -> Self {
        assert!(
            lookahead > 0.0,
            "lookahead must be positive, got {lookahead}"
        );
        TrajectoryFollower {
            trajectory,
            progress_time: 0.0,
            lookahead,
            speed_pid: Pid::new(0.8, 0.05, 0.0, 3.0),
        }
    }

    /// The trajectory being followed.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Current progress time along the trajectory (seconds).
    pub fn progress_time(&self) -> f64 {
        self.progress_time
    }

    /// Replaces the trajectory (after a re-plan) and restarts progress.
    pub fn replace_trajectory(&mut self, trajectory: Trajectory) {
        self.trajectory = trajectory;
        self.progress_time = 0.0;
        self.speed_pid.reset();
    }

    /// `true` when the follower has consumed the whole trajectory.
    pub fn finished(&self) -> bool {
        self.trajectory.is_empty() || self.progress_time >= self.trajectory.duration()
    }

    /// Advances the follower by `dt` seconds given the drone's current
    /// position and returns the command for the next interval.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn update(&mut self, current_position: Vec3, dt: f64) -> FollowCommand {
        assert!(dt > 0.0, "dt must be positive, got {dt}");
        if self.trajectory.is_empty() {
            return FollowCommand {
                target: current_position,
                speed: 0.0,
                tracking_error: 0.0,
                finished: true,
            };
        }
        let reference = self
            .trajectory
            .sample_at(self.progress_time)
            .expect("non-empty trajectory always samples");
        let tracking_error = reference.position.distance(current_position);
        // Only advance the reference when the drone is keeping up; this
        // prevents the reference from running away after a slow decision.
        if tracking_error < 2.0 {
            self.progress_time += dt;
        } else {
            self.progress_time += dt * 0.25;
        }
        let target_time = (self.progress_time + self.lookahead).min(self.trajectory.duration());
        let target_sample = self
            .trajectory
            .sample_at(target_time)
            .expect("non-empty trajectory always samples");
        // Slow down proportionally to the tracking error.
        let correction = self.speed_pid.update(tracking_error, dt);
        let speed =
            (target_sample.speed - 0.5 * correction).clamp(0.2, target_sample.speed.max(0.2));
        FollowCommand {
            target: target_sample.position,
            speed,
            tracking_error,
            finished: self.finished(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_planning::{smooth_path, SmoothingConfig};

    fn straight_trajectory(speed: f64) -> Trajectory {
        smooth_path(
            &[Vec3::new(0.0, 0.0, 5.0), Vec3::new(30.0, 0.0, 5.0)],
            speed,
            &SmoothingConfig::default(),
        )
    }

    #[test]
    fn empty_trajectory_is_finished_immediately() {
        let mut f = TrajectoryFollower::new(Trajectory::empty(), 0.5);
        assert!(f.finished());
        let cmd = f.update(Vec3::ZERO, 0.1);
        assert!(cmd.finished);
        assert_eq!(cmd.speed, 0.0);
        assert_eq!(cmd.target, Vec3::ZERO);
    }

    #[test]
    fn commands_follow_the_trajectory_forward() {
        let traj = straight_trajectory(3.0);
        let mut f = TrajectoryFollower::new(traj.clone(), 0.5);
        let c1 = f.update(Vec3::new(0.0, 0.0, 5.0), 0.5);
        assert!(c1.target.x > 0.0);
        assert!(c1.speed > 0.0);
        assert!(!c1.finished);
        // Later commands aim farther along the path.
        let mut pos = Vec3::new(0.0, 0.0, 5.0);
        let mut last_x = c1.target.x;
        for _ in 0..10 {
            let c = f.update(pos, 0.5);
            pos = c.target; // idealised drone that reaches the target
            assert!(c.target.x >= last_x - 1e-9);
            last_x = c.target.x;
        }
        assert!(f.progress_time() > 0.0);
    }

    #[test]
    fn finishes_after_duration_consumed() {
        let traj = straight_trajectory(4.0);
        let duration = traj.duration();
        let mut f = TrajectoryFollower::new(traj, 0.5);
        let mut pos = Vec3::new(0.0, 0.0, 5.0);
        let mut steps = 0;
        while !f.finished() && steps < 10_000 {
            let c = f.update(pos, 0.5);
            pos = c.target;
            steps += 1;
        }
        assert!(f.finished());
        assert!((steps as f64) * 0.5 >= duration * 0.9);
        // Final target is the trajectory end.
        assert!((pos - Vec3::new(30.0, 0.0, 5.0)).norm() < 1.0);
    }

    #[test]
    fn large_tracking_error_slows_progress_and_speed() {
        let traj = straight_trajectory(4.0);
        let mut on_track = TrajectoryFollower::new(traj.clone(), 0.5);
        let mut off_track = TrajectoryFollower::new(traj, 0.5);
        for _ in 0..6 {
            on_track.update(
                on_track
                    .trajectory()
                    .sample_at(on_track.progress_time())
                    .unwrap()
                    .position,
                0.5,
            );
            off_track.update(Vec3::new(0.0, 25.0, 5.0), 0.5);
        }
        assert!(off_track.progress_time() < on_track.progress_time());
        let cmd_off = off_track.update(Vec3::new(0.0, 25.0, 5.0), 0.5);
        let cmd_on = on_track.update(
            on_track
                .trajectory()
                .sample_at(on_track.progress_time())
                .unwrap()
                .position,
            0.5,
        );
        assert!(cmd_off.tracking_error > cmd_on.tracking_error);
        assert!(cmd_off.speed <= cmd_on.speed + 1e-9);
    }

    #[test]
    fn replace_trajectory_resets_progress() {
        let mut f = TrajectoryFollower::new(straight_trajectory(3.0), 0.5);
        f.update(Vec3::new(0.0, 0.0, 5.0), 1.0);
        assert!(f.progress_time() > 0.0);
        f.replace_trajectory(straight_trajectory(2.0));
        assert_eq!(f.progress_time(), 0.0);
        assert!(!f.finished());
    }

    #[test]
    fn commanded_speed_never_negative_or_zero() {
        let mut f = TrajectoryFollower::new(straight_trajectory(1.0), 0.5);
        for i in 0..20 {
            let cmd = f.update(Vec3::new(i as f64, 10.0, 5.0), 0.5);
            assert!(cmd.speed >= 0.2);
        }
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_panics() {
        let _ = TrajectoryFollower::new(Trajectory::empty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_panics() {
        let mut f = TrajectoryFollower::new(straight_trajectory(1.0), 0.5);
        let _ = f.update(Vec3::ZERO, 0.0);
    }
}
