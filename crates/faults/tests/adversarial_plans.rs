//! Adversarial fault-plan conformance: sweeps the shared
//! [`roborun_conformance::adversarial_fault_windows`] family through every
//! fault channel and pins the properties the mission stack relies on:
//!
//! * **Purity** — [`FaultPlan::frame`] is a pure function of
//!   `(seed, decision)`: re-evaluation, out-of-order evaluation and a
//!   freshly compiled plan all agree exactly.
//! * **Exact duty cycle** — over any whole number of periods a window is
//!   active exactly `len` times per period, whatever phase the seed drew.
//! * **Validation** — every adversarial shape passes
//!   [`FaultPlanConfig::validate`], while degenerate spellings
//!   (`period == 0`, `len == 0`, `len > period`) are rejected.

use roborun_conformance::adversarial_fault_windows;
use roborun_faults::{
    FaultPlan, FaultPlanConfig, FaultWindows, MapFaultChannel, PlannerFaultChannel,
    SensorFaultChannel,
};

/// Builds one single-channel plan per fault channel, all sharing `window`.
fn plans_for(window: FaultWindows, seed: u64) -> Vec<(&'static str, FaultPlanConfig)> {
    let base = FaultPlanConfig {
        seed,
        ..FaultPlanConfig::healthy()
    };
    vec![
        (
            "sensor.blackout",
            FaultPlanConfig {
                sensor: SensorFaultChannel {
                    blackout: Some(window),
                    ..SensorFaultChannel::default()
                },
                ..base.clone()
            },
        ),
        (
            "sensor.burst",
            FaultPlanConfig {
                sensor: SensorFaultChannel {
                    burst: Some(window),
                    burst_dropout: 0.4,
                    burst_noise_std: 0.2,
                    ..SensorFaultChannel::default()
                },
                ..base.clone()
            },
        ),
        (
            "planner.spike",
            FaultPlanConfig {
                planner: PlannerFaultChannel {
                    spike: Some(window),
                    spike_latency: 5.0,
                    failure: None,
                },
                ..base.clone()
            },
        ),
        (
            "planner.failure",
            FaultPlanConfig {
                planner: PlannerFaultChannel {
                    failure: Some(window),
                    ..PlannerFaultChannel::default()
                },
                ..base.clone()
            },
        ),
        (
            "map.stale",
            FaultPlanConfig {
                map: MapFaultChannel {
                    stale: Some(window),
                },
                ..base
            },
        ),
    ]
}

#[test]
fn adversarial_windows_validate_and_arm() {
    for s in adversarial_fault_windows(17) {
        let window = FaultWindows::every(s.period, s.len);
        for (channel, plan) in plans_for(window, 99) {
            plan.validate()
                .unwrap_or_else(|e| panic!("{}: {channel} rejected: {e}", s.name));
            assert!(
                !plan.is_healthy(),
                "{}: {channel} armed plan reported healthy",
                s.name
            );
        }
    }
}

#[test]
fn degenerate_windows_are_rejected() {
    for (period, len) in [(0, 0), (0, 1), (5, 0), (5, 6)] {
        let plan = FaultPlanConfig {
            map: MapFaultChannel {
                stale: Some(FaultWindows::every(period, len)),
            },
            ..FaultPlanConfig::healthy()
        };
        assert!(
            plan.validate().is_err(),
            "window period={period} len={len} should be invalid"
        );
    }
}

#[test]
fn frames_are_pure_in_any_evaluation_order() {
    for s in adversarial_fault_windows(17) {
        let window = FaultWindows::every(s.period, s.len);
        for (channel, config) in plans_for(window, 7) {
            let plan = FaultPlan::new(config.clone());
            let forward: Vec<_> = (0..256).map(|d| plan.frame(d)).collect();
            // Reverse order, interleaved repeats, and a freshly compiled
            // plan must reproduce the forward stream exactly.
            let fresh = FaultPlan::new(config);
            for d in (0..256).rev() {
                assert_eq!(
                    plan.frame(d),
                    forward[d as usize],
                    "{}: {channel} frame {d} changed on re-evaluation",
                    s.name
                );
                assert_eq!(
                    fresh.frame(d),
                    forward[d as usize],
                    "{}: {channel} frame {d} differs on a fresh plan",
                    s.name
                );
            }
        }
    }
}

#[test]
fn duty_cycle_is_exact_over_whole_periods() {
    for s in adversarial_fault_windows(17) {
        // Keep the horizon sane for the sparse-long scenario.
        let periods = if s.period > 1_000 { 2 } else { 8 };
        let horizon = s.period * periods;
        for seed in [0u64, 7, 0x0BAD_5EED] {
            let window = FaultWindows::every(s.period, s.len);
            for (channel, config) in plans_for(window, seed) {
                let plan = FaultPlan::new(config);
                let active = (0..horizon)
                    .filter(|&d| !plan.frame(d).is_healthy())
                    .count();
                assert_eq!(
                    active as u64,
                    s.len * periods,
                    "{}: {channel} at seed {seed} injected {active} of {horizon}",
                    s.name
                );
            }
        }
    }
}
