//! Deterministic fault plans for the mission stack.
//!
//! RoboRun's runtime only ever sees a *healthy* robot unless something
//! injects failure — and ad-hoc failure injection destroys the workspace's
//! bit-reproducibility contract. This crate makes failure a first-class,
//! deterministic input instead: a [`FaultPlan`] is a **pure function of the
//! decision index** (plus a fixed seed), exactly like the `dynamics` crate
//! is a pure function of time, so the same seed and plan replay the same
//! faults bit-for-bit on every run and on both mission drivers.
//!
//! # The determinism contract
//!
//! - [`FaultPlan::frame`] derives everything from `(seed, decision)`:
//!   window membership uses `(decision + phase) % period < len` with a
//!   seed-derived per-channel phase, and any per-decision randomness
//!   (burst corruption, link dice) comes from a fresh
//!   [`SplitMix64`] keyed by seed, a per-channel
//!   salt and the decision index. No shared mutable RNG stream exists, so
//!   evaluation order cannot perturb outcomes.
//! - Bus faults are a pure function of `(topic, sequence)`: the
//!   [`DeterministicLinkFaults`] model re-seeds per sample, so the same
//!   publish sequence yields the same losses, duplicates and delays
//!   regardless of node scheduling.
//! - A healthy plan ([`FaultPlanConfig::is_healthy`]) must never be armed:
//!   callers gate on it (`(!cfg.is_healthy()).then(...)`) so that
//!   faults-off runs execute the exact pre-fault code path and stay
//!   byte-identical to the golden fixtures.
//!
//! # Injection points
//!
//! Each channel names the single place in the stack where it applies:
//!
//! | channel | injection point |
//! |---------|-----------------|
//! | sensor blackout / burst | between the camera rig and cloud integration |
//! | bus loss / duplication / delay | [`MessageBus::publish`](roborun_middleware::MessageBus) via [`FaultyBus`] |
//! | planner spike / forced failure | around the planner call, charged to the planning latency |
//! | stale map | the map-integration step of the perception operators |
//!
//! # The degradation ladder
//!
//! The mission runtime (in `roborun-mission`) pairs this crate with a
//! graceful-degradation ladder. When a planner fault or stale perception is
//! detected the runtime walks, in order: **retry** the plan under a
//! watchdog budget with decaying backoff → **reuse** the last valid
//! trajectory while it stays clear → **hover** in place → **wedge-retreat
//! safe-stop**, recording the step taken in every decision's telemetry.
//! This crate only *produces* faults; the ladder lives with the drivers so
//! both `MissionRunner` and the node pipeline share it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use roborun_geom::SplitMix64;
use roborun_middleware::{LinkDisposition, LinkFaultModel, MessageBus, TopicName};
use serde::{Deserialize, Serialize};

/// Per-channel salts folded into the plan seed so channels draw from
/// unrelated streams even when their windows coincide.
const BLACKOUT_SALT: u64 = 0x424C_4143_4B4F_5554; // "BLACKOUT"
const BURST_SALT: u64 = 0x4255_5253_544E_4F49;
const SPIKE_SALT: u64 = 0x5350_494B_455F_5031;
const FAILURE_SALT: u64 = 0x4641_494C_5552_4553;
const STALE_SALT: u64 = 0x5354_414C_454D_4150; // "STALEMAP"
const LINK_SALT: u64 = 0x4C49_4E4B_4641_554C;

/// A periodic activation window over the decision index.
///
/// The window is active when `(decision + phase) % period < len`, where
/// `phase` is derived from the plan seed so different seeds shift where in
/// the mission the faults land without changing their duty cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindows {
    /// Window period in decisions (must be positive).
    pub period: u64,
    /// Active decisions per period (`0 < len <= period`).
    pub len: u64,
}

impl FaultWindows {
    /// A window active for `len` out of every `period` decisions.
    pub fn every(period: u64, len: u64) -> Self {
        FaultWindows { period, len }
    }

    /// `true` when `decision` (shifted by `phase`) falls inside the window.
    pub fn active(&self, decision: u64, phase: u64) -> bool {
        self.period > 0 && (decision.wrapping_add(phase)) % self.period < self.len
    }

    fn validate(&self, name: &str) -> Result<(), String> {
        if self.period == 0 {
            return Err(format!("{name}: period must be positive"));
        }
        if self.len == 0 || self.len > self.period {
            return Err(format!(
                "{name}: len must be in 1..=period, got {} of {}",
                self.len, self.period
            ));
        }
        Ok(())
    }
}

/// Perception-side faults: full sensor blackouts and depth-noise bursts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SensorFaultChannel {
    /// Decisions on which the whole sweep is lost (no depth returns at
    /// all, and the map is not updated).
    pub blackout: Option<FaultWindows>,
    /// Decisions on which surviving returns are corrupted per
    /// [`SensorFaultChannel::burst_dropout`] / `burst_noise_std`.
    pub burst: Option<FaultWindows>,
    /// Per-point dropout probability during a burst, in `[0, 1]`.
    pub burst_dropout: f64,
    /// Radial noise standard deviation during a burst (metres).
    pub burst_noise_std: f64,
}

/// Planning-side faults: latency spikes and forced plan failures.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlannerFaultChannel {
    /// Decisions on which the planner takes `spike_latency` extra seconds.
    pub spike: Option<FaultWindows>,
    /// Extra planning latency during a spike (seconds, non-negative).
    pub spike_latency: f64,
    /// Decisions on which the planner call fails outright.
    pub failure: Option<FaultWindows>,
}

/// Environment-model faults: epochs during which the map goes stale
/// (sensing continues but integration is withheld).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MapFaultChannel {
    /// Decisions on which map integration is skipped.
    pub stale: Option<FaultWindows>,
}

/// Link faults applied to one named topic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFaultConfig {
    /// Probability a published sample is lost on the wire, in `[0, 1]`.
    pub loss_probability: f64,
    /// Probability a sample is delivered twice, in `[0, 1]`.
    pub duplicate_probability: f64,
    /// Probability a sample is delayed by `extra_delay`, in `[0, 1]`.
    pub delay_probability: f64,
    /// Extra transport latency for delayed samples (seconds).
    pub extra_delay: f64,
}

impl LinkFaultConfig {
    /// `true` when the link never misbehaves.
    pub fn is_healthy(&self) -> bool {
        self.loss_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && (self.delay_probability <= 0.0 || self.extra_delay <= 0.0)
    }

    fn validate(&self, topic: &str) -> Result<(), String> {
        for (name, p) in [
            ("loss_probability", self.loss_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("delay_probability", self.delay_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{topic}: {name} must be in [0, 1], got {p}"));
            }
        }
        if self.extra_delay < 0.0 || !self.extra_delay.is_finite() {
            return Err(format!(
                "{topic}: extra_delay must be finite and non-negative, got {}",
                self.extra_delay
            ));
        }
        Ok(())
    }
}

/// Middleware faults: per-topic loss/duplication/delay dice.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BusFaultChannel {
    /// `(topic name, faults)` pairs; topics not listed are healthy.
    pub links: Vec<(String, LinkFaultConfig)>,
}

impl BusFaultChannel {
    /// `true` when no listed link misbehaves.
    pub fn is_healthy(&self) -> bool {
        self.links.iter().all(|(_, link)| link.is_healthy())
    }
}

/// The full, serialisable description of a fault campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Seed of the plan's derived random streams.
    pub seed: u64,
    /// Perception faults.
    pub sensor: SensorFaultChannel,
    /// Planning faults.
    pub planner: PlannerFaultChannel,
    /// Map-staleness faults.
    pub map: MapFaultChannel,
    /// Middleware link faults (only meaningful on the node pipeline).
    pub bus: BusFaultChannel,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0x0BAD_5EED,
            sensor: SensorFaultChannel::default(),
            planner: PlannerFaultChannel::default(),
            map: MapFaultChannel::default(),
            bus: BusFaultChannel::default(),
        }
    }
}

impl FaultPlanConfig {
    /// No faults at all (the default).
    pub fn healthy() -> Self {
        FaultPlanConfig::default()
    }

    /// `true` when every channel is disabled; healthy plans must not be
    /// armed so that faults-off runs stay byte-identical.
    pub fn is_healthy(&self) -> bool {
        self.sensor.blackout.is_none()
            && (self.sensor.burst.is_none()
                || (self.sensor.burst_dropout <= 0.0 && self.sensor.burst_noise_std <= 0.0))
            && (self.planner.spike.is_none() || self.planner.spike_latency <= 0.0)
            && self.planner.failure.is_none()
            && self.map.stale.is_none()
            && self.bus.is_healthy()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field: degenerate
    /// windows, probabilities outside `[0, 1]`, negative or non-finite
    /// latencies, or invalid topic names on the bus channel.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(w) = &self.sensor.blackout {
            w.validate("sensor.blackout")?;
        }
        if let Some(w) = &self.sensor.burst {
            w.validate("sensor.burst")?;
            if !(0.0..=1.0).contains(&self.sensor.burst_dropout) {
                return Err(format!(
                    "sensor.burst_dropout must be in [0, 1], got {}",
                    self.sensor.burst_dropout
                ));
            }
            if self.sensor.burst_noise_std < 0.0 {
                return Err(format!(
                    "sensor.burst_noise_std must be non-negative, got {}",
                    self.sensor.burst_noise_std
                ));
            }
        }
        if let Some(w) = &self.planner.spike {
            w.validate("planner.spike")?;
            if self.planner.spike_latency < 0.0 || !self.planner.spike_latency.is_finite() {
                return Err(format!(
                    "planner.spike_latency must be finite and non-negative, got {}",
                    self.planner.spike_latency
                ));
            }
        }
        if let Some(w) = &self.planner.failure {
            w.validate("planner.failure")?;
        }
        if let Some(w) = &self.map.stale {
            w.validate("map.stale")?;
        }
        for (topic, link) in &self.bus.links {
            TopicName::new(topic).map_err(|e| format!("bus link topic: {e}"))?;
            link.validate(topic)?;
        }
        Ok(())
    }
}

/// Burst-corruption parameters for one decision, ready to drive a
/// deterministic per-decision corruptor (the mission side feeds these to
/// `roborun_sim::FaultInjector`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorBurst {
    /// Per-point dropout probability, in `[0, 1]`.
    pub dropout: f64,
    /// Radial noise standard deviation (metres).
    pub noise_std: f64,
    /// Seed for this decision's corruption stream (derived from the plan
    /// seed and the decision index).
    pub seed: u64,
}

/// What the plan injects on one decision — a pure function of
/// `(plan seed, decision index)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultFrame {
    /// The whole sensor sweep is lost and the map is not updated.
    pub sensor_blackout: bool,
    /// Surviving depth returns are corrupted with these parameters.
    pub sensor_burst: Option<SensorBurst>,
    /// Extra planning latency charged this decision (seconds).
    pub planner_spike: f64,
    /// The planner call fails outright this decision.
    pub planner_failure: bool,
    /// Map integration is withheld this decision.
    pub map_stale: bool,
}

impl FaultFrame {
    /// `true` when nothing is injected this decision.
    pub fn is_healthy(&self) -> bool {
        !self.sensor_blackout
            && self.sensor_burst.is_none()
            && self.planner_spike <= 0.0
            && !self.planner_failure
            && !self.map_stale
    }

    /// Number of fault channels active this decision (for the
    /// `faults_injected` mission counter).
    pub fn injected_count(&self) -> usize {
        usize::from(self.sensor_blackout)
            + usize::from(self.sensor_burst.is_some())
            + usize::from(self.planner_spike > 0.0)
            + usize::from(self.planner_failure)
            + usize::from(self.map_stale)
    }
}

/// A compiled fault plan: per-channel phases are derived from the seed once
/// so that [`FaultPlan::frame`] is a cheap pure function.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultPlanConfig,
    blackout_phase: u64,
    burst_phase: u64,
    spike_phase: u64,
    failure_phase: u64,
    stale_phase: u64,
}

fn phase_for(seed: u64, salt: u64, windows: Option<FaultWindows>) -> u64 {
    match windows {
        Some(w) if w.period > 0 => SplitMix64::new(seed ^ salt).next_u64() % w.period,
        _ => 0,
    }
}

impl FaultPlan {
    /// Compiles a plan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultPlanConfig::validate`]).
    pub fn new(config: FaultPlanConfig) -> Self {
        config.validate().expect("invalid fault plan");
        let seed = config.seed;
        FaultPlan {
            blackout_phase: phase_for(seed, BLACKOUT_SALT, config.sensor.blackout),
            burst_phase: phase_for(seed, BURST_SALT, config.sensor.burst),
            spike_phase: phase_for(seed, SPIKE_SALT, config.planner.spike),
            failure_phase: phase_for(seed, FAILURE_SALT, config.planner.failure),
            stale_phase: phase_for(seed, STALE_SALT, config.map.stale),
            config,
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// The faults injected on decision `decision` (0-based). Pure: the same
    /// `(config, decision)` always yields the same frame.
    pub fn frame(&self, decision: u64) -> FaultFrame {
        let sensor = &self.config.sensor;
        let planner = &self.config.planner;
        let sensor_blackout = sensor
            .blackout
            .is_some_and(|w| w.active(decision, self.blackout_phase));
        let burst_active = sensor
            .burst
            .is_some_and(|w| w.active(decision, self.burst_phase))
            && (sensor.burst_dropout > 0.0 || sensor.burst_noise_std > 0.0);
        let sensor_burst = (burst_active && !sensor_blackout).then(|| SensorBurst {
            dropout: sensor.burst_dropout,
            noise_std: sensor.burst_noise_std,
            seed: SplitMix64::new(
                self.config.seed ^ BURST_SALT ^ decision.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
            .next_u64(),
        });
        let planner_spike = if planner
            .spike
            .is_some_and(|w| w.active(decision, self.spike_phase))
        {
            planner.spike_latency
        } else {
            0.0
        };
        let planner_failure = planner
            .failure
            .is_some_and(|w| w.active(decision, self.failure_phase));
        let map_stale = self
            .config
            .map
            .stale
            .is_some_and(|w| w.active(decision, self.stale_phase));
        FaultFrame {
            sensor_blackout,
            sensor_burst,
            planner_spike,
            planner_failure,
            map_stale,
        }
    }

    /// A bus fault model for this plan, or `None` when the bus channel is
    /// healthy. Install on a [`MessageBus`] (or use [`FaultyBus`]).
    pub fn link_faults(&self) -> Option<DeterministicLinkFaults> {
        (!self.config.bus.is_healthy()).then(|| DeterministicLinkFaults {
            seed: self.config.seed,
            links: self.config.bus.links.clone(),
        })
    }
}

/// FNV-1a over the topic name: a stable, dependency-free hash so link dice
/// do not depend on the standard library's hasher internals.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A [`LinkFaultModel`] that is a pure function of `(topic, sequence)`:
/// each sample re-seeds its own [`SplitMix64`], so delivery faults are
/// reproducible regardless of publish interleaving across topics.
#[derive(Debug, Clone)]
pub struct DeterministicLinkFaults {
    seed: u64,
    links: Vec<(String, LinkFaultConfig)>,
}

impl LinkFaultModel for DeterministicLinkFaults {
    fn disposition(&mut self, topic: &TopicName, sequence: u64) -> LinkDisposition {
        let Some((_, link)) = self.links.iter().find(|(name, _)| name == topic.as_str()) else {
            return LinkDisposition::healthy();
        };
        let mut rng = SplitMix64::new(
            self.seed
                ^ LINK_SALT
                ^ fnv1a(topic.as_str())
                ^ sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let drop = link.loss_probability > 0.0 && rng.chance(link.loss_probability);
        let duplicates = if !drop
            && link.duplicate_probability > 0.0
            && rng.chance(link.duplicate_probability)
        {
            1
        } else {
            0
        };
        let extra_delay = if !drop
            && link.delay_probability > 0.0
            && link.extra_delay > 0.0
            && rng.chance(link.delay_probability)
        {
            link.extra_delay
        } else {
            0.0
        };
        LinkDisposition {
            drop,
            duplicates,
            extra_delay,
        }
    }
}

/// A [`MessageBus`] with a fault plan's link model pre-installed.
///
/// The wrapper derefs to the underlying bus, so every typed
/// [`BusError`](roborun_middleware::BusError) surface is unchanged —
/// publishes on a lossy link still return `Ok` (loss is silent, as on a
/// real wire), while structural failures (`BusClosed`, `TypeMismatch`,
/// `PayloadTypeCorrupted`, …) propagate exactly as on a healthy bus.
#[derive(Debug, Clone)]
pub struct FaultyBus {
    bus: MessageBus,
}

impl FaultyBus {
    /// Wraps `bus`, installing `faults` as its link model.
    pub fn new(bus: MessageBus, faults: DeterministicLinkFaults) -> Self {
        bus.install_link_faults(Box::new(faults));
        FaultyBus { bus }
    }

    /// A cheap clone of the underlying bus handle (for node construction).
    pub fn bus(&self) -> MessageBus {
        self.bus.clone()
    }
}

impl std::ops::Deref for FaultyBus {
    type Target = MessageBus;

    fn deref(&self) -> &MessageBus {
        &self.bus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed_plan() -> FaultPlanConfig {
        FaultPlanConfig {
            sensor: SensorFaultChannel {
                blackout: Some(FaultWindows::every(30, 8)),
                burst: Some(FaultWindows::every(17, 5)),
                burst_dropout: 0.4,
                burst_noise_std: 0.1,
            },
            planner: PlannerFaultChannel {
                spike: Some(FaultWindows::every(23, 4)),
                spike_latency: 6.0,
                failure: Some(FaultWindows::every(29, 3)),
            },
            map: MapFaultChannel {
                stale: Some(FaultWindows::every(13, 2)),
            },
            bus: BusFaultChannel {
                links: vec![(
                    "/sensors/points".to_string(),
                    LinkFaultConfig {
                        loss_probability: 0.3,
                        duplicate_probability: 0.1,
                        delay_probability: 0.2,
                        extra_delay: 0.05,
                    },
                )],
            },
            ..FaultPlanConfig::default()
        }
    }

    #[test]
    fn healthy_plan_injects_nothing() {
        let plan = FaultPlan::new(FaultPlanConfig::healthy());
        assert!(FaultPlanConfig::healthy().is_healthy());
        for d in 0..500 {
            assert!(plan.frame(d).is_healthy());
            assert_eq!(plan.frame(d).injected_count(), 0);
        }
        assert!(plan.link_faults().is_none());
    }

    #[test]
    fn frames_are_a_pure_function_of_the_decision() {
        let plan_a = FaultPlan::new(armed_plan());
        let plan_b = FaultPlan::new(armed_plan());
        for d in 0..1_000 {
            assert_eq!(plan_a.frame(d), plan_b.frame(d));
        }
        // Evaluation order does not matter.
        for d in (0..1_000).rev() {
            assert_eq!(plan_a.frame(d), plan_b.frame(d));
        }
    }

    #[test]
    fn windows_respect_their_duty_cycle() {
        let plan = FaultPlan::new(FaultPlanConfig {
            sensor: SensorFaultChannel {
                blackout: Some(FaultWindows::every(20, 5)),
                ..SensorFaultChannel::default()
            },
            ..FaultPlanConfig::default()
        });
        let active = (0..2_000)
            .filter(|&d| plan.frame(d).sensor_blackout)
            .count();
        assert_eq!(active, 2_000 / 20 * 5);
        assert!(!plan.config().is_healthy());
    }

    #[test]
    fn different_seeds_shift_the_phase_but_not_the_duty_cycle() {
        let windows = FaultWindows::every(40, 10);
        let mk = |seed| {
            FaultPlan::new(FaultPlanConfig {
                seed,
                sensor: SensorFaultChannel {
                    blackout: Some(windows),
                    ..SensorFaultChannel::default()
                },
                ..FaultPlanConfig::default()
            })
        };
        let counts: Vec<usize> = (1..=4u64)
            .map(|s| {
                (0..4_000)
                    .filter(|&d| mk(s).frame(d).sensor_blackout)
                    .count()
            })
            .collect();
        assert!(counts.iter().all(|&c| c == 1_000), "{counts:?}");
        // At least one pair of seeds disagrees on some decision.
        let a = mk(1);
        let b = mk(2);
        assert!((0..200).any(|d| a.frame(d).sensor_blackout != b.frame(d).sensor_blackout));
    }

    #[test]
    fn blackout_supersedes_burst_and_burst_carries_a_per_decision_seed() {
        let plan = FaultPlan::new(FaultPlanConfig {
            sensor: SensorFaultChannel {
                blackout: Some(FaultWindows::every(2, 1)),
                burst: Some(FaultWindows::every(1, 1)),
                burst_dropout: 0.5,
                burst_noise_std: 0.0,
            },
            ..FaultPlanConfig::default()
        });
        let mut burst_seeds = Vec::new();
        for d in 0..50 {
            let frame = plan.frame(d);
            if frame.sensor_blackout {
                assert!(frame.sensor_burst.is_none());
            } else {
                let burst = frame
                    .sensor_burst
                    .expect("burst window covers every decision");
                burst_seeds.push(burst.seed);
            }
        }
        burst_seeds.dedup();
        assert!(
            burst_seeds.len() > 20,
            "burst seeds should vary per decision"
        );
    }

    #[test]
    fn link_faults_are_pure_in_topic_and_sequence() {
        let plan = FaultPlan::new(armed_plan());
        let mut model_a = plan.link_faults().expect("bus channel armed");
        let mut model_b = plan.link_faults().unwrap();
        let points = TopicName::new("/sensors/points").unwrap();
        let other = TopicName::new("/planning/trajectory").unwrap();
        // Interleave differently; dispositions must still agree.
        let mut a = Vec::new();
        for seq in 0..400u64 {
            a.push(model_a.disposition(&points, seq));
            assert!(model_a.disposition(&other, seq).is_healthy());
        }
        let mut b = Vec::new();
        for seq in (0..400u64).rev() {
            b.push(model_b.disposition(&points, seq));
        }
        b.reverse();
        assert_eq!(a, b);
        let dropped = a.iter().filter(|d| d.drop).count();
        assert!((60..180).contains(&dropped), "dropped {dropped} of 400");
    }

    #[test]
    fn faulty_bus_derefs_to_the_wrapped_bus() {
        let plan = FaultPlan::new(armed_plan());
        let bus = FaultyBus::new(
            MessageBus::with_free_transport(),
            plan.link_faults().unwrap(),
        );
        let _node = roborun_middleware::Node::new(&bus, "talker").unwrap();
        let clone = bus.bus();
        assert_eq!(clone.now(), bus.now());
        bus.shutdown();
        assert!(clone.is_shutdown());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let mut bad = armed_plan();
        bad.sensor.blackout = Some(FaultWindows::every(10, 11));
        assert!(bad.validate().is_err());
        let mut bad = armed_plan();
        bad.planner.spike_latency = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = armed_plan();
        bad.bus.links[0].1.loss_probability = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = armed_plan();
        bad.bus.links[0].0 = "not a topic".to_string();
        assert!(bad.validate().is_err());
        assert!(armed_plan().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn plan_panics_on_invalid_config() {
        let mut bad = armed_plan();
        bad.map.stale = Some(FaultWindows::every(0, 0));
        let _ = FaultPlan::new(bad);
    }
}
