//! Adversarial moving-obstacle conformance: the `roborun-conformance`
//! motion scripts drive actors through the nastiest voxel-lattice
//! interactions (face grazes, vacate-and-re-enter, corner pivots), and
//! every view of the dynamic world must stay exact and deterministic.

use roborun_conformance::adversarial_motion_scripts;
use roborun_dynamics::{Actor, DynamicWorld, MotionModel};
use roborun_env::ObstacleField;
use roborun_geom::Vec3;

fn script_actor(script: &roborun_conformance::MotionScript, id: u32) -> Actor {
    Actor::new(
        id,
        script.waypoints[0],
        script.half_extents,
        MotionModel::WaypointPatrol {
            waypoints: script.waypoints.clone(),
            speed: script.speed,
        },
    )
}

#[test]
fn script_poses_are_bit_identical_across_builds_and_query_orders() {
    for cell in [0.3, 0.5, 1.0] {
        for script in adversarial_motion_scripts(7, cell) {
            let a = script_actor(&script, 0);
            let b = script_actor(&script, 0);
            let times: Vec<f64> = (0..300).map(|i| i as f64 * 0.173).collect();
            let forward: Vec<Vec3> = times.iter().map(|&t| a.pose_at(t)).collect();
            for (i, &t) in times.iter().enumerate().rev() {
                let q = b.pose_at(t);
                assert_eq!(
                    forward[i].x.to_bits(),
                    q.x.to_bits(),
                    "{} at t={t}",
                    script.name
                );
                assert_eq!(forward[i].y.to_bits(), q.y.to_bits());
                assert_eq!(forward[i].z.to_bits(), q.z.to_bits());
            }
        }
    }
}

#[test]
fn vacated_cell_frees_in_snapshots_and_reoccupies_on_reentry() {
    let cell = 0.5;
    let scripts = adversarial_motion_scripts(11, cell);
    let script = scripts
        .iter()
        .find(|s| s.name == "vacate-reenter")
        .expect("script family includes vacate-reenter");
    let world = DynamicWorld::new(ObstacleField::empty(), vec![script_actor(script, 0)]);
    let start = script.waypoints[0];
    // t = 0: the spawn cell is occupied in the snapshot.
    assert!(world.snapshot_field(0.0).is_occupied(start));
    // Mid-script the actor has moved 3 cells away: the spawn cell must be
    // genuinely vacated in the snapshot of that instant (the leg takes
    // 3·cell / speed seconds; probe at its end).
    let leg = 3.0 * cell / script.speed;
    let away = world.snapshot_field(leg);
    assert!(
        !away.is_occupied(start),
        "vacated cell still occupied in the snapshot"
    );
    assert!(world.actor_hit(world.actors()[0].pose_at(leg), leg, 0.0));
    // After the full out-and-back the actor is exactly at its spawn pose
    // again: the cell re-occupies.
    let back = world.snapshot_field(2.0 * leg);
    assert!(
        back.is_occupied(start),
        "re-entered cell not occupied again"
    );
}

#[test]
fn grazing_box_face_answers_exactly_on_the_lattice_plane() {
    let cell = 0.5;
    let scripts = adversarial_motion_scripts(5, cell);
    let script = scripts
        .iter()
        .find(|s| s.name == "face-graze")
        .expect("script family includes face-graze");
    let actor = script_actor(script, 0);
    let world = DynamicWorld::new(ObstacleField::empty(), vec![actor]);
    // The top face slides along y = 0 exactly. Points *on* the face are
    // inside (Aabb::contains is inclusive); points one ulp-ish above are
    // not. This must hold at every sampled instant of the graze.
    let z = script.waypoints[0].z;
    for i in 0..20 {
        let t = i as f64 * 0.17;
        let x = world.actors()[0].pose_at(t).x;
        let snap = world.snapshot_field(t);
        assert!(
            snap.is_occupied(Vec3::new(x, 0.0, z)),
            "face point not occupied at t={t}"
        );
        assert!(
            !snap.is_occupied(Vec3::new(x, 1e-9, z)),
            "point above the face occupied at t={t}"
        );
        assert!(world.actor_hit(Vec3::new(x, 0.0, z), t, 0.0));
    }
}

#[test]
fn predictions_contain_every_scripted_pose() {
    for cell in [0.3, 1.0] {
        for script in adversarial_motion_scripts(13, cell) {
            let actor = script_actor(&script, 0);
            for &t0 in &[0.0, 0.7, 5.3] {
                for &h in &[0.5, 3.0] {
                    let hull = actor.predicted_bounds(t0, h);
                    for i in 0..=100 {
                        let t = t0 + h * i as f64 / 100.0;
                        assert!(
                            hull.contains_aabb(&actor.bounds_at(t)),
                            "{} escaped its prediction at t={t} (cell {cell})",
                            script.name
                        );
                    }
                }
            }
        }
    }
}
