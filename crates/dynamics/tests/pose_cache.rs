//! Walk-anchor cache equivalence: [`Actor::pose_at_cached`] and every
//! `*_cached` world view must be **bit-identical** to the plain replay,
//! whatever the query order — the cache is a pure resume of the same
//! deterministic fold, never an approximation.

use proptest::prelude::*;
use roborun_dynamics::{Actor, DynamicWorld, MotionModel, PoseCache, WalkAnchor};
use roborun_env::ObstacleField;
use roborun_geom::{Aabb, Vec3};

fn corridor() -> Aabb {
    Aabb::new(Vec3::new(0.0, -10.0, 5.0), Vec3::new(40.0, 10.0, 5.0))
}

fn walker(seed: u64, speed: f64, dwell: f64) -> Actor {
    Actor::new(
        0,
        Vec3::new(10.0, 0.0, 5.0),
        Vec3::splat(0.8),
        MotionModel::RandomWalk {
            seed,
            speed,
            dwell,
            bounds: corridor(),
        },
    )
}

fn assert_bits_eq(a: Vec3, b: Vec3, context: &str) {
    assert_eq!(a.x.to_bits(), b.x.to_bits(), "{context}: x {a} vs {b}");
    assert_eq!(a.y.to_bits(), b.y.to_bits(), "{context}: y {a} vs {b}");
    assert_eq!(a.z.to_bits(), b.z.to_bits(), "{context}: z {a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monotone *and* scrambled time sequences: the anchored replay must
    /// agree with the from-zero replay bit for bit at every query.
    #[test]
    fn cached_walk_poses_match_the_replay(
        seed in 0u64..1_000,
        speed in 0.1f64..3.0,
        dwell in 0.2f64..4.0,
        times in prop::collection::vec(0.0f64..400.0, 1..24),
    ) {
        let actor = walker(seed, speed, dwell);
        let mut anchor = WalkAnchor::new();
        for (i, &t) in times.iter().enumerate() {
            let cached = actor.pose_at_cached(t, &mut anchor);
            let plain = actor.pose_at(t);
            assert_bits_eq(cached, plain, &format!("query {i} at t={t}"));
        }
    }

    /// The cached world views agree with their plain counterparts on a
    /// mission-shaped (mostly forward) query pattern.
    #[test]
    fn cached_world_views_match(seed in 0u64..500, step in 0.05f64..2.0) {
        let world = DynamicWorld::new(
            ObstacleField::empty(),
            vec![
                walker(seed, 1.3, 1.5),
                Actor::new(
                    1,
                    Vec3::new(20.0, 0.0, 5.0),
                    Vec3::splat(1.0),
                    MotionModel::Crosser {
                        velocity: Vec3::new(0.0, 2.0, 0.0),
                        bounds: corridor(),
                    },
                ),
            ],
        );
        let mut cache = world.pose_cache();
        let probe = Vec3::new(12.0, 1.0, 5.0);
        for i in 0..40 {
            let t = i as f64 * step;
            let plain = world.snapshot_field(t);
            let cached = world.snapshot_field_cached(t, &mut cache);
            prop_assert_eq!(plain.len(), cached.len());
            for (a, b) in plain.obstacles().iter().zip(cached.obstacles()) {
                prop_assert_eq!(a.id, b.id);
                assert_bits_eq(a.bounds.min, b.bounds.min, "snapshot min");
                assert_bits_eq(a.bounds.max, b.bounds.max, "snapshot max");
            }
            prop_assert_eq!(
                world.actor_hit(probe, t, 0.5),
                world.actor_hit_cached(probe, t, 0.5, &mut cache)
            );
            let plain_boxes = world.predicted_boxes(t, 4.0);
            let cached_boxes = world.predicted_boxes_cached(t, 4.0, &mut cache);
            prop_assert_eq!(plain_boxes.len(), cached_boxes.len());
            for (a, b) in plain_boxes.iter().zip(&cached_boxes) {
                assert_bits_eq(a.min, b.min, "predicted min");
                assert_bits_eq(a.max, b.max, "predicted max");
            }
            prop_assert_eq!(
                world.max_closing_speed(t, probe, 30.0).to_bits(),
                world.max_closing_speed_cached(t, probe, 30.0, &mut cache).to_bits()
            );
        }
    }
}

/// Backward jumps (a cold restart mid-stream) stay exact: the anchor
/// resets to a from-zero replay when time runs backwards.
#[test]
fn backward_queries_reset_the_anchor_exactly() {
    let actor = walker(42, 1.1, 0.7);
    let mut anchor = WalkAnchor::new();
    for &t in &[300.0, 12.5, 299.9, 0.0, 300.0, 150.0] {
        assert_bits_eq(
            actor.pose_at_cached(t, &mut anchor),
            actor.pose_at(t),
            &format!("t={t}"),
        );
    }
}

/// A warm anchor from one walker is rejected by a different walker (the
/// fingerprint guard): reusing a cache across worlds degrades to a cold
/// replay instead of silently folding from a foreign position.
#[test]
fn foreign_anchors_reset_instead_of_corrupting() {
    let a = walker(1, 1.1, 0.7);
    let b = walker(2, 1.1, 0.7); // same speed/dwell, different seed
    let c = walker(1, 0.9, 0.7); // same seed, different speed
    let mut anchor = WalkAnchor::new();
    assert_bits_eq(
        a.pose_at_cached(250.0, &mut anchor),
        a.pose_at(250.0),
        "warm a",
    );
    assert_bits_eq(
        b.pose_at_cached(300.0, &mut anchor),
        b.pose_at(300.0),
        "cross to b",
    );
    assert_bits_eq(
        c.pose_at_cached(320.0, &mut anchor),
        c.pose_at(320.0),
        "cross to c",
    );
    assert_bits_eq(
        a.pose_at_cached(330.0, &mut anchor),
        a.pose_at(330.0),
        "back to a",
    );
}

/// A default (unsized) cache grows to fit and stays exact.
#[test]
fn default_cache_grows_to_fit() {
    let world = DynamicWorld::new(
        ObstacleField::empty(),
        (0..5).map(|i| walker(i as u64, 0.9, 1.0)).collect(),
    );
    let mut cache = PoseCache::default();
    for i in 0..10 {
        let t = i as f64 * 3.7;
        let plain = world.predicted_boxes(t, 2.0);
        let cached = world.predicted_boxes_cached(t, 2.0, &mut cache);
        for (a, b) in plain.iter().zip(&cached) {
            assert_bits_eq(a.min, b.min, "min");
            assert_bits_eq(a.max, b.max, "max");
        }
    }
}
