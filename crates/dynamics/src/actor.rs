//! Moving-obstacle actors: seeded, deterministic motion models.
//!
//! An [`Actor`] is an axis-aligned box (the same shape family as the
//! static obstacles) whose centre follows a [`MotionModel`]. Every model
//! is a **pure function of time**: [`Actor::pose_at`] depends only on
//! the actor's own fields and `t`, never on call order, caching or
//! threads — which is what makes whole dynamic missions bit-reproducible
//! across runs and across both mission drivers.

use roborun_geom::{Aabb, SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// Constant mixed into per-segment random-walk seeds so walk streams do
/// not collide with other consumers of the same seed.
const WALK_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How an actor's centre moves over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MotionModel {
    /// Ping-pong patrol along a polyline at constant speed: the actor
    /// walks `waypoints` forward, then backward, forever. With fewer
    /// than two waypoints (or a degenerate polyline) the actor holds its
    /// first waypoint.
    WaypointPatrol {
        /// Patrol polyline (absolute positions of the actor centre).
        waypoints: Vec<Vec3>,
        /// Patrol speed (m/s, non-negative).
        speed: f64,
    },
    /// Constant-velocity motion reflected off the faces of `bounds`
    /// (a triangle-wave fold per axis), e.g. a vehicle shuttling across
    /// a corridor.
    Crosser {
        /// Velocity before any reflection (m/s per axis).
        velocity: Vec3,
        /// Region the centre is folded into. A degenerate axis
        /// (`min == max`) pins the centre to that coordinate.
        bounds: Aabb,
    },
    /// Seeded random walk: every `dwell` seconds the actor redraws a
    /// horizontal heading from its own SplitMix64 stream and moves at
    /// `speed`, reflecting off `bounds` like a [`MotionModel::Crosser`].
    /// Segment directions are derived by hashing `(seed, segment index)`
    /// so the heading of segment *k* costs O(1); the position at time
    /// `t` folds the first `⌊t / dwell⌋` segments and is therefore an
    /// exact (if O(t)) pure function of time.
    RandomWalk {
        /// Seed of the actor's private direction stream.
        seed: u64,
        /// Walk speed (m/s, non-negative).
        speed: f64,
        /// Seconds between heading redraws (positive).
        dwell: f64,
        /// Region the centre is folded into.
        bounds: Aabb,
    },
}

/// Folds an unconstrained coordinate into `[lo, hi]` by reflection
/// (triangle wave). Degenerate intervals pin to `lo`.
fn reflect_axis(x: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 {
        return lo;
    }
    let period = 2.0 * span;
    let u = (x - lo).rem_euclid(period);
    if u <= span {
        lo + u
    } else {
        lo + period - u
    }
}

/// Per-axis reflective fold of a point into `bounds`.
fn reflect_into(p: Vec3, bounds: &Aabb) -> Vec3 {
    Vec3::new(
        reflect_axis(p.x, bounds.min.x, bounds.max.x),
        reflect_axis(p.y, bounds.min.y, bounds.max.y),
        reflect_axis(p.z, bounds.min.z, bounds.max.z),
    )
}

/// Horizontal unit heading of random-walk segment `k` for `seed`.
fn walk_heading(seed: u64, k: u64) -> Vec3 {
    let mut rng = SplitMix64::new(seed ^ k.wrapping_mul(WALK_SEED_SALT));
    let yaw = rng.uniform(0.0, std::f64::consts::TAU);
    Vec3::new(yaw.cos(), yaw.sin(), 0.0)
}

/// Replay anchor for one random walker: the walk position after a number
/// of whole segments, so a later [`Actor::pose_at_cached`] query resumes
/// the fold from here instead of replaying from `t = 0`.
///
/// The walk position after `k` whole segments is a deterministic fold of
/// the per-segment headings; caching the fold state after `k` segments
/// and continuing from it performs *exactly* the same float operations in
/// the same order as a replay from zero, so cached queries are
/// bit-identical to [`Actor::pose_at`] (locked by the equivalence
/// proptest in `tests/pose_cache.rs`). Queries that move forward in time
/// — every query a mission makes — cost O(Δsegments) ≈ O(1) per decision
/// instead of O(t / dwell).
///
/// An anchor warmed by one walker is rejected by another: the anchor
/// fingerprints the walk parameters (seed, speed, dwell) and resumes
/// only on an exact match, so reusing a [`crate::PoseCache`] across
/// worlds degrades to a cold replay instead of silently folding from a
/// foreign position. (Two walkers sharing all three parameters but
/// differing in spawn or bounds would still alias — keep one cache per
/// world, as [`crate::DynamicWorld::pose_cache`] hands out.)
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WalkAnchor {
    /// Number of whole segments folded into `position`.
    segments: u64,
    /// Walk position after `segments` whole segments, or `None` while
    /// the anchor is cold.
    position: Option<Vec3>,
    /// Fingerprint of the walk that warmed the anchor: the seed plus the
    /// bit patterns of speed and dwell.
    walk: (u64, u64, u64),
}

impl WalkAnchor {
    /// A cold anchor: the first query replays from `t = 0` and warms it.
    pub fn new() -> Self {
        WalkAnchor::default()
    }
}

/// One moving obstacle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Actor {
    /// Stable identifier, disjoint from static obstacle ids at the
    /// [`crate::DynamicWorld`] level.
    pub id: u32,
    /// Centre position at `t = 0` (also the random-walk anchor).
    pub spawn: Vec3,
    /// Half extents of the actor's box around its centre.
    pub half_extents: Vec3,
    /// Motion model driving the centre.
    pub motion: MotionModel,
}

impl Actor {
    /// Creates an actor.
    ///
    /// # Panics
    ///
    /// Panics on negative half extents, negative speeds or a
    /// non-positive random-walk dwell.
    pub fn new(id: u32, spawn: Vec3, half_extents: Vec3, motion: MotionModel) -> Self {
        assert!(
            half_extents.x >= 0.0 && half_extents.y >= 0.0 && half_extents.z >= 0.0,
            "half extents must be non-negative, got {half_extents:?}"
        );
        match &motion {
            MotionModel::WaypointPatrol { speed, .. } => {
                assert!(*speed >= 0.0, "patrol speed must be non-negative");
            }
            MotionModel::Crosser { .. } => {}
            MotionModel::RandomWalk { speed, dwell, .. } => {
                assert!(*speed >= 0.0, "walk speed must be non-negative");
                assert!(*dwell > 0.0, "walk dwell must be positive");
            }
        }
        Actor {
            id,
            spawn,
            half_extents,
            motion,
        }
    }

    /// Centre position at time `t` (seconds, non-negative) — a pure
    /// function of `(self, t)`.
    pub fn pose_at(&self, t: f64) -> Vec3 {
        let t = t.max(0.0);
        match &self.motion {
            MotionModel::WaypointPatrol { waypoints, speed } => {
                patrol_pose(waypoints, *speed, t).unwrap_or(self.spawn)
            }
            MotionModel::Crosser { velocity, bounds } => {
                reflect_into(self.spawn + *velocity * t, bounds)
            }
            MotionModel::RandomWalk {
                seed,
                speed,
                dwell,
                bounds,
            } => {
                let mut p = reflect_into(self.spawn, bounds);
                if *speed == 0.0 {
                    return p;
                }
                let whole = (t / dwell).floor();
                let k = whole as u64;
                for i in 0..k {
                    p = reflect_into(p + walk_heading(*seed, i) * (*speed * *dwell), bounds);
                }
                let rest = t - whole * dwell;
                if rest > 0.0 {
                    p = reflect_into(p + walk_heading(*seed, k) * (*speed * rest), bounds);
                }
                p
            }
        }
    }

    /// [`Actor::pose_at`] resumed from (and advancing) a [`WalkAnchor`]:
    /// bit-identical to the plain replay, but a query at a time no
    /// earlier than the anchor folds only the segments *since* the
    /// anchor — O(1) per decision for the monotone queries a mission
    /// makes, against the replay's O(t / dwell). Non-walk motion models
    /// are O(1) already and ignore the anchor. A query before the anchor
    /// replays from zero (and re-anchors there), so arbitrary query
    /// orders stay exact.
    pub fn pose_at_cached(&self, t: f64, anchor: &mut WalkAnchor) -> Vec3 {
        let MotionModel::RandomWalk {
            seed,
            speed,
            dwell,
            bounds,
        } = &self.motion
        else {
            return self.pose_at(t);
        };
        let t = t.max(0.0);
        let mut p = reflect_into(self.spawn, bounds);
        if *speed == 0.0 {
            return p;
        }
        let walk = (*seed, speed.to_bits(), dwell.to_bits());
        let whole = (t / dwell).floor();
        let k = whole as u64;
        let mut start = 0u64;
        if let Some(anchored) = anchor.position {
            if anchor.walk == walk && anchor.segments <= k {
                start = anchor.segments;
                p = anchored;
            }
        }
        for i in start..k {
            p = reflect_into(p + walk_heading(*seed, i) * (*speed * *dwell), bounds);
        }
        *anchor = WalkAnchor {
            segments: k,
            position: Some(p),
            walk,
        };
        let rest = t - whole * dwell;
        if rest > 0.0 {
            p = reflect_into(p + walk_heading(*seed, k) * (*speed * rest), bounds);
        }
        p
    }

    /// [`Actor::bounds_at`] through a [`WalkAnchor`] (see
    /// [`Actor::pose_at_cached`]).
    pub fn bounds_at_cached(&self, t: f64, anchor: &mut WalkAnchor) -> Aabb {
        Aabb::from_center_half_extents(self.pose_at_cached(t, anchor), self.half_extents)
    }

    /// Instantaneous centre velocity at time `t`. Exact for patrols and
    /// crossers (up to reflection instants, where the incoming segment's
    /// velocity is reported); for random walkers the current segment's
    /// heading times the walk speed.
    pub fn velocity_at(&self, t: f64) -> Vec3 {
        let t = t.max(0.0);
        match &self.motion {
            MotionModel::WaypointPatrol { waypoints, speed } => {
                patrol_velocity(waypoints, *speed, t).unwrap_or(Vec3::ZERO)
            }
            MotionModel::Crosser { velocity, bounds } => {
                // The fold flips the velocity sign on odd half-periods.
                let unfolded = self.spawn + *velocity * t;
                Vec3::new(
                    reflect_sign(unfolded.x, bounds.min.x, bounds.max.x) * velocity.x,
                    reflect_sign(unfolded.y, bounds.min.y, bounds.max.y) * velocity.y,
                    reflect_sign(unfolded.z, bounds.min.z, bounds.max.z) * velocity.z,
                )
            }
            MotionModel::RandomWalk {
                seed, speed, dwell, ..
            } => walk_heading(*seed, (t / dwell).floor() as u64) * *speed,
        }
    }

    /// The actor's occupied box at time `t`.
    pub fn bounds_at(&self, t: f64) -> Aabb {
        Aabb::from_center_half_extents(self.pose_at(t), self.half_extents)
    }

    /// Upper bound on the centre's speed (m/s).
    pub fn max_speed(&self) -> f64 {
        match &self.motion {
            MotionModel::WaypointPatrol { speed, .. } => *speed,
            MotionModel::Crosser { velocity, .. } => velocity.norm(),
            MotionModel::RandomWalk { speed, .. } => *speed,
        }
    }

    /// A box guaranteed to contain the actor over `[t, t + horizon]`.
    ///
    /// Patrols and crossers have determined futures, so the hull is the
    /// union of true boxes sampled along the window, inflated by the
    /// distance the actor can cover between two samples (which makes the
    /// sampled hull a strict over-approximation of the continuous one).
    /// Random walkers redraw their heading unpredictably: their hull is
    /// the current box inflated by `speed · horizon` horizontally,
    /// clipped to the walk bounds (inflated by the half extents, since
    /// the bounds constrain the centre).
    pub fn predicted_bounds(&self, t: f64, horizon: f64) -> Aabb {
        let horizon = horizon.max(0.0);
        match &self.motion {
            MotionModel::WaypointPatrol { .. } | MotionModel::Crosser { .. } => {
                let speed = self.max_speed();
                if speed == 0.0 || horizon == 0.0 {
                    return self.bounds_at(t);
                }
                // Sample so each stride covers at most one half extent
                // (min 8 samples), then pad by the per-stride travel.
                let min_half = self
                    .half_extents
                    .min_component()
                    .max(self.half_extents.max_component() * 0.25)
                    .max(0.05);
                let strides = ((horizon * speed / min_half).ceil() as usize).clamp(8, 64);
                let dt = horizon / strides as f64;
                let pad = speed * dt;
                let mut hull = self.bounds_at(t);
                for i in 1..=strides {
                    hull = Aabb::union(&hull, &self.bounds_at(t + i as f64 * dt));
                }
                hull.inflate(pad)
            }
            MotionModel::RandomWalk { speed, bounds, .. } => walk_reach_hull(
                self.bounds_at(t),
                *speed,
                horizon,
                bounds,
                self.half_extents,
            ),
        }
    }

    /// [`Actor::predicted_bounds`] through a [`WalkAnchor`] (see
    /// [`Actor::pose_at_cached`]): only the random walker's current box
    /// depends on the replay, so only that branch consults the anchor.
    pub fn predicted_bounds_cached(&self, t: f64, horizon: f64, anchor: &mut WalkAnchor) -> Aabb {
        match &self.motion {
            MotionModel::RandomWalk { speed, bounds, .. } => walk_reach_hull(
                self.bounds_at_cached(t, anchor),
                *speed,
                horizon.max(0.0),
                bounds,
                self.half_extents,
            ),
            _ => self.predicted_bounds(t, horizon),
        }
    }
}

/// The random walker's predicted hull: its current box inflated by the
/// horizontal reach of the horizon, clipped to the walk cage (the walk
/// bounds constrain the centre; the box extends half extents beyond).
fn walk_reach_hull(
    here: Aabb,
    speed: f64,
    horizon: f64,
    bounds: &Aabb,
    half_extents: Vec3,
) -> Aabb {
    let reach = speed * horizon;
    let disc = Aabb::new(
        here.min - Vec3::new(reach, reach, 0.0),
        here.max + Vec3::new(reach, reach, 0.0),
    );
    let cage = Aabb::new(bounds.min - half_extents, bounds.max + half_extents);
    disc.intersection(&cage).unwrap_or(disc)
}

/// Sign of the fold derivative at unfolded coordinate `x` (+1 on even
/// half-periods, −1 on odd ones; +0 for degenerate spans).
fn reflect_sign(x: f64, lo: f64, hi: f64) -> f64 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0.0;
    }
    let u = (x - lo).rem_euclid(2.0 * span);
    if u <= span {
        1.0
    } else {
        -1.0
    }
}

/// Ping-pong position along a waypoint polyline, or `None` when the
/// polyline is degenerate.
fn patrol_pose(waypoints: &[Vec3], speed: f64, t: f64) -> Option<Vec3> {
    let total = patrol_length(waypoints)?;
    if speed == 0.0 || total == 0.0 {
        return Some(waypoints[0]);
    }
    let s = reflect_axis(speed * t, 0.0, total);
    Some(patrol_point_at(waypoints, s))
}

/// Ping-pong velocity along a waypoint polyline.
fn patrol_velocity(waypoints: &[Vec3], speed: f64, t: f64) -> Option<Vec3> {
    let total = patrol_length(waypoints)?;
    if speed == 0.0 || total == 0.0 {
        return Some(Vec3::ZERO);
    }
    let sign = reflect_sign(speed * t, 0.0, total);
    let s = reflect_axis(speed * t, 0.0, total);
    let dir = patrol_direction_at(waypoints, s)?;
    Some(dir * (speed * sign))
}

/// Total polyline length, or `None` for fewer than two waypoints.
fn patrol_length(waypoints: &[Vec3]) -> Option<f64> {
    if waypoints.len() < 2 {
        return None;
    }
    Some(waypoints.windows(2).map(|w| w[0].distance(w[1])).sum())
}

/// Point at arclength `s` along the polyline (clamped to its ends).
fn patrol_point_at(waypoints: &[Vec3], s: f64) -> Vec3 {
    let mut remaining = s.max(0.0);
    for w in waypoints.windows(2) {
        let len = w[0].distance(w[1]);
        if remaining <= len {
            if len == 0.0 {
                return w[0];
            }
            return w[0].lerp(w[1], remaining / len);
        }
        remaining -= len;
    }
    *waypoints.last().expect("patrol polyline checked non-empty")
}

/// Unit direction of the segment containing arclength `s`.
fn patrol_direction_at(waypoints: &[Vec3], s: f64) -> Option<Vec3> {
    let mut remaining = s.max(0.0);
    for w in waypoints.windows(2) {
        let len = w[0].distance(w[1]);
        if (remaining <= len && len > 0.0) || w == &waypoints[waypoints.len() - 2..] {
            return (w[1] - w[0]).try_normalize();
        }
        remaining -= len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Aabb {
        Aabb::new(Vec3::new(0.0, -10.0, 5.0), Vec3::new(40.0, 10.0, 5.0))
    }

    #[test]
    fn patrol_ping_pongs_between_waypoints() {
        let a = Actor::new(
            0,
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::splat(1.0),
            MotionModel::WaypointPatrol {
                waypoints: vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(10.0, 0.0, 5.0)],
                speed: 1.0,
            },
        );
        assert_eq!(a.pose_at(0.0), Vec3::new(0.0, 0.0, 5.0));
        assert!((a.pose_at(5.0) - Vec3::new(5.0, 0.0, 5.0)).norm() < 1e-12);
        assert!((a.pose_at(10.0) - Vec3::new(10.0, 0.0, 5.0)).norm() < 1e-12);
        // Past the far end the actor walks back.
        assert!((a.pose_at(14.0) - Vec3::new(6.0, 0.0, 5.0)).norm() < 1e-12);
        assert!((a.pose_at(20.0) - Vec3::new(0.0, 0.0, 5.0)).norm() < 1e-9);
        // Velocity flips sign on the return leg.
        assert!(a.velocity_at(2.0).x > 0.0);
        assert!(a.velocity_at(14.0).x < 0.0);
    }

    #[test]
    fn degenerate_patrol_holds_station() {
        let a = Actor::new(
            0,
            Vec3::new(3.0, 1.0, 5.0),
            Vec3::splat(0.5),
            MotionModel::WaypointPatrol {
                waypoints: vec![Vec3::new(3.0, 1.0, 5.0)],
                speed: 2.0,
            },
        );
        assert_eq!(a.pose_at(17.0), Vec3::new(3.0, 1.0, 5.0));
        assert_eq!(a.velocity_at(17.0), Vec3::ZERO);
        assert_eq!(a.max_speed(), 2.0);
    }

    #[test]
    fn crosser_reflects_off_bounds() {
        let a = Actor::new(
            1,
            Vec3::new(20.0, 0.0, 5.0),
            Vec3::splat(1.0),
            MotionModel::Crosser {
                velocity: Vec3::new(0.0, 2.0, 0.0),
                bounds: corridor(),
            },
        );
        // Reaches the +y wall at t = 5, then comes back.
        assert!((a.pose_at(5.0).y - 10.0).abs() < 1e-12);
        assert!((a.pose_at(7.0).y - 6.0).abs() < 1e-12);
        assert!((a.pose_at(10.0).y - 0.0).abs() < 1e-12);
        assert!((a.pose_at(15.0).y - (-10.0)).abs() < 1e-12);
        // z is pinned by the degenerate bound.
        assert_eq!(a.pose_at(123.4).z, 5.0);
        // Velocity flips after the bounce.
        assert!(a.velocity_at(3.0).y > 0.0);
        assert!(a.velocity_at(7.0).y < 0.0);
    }

    #[test]
    fn random_walk_is_pure_and_stays_in_bounds() {
        let a = Actor::new(
            2,
            Vec3::new(10.0, 0.0, 5.0),
            Vec3::splat(0.8),
            MotionModel::RandomWalk {
                seed: 99,
                speed: 1.5,
                dwell: 2.0,
                bounds: corridor(),
            },
        );
        let b = a.clone();
        let mut moved = false;
        // Query in a scrambled order: purity means order cannot matter.
        for &t in &[33.0, 1.0, 100.0, 1.0, 33.0, 7.25, 100.0] {
            let p = a.pose_at(t);
            let q = b.pose_at(t);
            assert_eq!(p.x.to_bits(), q.x.to_bits());
            assert_eq!(p.y.to_bits(), q.y.to_bits());
            assert_eq!(p.z.to_bits(), q.z.to_bits());
            assert!(corridor().contains(p), "walker escaped at t={t}: {p}");
            moved |= p.distance(a.spawn) > 0.5;
        }
        assert!(moved, "walker never moved");
        // Velocity magnitude is the walk speed, horizontally.
        let v = a.velocity_at(5.0);
        assert!((v.norm() - 1.5).abs() < 1e-9);
        assert_eq!(v.z, 0.0);
    }

    #[test]
    fn different_seeds_walk_differently() {
        let mk = |seed| {
            Actor::new(
                0,
                Vec3::new(10.0, 0.0, 5.0),
                Vec3::splat(0.8),
                MotionModel::RandomWalk {
                    seed,
                    speed: 1.5,
                    dwell: 2.0,
                    bounds: corridor(),
                },
            )
        };
        assert!(mk(1).pose_at(20.0).distance(mk(2).pose_at(20.0)) > 1e-6);
    }

    #[test]
    fn predicted_bounds_contain_the_true_path() {
        let actors = [
            Actor::new(
                0,
                Vec3::new(5.0, 0.0, 5.0),
                Vec3::new(1.0, 1.0, 5.0),
                MotionModel::WaypointPatrol {
                    waypoints: vec![Vec3::new(5.0, -8.0, 5.0), Vec3::new(5.0, 8.0, 5.0)],
                    speed: 2.0,
                },
            ),
            Actor::new(
                1,
                Vec3::new(20.0, 0.0, 5.0),
                Vec3::splat(1.0),
                MotionModel::Crosser {
                    velocity: Vec3::new(1.0, 3.0, 0.0),
                    bounds: corridor(),
                },
            ),
            Actor::new(
                2,
                Vec3::new(10.0, 0.0, 5.0),
                Vec3::splat(0.8),
                MotionModel::RandomWalk {
                    seed: 7,
                    speed: 1.5,
                    dwell: 1.0,
                    bounds: corridor(),
                },
            ),
        ];
        for actor in &actors {
            for &t0 in &[0.0, 3.7, 41.0] {
                for &h in &[0.5, 2.0, 6.0] {
                    let hull = actor.predicted_bounds(t0, h);
                    // Dense sampling of the true path must stay inside.
                    for i in 0..=200 {
                        let t = t0 + h * i as f64 / 200.0;
                        let b = actor.bounds_at(t);
                        assert!(
                            hull.contains_aabb(&b),
                            "actor {} escaped hull at t={t} (t0={t0}, h={h}): {b} vs {hull}",
                            actor.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_horizon_prediction_is_the_snapshot_box() {
        let a = Actor::new(
            1,
            Vec3::new(20.0, 0.0, 5.0),
            Vec3::splat(1.0),
            MotionModel::Crosser {
                velocity: Vec3::new(0.0, 2.0, 0.0),
                bounds: corridor(),
            },
        );
        assert_eq!(a.predicted_bounds(3.0, 0.0), a.bounds_at(3.0));
    }

    #[test]
    #[should_panic(expected = "dwell")]
    fn zero_dwell_panics() {
        let _ = Actor::new(
            0,
            Vec3::ZERO,
            Vec3::splat(1.0),
            MotionModel::RandomWalk {
                seed: 1,
                speed: 1.0,
                dwell: 0.0,
                bounds: corridor(),
            },
        );
    }
}
