//! Moving obstacles: deterministic actors, dynamic worlds and predicted
//! occupancy.
//!
//! RoboRun's thesis is that exploiting *spatial* heterogeneity at runtime
//! converts latency into mission speed; this crate opens the *temporal*
//! axis — worlds whose difficulty changes underneath the robot. A
//! [`DynamicWorld`] composes the static ground-truth
//! [`ObstacleField`](roborun_env::ObstacleField) with a set of seeded
//! moving [`Actor`]s (waypoint patrols, constant-velocity crossers,
//! random walkers with reflective bounds) stepped on the simulation
//! clock.
//!
//! # The snapshot / prediction / decay contract
//!
//! Consumers see the world through three views with sharply different
//! guarantees:
//!
//! 1. **Snapshot (exact).** [`Actor::pose_at`] is a *pure function of
//!    time*: the same actor queried at the same `t` returns bit-identical
//!    coordinates, on any thread, in any driver, in any order. A
//!    [`DynamicWorld::snapshot_field`] therefore reproduces the exact
//!    ground truth of instant `t` — sensors capture from it, and the
//!    simulator's collision test ([`DynamicWorld::actor_hit`]) judges the
//!    drone against the actors' *true* poses at every physics substep.
//!    Nothing about a snapshot is approximate.
//!
//! 2. **Prediction (conservative).** [`DynamicWorld::predicted_boxes`]
//!    returns, per actor, an axis-aligned box guaranteed to contain the
//!    actor over the whole lookahead window `[t, t + horizon]`. For
//!    motion models whose future is determined (patrols, crossers) this
//!    is the swept hull of the true path, inflated only by the sampling
//!    stride; for random walkers the future direction is *not* knowable
//!    from a snapshot, so the box is the reachable disc
//!    (`speed · horizon` in every direction, clipped to the walk bounds).
//!    Predictions over-approximate and never under-approximate: a
//!    trajectory that clears every predicted box cannot be hit by the
//!    actor within the horizon, but a predicted conflict may be a false
//!    positive (the price of conservatism). The mission layer uses
//!    predictions only to *discard plans* (forcing a replan), never to
//!    declare space safe.
//!
//! 3. **Decay (perception-side, delegated).** Vacated cells free up in
//!    the *perception* substrate, not here: the occupancy map's
//!    stale-occupied aging (see `roborun_perception::OccupancyMap`)
//!    downgrades an occupied voxel when a fresh sensor ray traverses it
//!    after the occupying observation has gone stale. Those removals
//!    flow into `PlannerMap::delta_from` as `removed` keys, which the
//!    incremental `CollisionChecker::update_map` already patches — this
//!    crate never reaches into the map.
//!
//! With an empty actor set every view degenerates exactly to the static
//! world: `snapshot_field` holds the same obstacles (and answers every
//! query bit-identically), `predicted_boxes` is empty, `actor_hit` is
//! `false` and `max_closing_speed` is zero — which is how the mission
//! layer guarantees that dynamics-free runs stay byte-identical to the
//! pre-dynamics golden fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod world;

pub use actor::{Actor, MotionModel, WalkAnchor};
pub use world::{DynamicWorld, PoseCache};
