//! The dynamic world: static field + actors, with snapshot and
//! prediction views.

use crate::{Actor, WalkAnchor};
use roborun_env::{Obstacle, ObstacleField};
use roborun_geom::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// Per-mission replay anchors, one [`WalkAnchor`] per actor (in actor
/// order), for the `*_cached` world views. Every cached view is
/// **bit-identical** to its plain counterpart — the anchor only resumes
/// the random walkers' deterministic fold (see [`Actor::pose_at_cached`])
/// — so a driver threading one cache through a mission changes nothing
/// observable while cutting the walkers' pose cost from O(t / dwell) to
/// O(1) per (forward-in-time) query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoseCache {
    anchors: Vec<WalkAnchor>,
}

impl PoseCache {
    /// A cache with `actors` cold anchors.
    pub fn for_actors(actors: usize) -> Self {
        PoseCache {
            anchors: vec![WalkAnchor::new(); actors],
        }
    }

    fn anchor(&mut self, i: usize) -> &mut WalkAnchor {
        // A cache built for a different world (or `Default`) grows to fit:
        // cold anchors behave exactly like the plain replay.
        if self.anchors.len() <= i {
            self.anchors.resize(i + 1, WalkAnchor::new());
        }
        &mut self.anchors[i]
    }
}

/// Actor obstacle ids start here so they never collide with static
/// obstacle ids inside a snapshot field.
const ACTOR_ID_BASE: u32 = 1 << 24;

/// A static obstacle field composed with moving actors.
///
/// See the crate docs for the snapshot / prediction / decay contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicWorld {
    static_field: ObstacleField,
    actors: Vec<Actor>,
}

impl DynamicWorld {
    /// Creates a world from a static field and a set of actors.
    pub fn new(static_field: ObstacleField, actors: Vec<Actor>) -> Self {
        DynamicWorld {
            static_field,
            actors,
        }
    }

    /// A world with no actors: every view degenerates to the static
    /// field.
    pub fn static_only(static_field: ObstacleField) -> Self {
        DynamicWorld::new(static_field, Vec::new())
    }

    /// The static obstacles.
    pub fn static_field(&self) -> &ObstacleField {
        &self.static_field
    }

    /// The actors.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// `true` when the world has no moving actors.
    pub fn is_static(&self) -> bool {
        self.actors.is_empty()
    }

    /// Actor centre positions at time `t`, in actor order.
    pub fn poses_at(&self, t: f64) -> Vec<Vec3> {
        self.actors.iter().map(|a| a.pose_at(t)).collect()
    }

    /// The exact ground-truth obstacle field of instant `t`: the static
    /// obstacles plus one box per actor at its true pose. With no actors
    /// the result holds exactly the static obstacles (and, the broad
    /// phase being a deterministic function of the obstacle list, answers
    /// every query bit-identically to the static field).
    pub fn snapshot_field(&self, t: f64) -> ObstacleField {
        let mut field = self.static_field.clone();
        for (i, actor) in self.actors.iter().enumerate() {
            field.push(Obstacle::new(ACTOR_ID_BASE + i as u32, actor.bounds_at(t)));
        }
        field
    }

    /// `true` when a sphere of radius `margin` at `p` intersects any
    /// actor's true box at time `t` (the simulator's moving-obstacle
    /// collision test; the static field keeps its own check).
    pub fn actor_hit(&self, p: Vec3, t: f64, margin: f64) -> bool {
        self.actors
            .iter()
            .any(|a| a.bounds_at(t).distance_to_point(p) <= margin)
    }

    /// Conservative per-actor occupancy over `[t, t + horizon]` (see
    /// [`Actor::predicted_bounds`]): any point farther than the margin
    /// from every returned box cannot be touched by an actor within the
    /// horizon. Empty when the world is static.
    pub fn predicted_boxes(&self, t: f64, horizon: f64) -> Vec<Aabb> {
        self.actors
            .iter()
            .map(|a| a.predicted_bounds(t, horizon))
            .collect()
    }

    /// The largest closing speed (m/s) of any actor whose *box surface*
    /// lies within `range` of `towards` at time `t`: the component of
    /// the actor's velocity along the direction from the actor to
    /// `towards`, floored at zero. Receding or out-of-range actors
    /// contribute nothing. This is the governor's closing-speed term —
    /// reaction budgets must account for obstacle velocity, not just
    /// distance — and the range gate uses the surface because that is
    /// what the MAV can hit (a wide pillar's face can be metres closer
    /// than its centre).
    pub fn max_closing_speed(&self, t: f64, towards: Vec3, range: f64) -> f64 {
        let mut worst = 0.0f64;
        for actor in &self.actors {
            let bounds = actor.bounds_at(t);
            if bounds.distance_to_point(towards) > range {
                continue;
            }
            let offset = towards - bounds.center();
            let distance = offset.norm();
            let closing = if distance < 1e-9 {
                // Co-located: every motion is "closing" at full speed.
                actor.max_speed()
            } else {
                actor.velocity_at(t).dot(offset / distance)
            };
            worst = worst.max(closing);
        }
        worst
    }

    /// Upper bound on any actor's speed (zero for a static world).
    pub fn max_actor_speed(&self) -> f64 {
        self.actors.iter().map(Actor::max_speed).fold(0.0, f64::max)
    }

    /// A cold [`PoseCache`] sized for this world's actors.
    pub fn pose_cache(&self) -> PoseCache {
        PoseCache::for_actors(self.actors.len())
    }

    /// [`DynamicWorld::snapshot_field`] through a [`PoseCache`]
    /// (bit-identical; see [`PoseCache`]).
    pub fn snapshot_field_cached(&self, t: f64, cache: &mut PoseCache) -> ObstacleField {
        let mut field = self.static_field.clone();
        for (i, actor) in self.actors.iter().enumerate() {
            field.push(Obstacle::new(
                ACTOR_ID_BASE + i as u32,
                actor.bounds_at_cached(t, cache.anchor(i)),
            ));
        }
        field
    }

    /// [`DynamicWorld::actor_hit`] through a [`PoseCache`]
    /// (bit-identical; see [`PoseCache`]).
    pub fn actor_hit_cached(&self, p: Vec3, t: f64, margin: f64, cache: &mut PoseCache) -> bool {
        self.actors
            .iter()
            .enumerate()
            .any(|(i, a)| a.bounds_at_cached(t, cache.anchor(i)).distance_to_point(p) <= margin)
    }

    /// [`DynamicWorld::predicted_boxes`] through a [`PoseCache`]
    /// (bit-identical; see [`PoseCache`]).
    pub fn predicted_boxes_cached(&self, t: f64, horizon: f64, cache: &mut PoseCache) -> Vec<Aabb> {
        self.actors
            .iter()
            .enumerate()
            .map(|(i, a)| a.predicted_bounds_cached(t, horizon, cache.anchor(i)))
            .collect()
    }

    /// [`DynamicWorld::max_closing_speed`] through a [`PoseCache`]
    /// (bit-identical; see [`PoseCache`]).
    pub fn max_closing_speed_cached(
        &self,
        t: f64,
        towards: Vec3,
        range: f64,
        cache: &mut PoseCache,
    ) -> f64 {
        let mut worst = 0.0f64;
        for (i, actor) in self.actors.iter().enumerate() {
            let bounds = actor.bounds_at_cached(t, cache.anchor(i));
            if bounds.distance_to_point(towards) > range {
                continue;
            }
            let offset = towards - bounds.center();
            let distance = offset.norm();
            let closing = if distance < 1e-9 {
                // Co-located: every motion is "closing" at full speed.
                actor.max_speed()
            } else {
                actor.velocity_at(t).dot(offset / distance)
            };
            worst = worst.max(closing);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MotionModel;
    use roborun_geom::Ray;

    fn static_field() -> ObstacleField {
        ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::from_center_half_extents(Vec3::new(30.0, 0.0, 5.0), Vec3::splat(1.0)),
        )])
    }

    fn crossing_actor() -> Actor {
        Actor::new(
            0,
            Vec3::new(10.0, -8.0, 5.0),
            Vec3::new(1.0, 1.0, 5.0),
            MotionModel::Crosser {
                velocity: Vec3::new(0.0, 2.0, 0.0),
                bounds: Aabb::new(Vec3::new(10.0, -8.0, 5.0), Vec3::new(10.0, 8.0, 5.0)),
            },
        )
    }

    #[test]
    fn empty_world_views_degenerate_to_static() {
        let world = DynamicWorld::static_only(static_field());
        assert!(world.is_static());
        assert!(world.poses_at(3.0).is_empty());
        assert!(world.predicted_boxes(3.0, 5.0).is_empty());
        assert!(!world.actor_hit(Vec3::new(30.0, 0.0, 5.0), 3.0, 1.0));
        assert_eq!(world.max_closing_speed(3.0, Vec3::ZERO, 100.0), 0.0);
        assert_eq!(world.max_actor_speed(), 0.0);

        // The snapshot answers queries bit-identically to the static field.
        let snap = world.snapshot_field(12.5);
        assert_eq!(snap.len(), world.static_field().len());
        let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::X);
        let a = world.static_field().raycast(&ray, 100.0).unwrap();
        let b = snap.raycast(&ray, 100.0).unwrap();
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        for p in [Vec3::new(30.0, 0.0, 5.0), Vec3::new(1.0, 2.0, 5.0)] {
            assert_eq!(snap.is_occupied(p), world.static_field().is_occupied(p));
            assert_eq!(
                snap.distance_to_nearest(p).map(f64::to_bits),
                world
                    .static_field()
                    .distance_to_nearest(p)
                    .map(f64::to_bits)
            );
        }
    }

    #[test]
    fn snapshot_contains_actor_at_its_true_pose() {
        let world = DynamicWorld::new(static_field(), vec![crossing_actor()]);
        // At t = 4 the crosser sits at y = 0.
        let snap = world.snapshot_field(4.0);
        assert_eq!(snap.len(), 2);
        assert!(snap.is_occupied(Vec3::new(10.0, 0.0, 5.0)));
        assert!(!snap.is_occupied(Vec3::new(10.0, -6.0, 5.0)));
        // At t = 0 it sits at y = -8 instead.
        let snap0 = world.snapshot_field(0.0);
        assert!(snap0.is_occupied(Vec3::new(10.0, -8.0, 5.0)));
        assert!(!snap0.is_occupied(Vec3::new(10.0, 0.0, 5.0)));
        // Actor ids never collide with static ids.
        assert!(snap.obstacles().iter().any(|o| o.id >= ACTOR_ID_BASE));
    }

    #[test]
    fn actor_hit_tracks_true_pose() {
        let world = DynamicWorld::new(ObstacleField::empty(), vec![crossing_actor()]);
        assert!(world.actor_hit(Vec3::new(10.0, -8.0, 5.0), 0.0, 0.1));
        assert!(!world.actor_hit(Vec3::new(10.0, -8.0, 5.0), 4.0, 0.1));
        assert!(world.actor_hit(Vec3::new(10.0, 0.0, 5.0), 4.0, 0.1));
    }

    #[test]
    fn closing_speed_sees_approaching_actors_only() {
        let world = DynamicWorld::new(ObstacleField::empty(), vec![crossing_actor()]);
        // Drone ahead of the crosser along +y: the crosser approaches at
        // its full 2 m/s while moving up...
        let drone = Vec3::new(10.0, 6.0, 5.0);
        let closing = world.max_closing_speed(1.0, drone, 50.0);
        assert!((closing - 2.0).abs() < 1e-9, "closing {closing}");
        // ...contributes nothing while receding (after the bounce at
        // t = 8 it moves down; by t = 10 it is below the drone, moving
        // away)...
        let receding = world.max_closing_speed(10.0, drone, 50.0);
        assert_eq!(receding, 0.0);
        // ...and nothing when out of range.
        assert_eq!(world.max_closing_speed(1.0, drone, 1.0), 0.0);
        assert!((world.max_actor_speed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn predicted_boxes_cover_each_actor() {
        let world = DynamicWorld::new(
            static_field(),
            vec![
                crossing_actor(),
                Actor::new(
                    1,
                    Vec3::new(20.0, 0.0, 5.0),
                    Vec3::splat(0.8),
                    MotionModel::RandomWalk {
                        seed: 4,
                        speed: 1.0,
                        dwell: 2.0,
                        bounds: Aabb::new(Vec3::new(15.0, -5.0, 5.0), Vec3::new(25.0, 5.0, 5.0)),
                    },
                ),
            ],
        );
        let boxes = world.predicted_boxes(2.0, 4.0);
        assert_eq!(boxes.len(), 2);
        for (actor, hull) in world.actors().iter().zip(&boxes) {
            for i in 0..=40 {
                let t = 2.0 + 4.0 * i as f64 / 40.0;
                assert!(hull.contains_aabb(&actor.bounds_at(t)));
            }
        }
    }
}
