//! Property-based tests for the headroom scheduler's invariants.

use proptest::prelude::*;
use roborun_cognitive::{CognitiveTask, CpuInterval, HeadroomScheduler, SchedulerConfig};

fn arbitrary_profile() -> impl Strategy<Value = Vec<CpuInterval>> {
    proptest::collection::vec((0.05f64..3.0, 0.0f64..1.0), 0..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(duration, utilization)| CpuInterval::new(duration, utilization).expect("valid"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every task: due = processed + dropped + pending, achieved rate
    /// never exceeds the desired rate, and the co-tasks never spend more
    /// than the allowed fraction of the idle core-seconds.
    #[test]
    fn scheduler_invariants_hold(profile in arbitrary_profile()) {
        let config = SchedulerConfig::default();
        let scheduler = HeadroomScheduler::new(config, CognitiveTask::standard_mix());
        let report = scheduler.run(&profile);

        for stats in &report.tasks {
            prop_assert_eq!(
                stats.frames_due,
                stats.frames_processed + stats.frames_dropped + stats.frames_pending
            );
            prop_assert!(stats.achieved_rate_hz <= stats.desired_rate_hz + 1e-9);
            prop_assert!(stats.attainment() >= 0.0 && stats.attainment() <= 1.0);
        }
        prop_assert!(report.used_core_seconds
            <= report.headroom_core_seconds * config.headroom_fraction + 1e-6);
        prop_assert!(report.mean_navigation_utilization >= 0.0);
        prop_assert!(report.mean_navigation_utilization <= 1.0);
    }

    /// An (almost) idle CPU sustains at least as much cognitive throughput
    /// as a heavily loaded one over the same mission profile, for every
    /// task in the mix.
    #[test]
    fn idle_cpu_dominates_a_loaded_cpu(
        duration in 0.1f64..2.0,
        steps in 10usize..150,
        high_util in 0.85f64..1.0,
    ) {
        let make = |util: f64| -> Vec<CpuInterval> {
            (0..steps).map(|_| CpuInterval::new(duration, util).expect("valid")).collect()
        };
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let busy = scheduler.run(&make(high_util));
        let relaxed = scheduler.run(&make(0.0));
        prop_assert!(relaxed.total_processed() >= busy.total_processed());
        prop_assert!(relaxed.mean_attainment() + 1e-9 >= busy.mean_attainment());
        for (r, b) in relaxed.tasks.iter().zip(busy.tasks.iter()) {
            prop_assert!(r.frames_processed >= b.frames_processed, "task {}", r.name);
        }
    }
}
