//! Co-task throughput metrics.

use serde::{Deserialize, Serialize};

/// Per-task outcome of a scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// Task name.
    pub name: String,
    /// Frames the task wanted to process over the run.
    pub frames_due: u64,
    /// Frames actually processed.
    pub frames_processed: u64,
    /// Frames dropped because the backlog cap was exceeded.
    pub frames_dropped: u64,
    /// Frames still pending when the run ended.
    pub frames_pending: u64,
    /// Achieved processing rate (frames per second).
    pub achieved_rate_hz: f64,
    /// Desired processing rate (frames per second).
    pub desired_rate_hz: f64,
}

impl TaskStats {
    /// Fraction of the desired rate actually achieved, in `[0, 1]`.
    pub fn attainment(&self) -> f64 {
        if self.desired_rate_hz <= 0.0 {
            0.0
        } else {
            (self.achieved_rate_hz / self.desired_rate_hz).clamp(0.0, 1.0)
        }
    }

    /// Fraction of due frames that were dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.frames_due == 0 {
            0.0
        } else {
            self.frames_dropped as f64 / self.frames_due as f64
        }
    }
}

/// Outcome of running a co-task mix against one mission's CPU headroom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoTaskReport {
    /// Per-task statistics, in scheduling-priority order.
    pub tasks: Vec<TaskStats>,
    /// Total mission duration covered by the run (seconds).
    pub duration: f64,
    /// Core-seconds left over by navigation across the run.
    pub headroom_core_seconds: f64,
    /// Core-seconds actually consumed by co-tasks.
    pub used_core_seconds: f64,
    /// Mean navigation CPU utilization over the run, in `[0, 1]`.
    pub mean_navigation_utilization: f64,
}

impl CoTaskReport {
    /// Statistics for a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskStats> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Total frames processed across every task.
    pub fn total_processed(&self) -> u64 {
        self.tasks.iter().map(|t| t.frames_processed).sum()
    }

    /// Total frames dropped across every task.
    pub fn total_dropped(&self) -> u64 {
        self.tasks.iter().map(|t| t.frames_dropped).sum()
    }

    /// Fraction of the available headroom that co-tasks consumed, in
    /// `[0, 1]`.
    pub fn headroom_utilization(&self) -> f64 {
        if self.headroom_core_seconds <= 0.0 {
            0.0
        } else {
            (self.used_core_seconds / self.headroom_core_seconds).clamp(0.0, 1.0)
        }
    }

    /// Mean attainment across tasks (unweighted), in `[0, 1]`.
    pub fn mean_attainment(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(TaskStats::attainment).sum::<f64>() / self.tasks.len() as f64
        }
    }

    /// A plain-text table of the report for experiment logs.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>10} {:>9} {:>9} {:>12} {:>12}",
            "task", "due", "processed", "dropped", "pending", "rate (Hz)", "attainment"
        );
        for t in &self.tasks {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>10} {:>9} {:>9} {:>12.3} {:>11.1}%",
                t.name,
                t.frames_due,
                t.frames_processed,
                t.frames_dropped,
                t.frames_pending,
                t.achieved_rate_hz,
                t.attainment() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "headroom {:.1} core-s, used {:.1} core-s ({:.1}%), nav CPU {:.1}%",
            self.headroom_core_seconds,
            self.used_core_seconds,
            self.headroom_utilization() * 100.0,
            self.mean_navigation_utilization * 100.0
        );
        out
    }
}

/// Side-by-side comparison of two co-task reports (typically RoboRun vs the
/// spatial-oblivious baseline over the same mission distance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoTaskComparison {
    /// Name of the first design (e.g. "spatial-aware").
    pub first_label: String,
    /// Name of the second design (e.g. "spatial-oblivious").
    pub second_label: String,
    /// Ratio of mean attainment, first / second (>1 means the first design
    /// sustains more of the desired cognitive throughput).
    pub attainment_ratio: f64,
    /// Ratio of total processed frames per second of mission time,
    /// first / second.
    pub throughput_ratio: f64,
}

impl CoTaskComparison {
    /// Compares two reports.
    pub fn between(
        first_label: &str,
        first: &CoTaskReport,
        second_label: &str,
        second: &CoTaskReport,
    ) -> Self {
        let rate = |r: &CoTaskReport| {
            if r.duration <= 0.0 {
                0.0
            } else {
                r.total_processed() as f64 / r.duration
            }
        };
        let ratio = |a: f64, b: f64| if b <= 1e-12 { f64::INFINITY } else { a / b };
        CoTaskComparison {
            first_label: first_label.to_string(),
            second_label: second_label.to_string(),
            attainment_ratio: ratio(first.mean_attainment(), second.mean_attainment()),
            throughput_ratio: ratio(rate(first), rate(second)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, due: u64, processed: u64, dropped: u64, duration: f64) -> TaskStats {
        TaskStats {
            name: name.to_string(),
            frames_due: due,
            frames_processed: processed,
            frames_dropped: dropped,
            frames_pending: due - processed - dropped,
            achieved_rate_hz: processed as f64 / duration,
            desired_rate_hz: due as f64 / duration,
        }
    }

    fn report(tasks: Vec<TaskStats>, duration: f64, headroom: f64, used: f64) -> CoTaskReport {
        CoTaskReport {
            tasks,
            duration,
            headroom_core_seconds: headroom,
            used_core_seconds: used,
            mean_navigation_utilization: 0.5,
        }
    }

    #[test]
    fn attainment_and_drop_ratio_are_bounded() {
        let t = stats("labeling", 100, 60, 30, 100.0);
        assert!((t.attainment() - 0.6).abs() < 1e-12);
        assert!((t.drop_ratio() - 0.3).abs() < 1e-12);
        let empty = stats("idle", 0, 0, 0, 100.0);
        assert_eq!(empty.attainment(), 0.0);
        assert_eq!(empty.drop_ratio(), 0.0);
    }

    #[test]
    fn report_aggregates_tasks() {
        let r = report(
            vec![stats("a", 10, 8, 1, 10.0), stats("b", 20, 20, 0, 10.0)],
            10.0,
            40.0,
            20.0,
        );
        assert_eq!(r.total_processed(), 28);
        assert_eq!(r.total_dropped(), 1);
        assert!((r.headroom_utilization() - 0.5).abs() < 1e-12);
        assert!((r.mean_attainment() - 0.9).abs() < 1e-12);
        assert!(r.task("a").is_some());
        assert!(r.task("missing").is_none());
        let table = r.to_table();
        assert!(table.contains("labeling") || table.contains('a'));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn comparison_prefers_the_design_with_more_headroom() {
        let good = report(vec![stats("a", 100, 95, 0, 100.0)], 100.0, 300.0, 90.0);
        let bad = report(vec![stats("a", 100, 30, 50, 100.0)], 100.0, 80.0, 30.0);
        let cmp = CoTaskComparison::between("aware", &good, "oblivious", &bad);
        assert!(cmp.attainment_ratio > 2.0);
        assert!(cmp.throughput_ratio > 2.0);
        assert_eq!(cmp.first_label, "aware");
    }

    #[test]
    fn zero_duration_comparison_does_not_divide_by_zero() {
        let a = report(vec![], 0.0, 0.0, 0.0);
        let b = report(vec![], 0.0, 0.0, 0.0);
        let cmp = CoTaskComparison::between("a", &a, "b", &b);
        assert!(cmp.throughput_ratio.is_infinite() || cmp.throughput_ratio == 0.0);
    }
}
