//! The headroom scheduler: fits cognitive co-tasks into the CPU the
//! navigation pipeline leaves unused.
//!
//! The scheduler replays a mission's per-decision CPU profile (interval
//! duration + navigation utilization) and, for each interval, spends the
//! leftover core-seconds on the registered co-tasks in round-robin order.
//! Comparing the resulting throughput between the spatial-aware and
//! spatial-oblivious designs turns the paper's "36% lower CPU utilization"
//! headline into the quantity a roboticist actually cares about: how many
//! semantic-labeling / detection frames per second the platform can
//! sustain *while navigating*.

use crate::metrics::{CoTaskReport, TaskStats};
use crate::task::CognitiveTask;
use serde::{Deserialize, Serialize};

/// One slice of mission time with a known navigation CPU load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuInterval {
    /// Length of the slice (seconds).
    pub duration: f64,
    /// Navigation CPU utilization during the slice, in `[0, 1]`.
    pub navigation_utilization: f64,
}

impl CpuInterval {
    /// Creates an interval, clamping utilization into `[0, 1]` and
    /// rejecting non-positive durations.
    ///
    /// # Errors
    ///
    /// Returns an error string when `duration` is not strictly positive or
    /// not finite.
    pub fn new(duration: f64, navigation_utilization: f64) -> Result<Self, String> {
        if !duration.is_finite() || duration <= 0.0 {
            return Err(format!(
                "interval duration must be positive, got {duration}"
            ));
        }
        Ok(CpuInterval {
            duration,
            navigation_utilization: navigation_utilization.clamp(0.0, 1.0),
        })
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Number of CPU cores on the compute platform (the paper's workload
    /// machine uses four Core i9 cores).
    pub cores: f64,
    /// Fraction of the idle core-seconds co-tasks are allowed to consume
    /// (a safety margin below 1.0 keeps the platform from saturating).
    pub headroom_fraction: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            cores: 4.0,
            headroom_fraction: 0.9,
        }
    }
}

impl SchedulerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores <= 0.0 || self.cores.is_nan() {
            return Err(format!("cores must be positive, got {}", self.cores));
        }
        if !(self.headroom_fraction > 0.0 && self.headroom_fraction <= 1.0) {
            return Err(format!(
                "headroom_fraction must be in (0, 1], got {}",
                self.headroom_fraction
            ));
        }
        Ok(())
    }
}

#[derive(Debug)]
struct TaskState {
    task: CognitiveTask,
    accrual: f64,
    backlog: u64,
    due: u64,
    processed: u64,
    dropped: u64,
    /// Core-seconds already spent on the frame currently being processed;
    /// work carries over between intervals so a frame more expensive than
    /// one interval's headroom still completes eventually.
    progress: f64,
}

/// Schedules a co-task mix into the headroom of a CPU profile.
#[derive(Debug, Clone)]
pub struct HeadroomScheduler {
    config: SchedulerConfig,
    tasks: Vec<CognitiveTask>,
}

impl HeadroomScheduler {
    /// Creates a scheduler for a task mix.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`SchedulerConfig::validate`]).
    pub fn new(config: SchedulerConfig, tasks: Vec<CognitiveTask>) -> Self {
        config.validate().expect("invalid scheduler configuration");
        HeadroomScheduler { config, tasks }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The registered co-tasks.
    pub fn tasks(&self) -> &[CognitiveTask] {
        &self.tasks
    }

    /// Replays the intervals and returns the achieved co-task throughput.
    pub fn run(&self, intervals: &[CpuInterval]) -> CoTaskReport {
        let mut states: Vec<TaskState> = self
            .tasks
            .iter()
            .map(|task| TaskState {
                task: task.clone(),
                accrual: 0.0,
                backlog: 0,
                due: 0,
                processed: 0,
                dropped: 0,
                progress: 0.0,
            })
            .collect();

        let mut duration = 0.0;
        let mut headroom_total = 0.0;
        let mut used_total = 0.0;
        let mut utilization_weighted = 0.0;

        for interval in intervals {
            let dt = interval.duration;
            if dt <= 0.0 {
                continue;
            }
            duration += dt;
            utilization_weighted += interval.navigation_utilization.clamp(0.0, 1.0) * dt;

            // New frames become due.
            for state in &mut states {
                state.accrual += dt / state.task.desired_period;
                while state.accrual >= 1.0 {
                    state.accrual -= 1.0;
                    state.due += 1;
                    state.backlog += 1;
                }
                // Stale frames beyond the backlog cap are dropped before any
                // processing happens — a perception co-task only cares about
                // recent frames.
                while state.backlog > state.task.max_backlog as u64 {
                    state.backlog -= 1;
                    state.dropped += 1;
                }
            }

            // Spend the idle core-seconds round-robin across tasks with
            // work. A frame's work carries over between intervals
            // (`progress`), so even a frame more expensive than one
            // interval's headroom eventually completes.
            let idle = (1.0 - interval.navigation_utilization).max(0.0);
            let mut budget = idle * self.config.cores * dt * self.config.headroom_fraction;
            headroom_total += idle * self.config.cores * dt;
            loop {
                let mut progressed = false;
                for state in &mut states {
                    if state.backlog == 0 || budget <= 1e-12 {
                        continue;
                    }
                    let remaining = state.task.cost_per_frame - state.progress;
                    let spend = remaining.min(budget);
                    state.progress += spend;
                    budget -= spend;
                    used_total += spend;
                    progressed = spend > 1e-12;
                    if state.progress + 1e-12 >= state.task.cost_per_frame {
                        state.progress = 0.0;
                        state.backlog -= 1;
                        state.processed += 1;
                    }
                }
                if !progressed || budget <= 1e-12 {
                    break;
                }
            }
        }

        let tasks = states
            .into_iter()
            .map(|state| TaskStats {
                name: state.task.name.clone(),
                frames_due: state.due,
                frames_processed: state.processed,
                frames_dropped: state.dropped,
                frames_pending: state.backlog,
                achieved_rate_hz: if duration > 0.0 {
                    state.processed as f64 / duration
                } else {
                    0.0
                },
                desired_rate_hz: state.task.desired_rate_hz(),
            })
            .collect();

        CoTaskReport {
            tasks,
            duration,
            headroom_core_seconds: headroom_total,
            used_core_seconds: used_total,
            mean_navigation_utilization: if duration > 0.0 {
                utilization_weighted / duration
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_profile(n: usize, duration: f64, utilization: f64) -> Vec<CpuInterval> {
        (0..n)
            .map(|_| CpuInterval::new(duration, utilization).unwrap())
            .collect()
    }

    #[test]
    fn idle_cpu_sustains_the_full_co_task_mix() {
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let report = scheduler.run(&uniform_profile(200, 0.5, 0.05));
        // 100 s at ~4 idle cores: the whole mix (≈2.0 cores steady demand)
        // fits comfortably.
        assert!(
            report.mean_attainment() > 0.9,
            "attainment {}",
            report.mean_attainment()
        );
        assert_eq!(report.total_dropped(), 0);
        assert!(report.headroom_core_seconds > 300.0);
    }

    #[test]
    fn saturated_cpu_starves_co_tasks() {
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let report = scheduler.run(&uniform_profile(200, 0.5, 0.98));
        assert!(
            report.mean_attainment() < 0.3,
            "attainment {}",
            report.mean_attainment()
        );
        assert!(report.total_dropped() > 0);
    }

    #[test]
    fn lower_navigation_load_means_more_cognitive_throughput() {
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let light = scheduler.run(&uniform_profile(400, 0.5, 0.3));
        let heavy = scheduler.run(&uniform_profile(400, 0.5, 0.8));
        assert!(light.total_processed() > heavy.total_processed());
        assert!(light.mean_attainment() >= heavy.mean_attainment());
    }

    #[test]
    fn used_core_seconds_never_exceed_the_allowed_headroom() {
        let config = SchedulerConfig {
            cores: 4.0,
            headroom_fraction: 0.5,
        };
        let scheduler = HeadroomScheduler::new(config, CognitiveTask::standard_mix());
        let report = scheduler.run(&uniform_profile(100, 1.0, 0.4));
        assert!(report.used_core_seconds <= report.headroom_core_seconds * 0.5 + 1e-9);
    }

    #[test]
    fn backlog_cap_drops_stale_frames_instead_of_growing_without_bound() {
        let task = CognitiveTask::new("tracking", 10.0, 0.1, 2).unwrap(); // impossible demand
        let scheduler = HeadroomScheduler::new(SchedulerConfig::default(), vec![task]);
        let report = scheduler.run(&uniform_profile(100, 0.5, 0.5));
        let stats = report.task("tracking").unwrap();
        assert!(stats.frames_pending <= 2);
        assert!(stats.frames_dropped > 100);
        assert_eq!(
            stats.frames_due,
            stats.frames_processed + stats.frames_dropped + stats.frames_pending
        );
    }

    #[test]
    fn frame_accounting_is_conserved_for_every_task() {
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let report = scheduler.run(&uniform_profile(137, 0.73, 0.42));
        for stats in &report.tasks {
            assert_eq!(
                stats.frames_due,
                stats.frames_processed + stats.frames_dropped + stats.frames_pending,
                "accounting broken for {}",
                stats.name
            );
        }
    }

    #[test]
    fn empty_profile_yields_an_empty_report() {
        let scheduler =
            HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
        let report = scheduler.run(&[]);
        assert_eq!(report.duration, 0.0);
        assert_eq!(report.total_processed(), 0);
        assert_eq!(report.mean_navigation_utilization, 0.0);
    }

    #[test]
    fn interval_validation_rejects_bad_durations() {
        assert!(CpuInterval::new(0.0, 0.5).is_err());
        assert!(CpuInterval::new(-1.0, 0.5).is_err());
        assert!(CpuInterval::new(f64::NAN, 0.5).is_err());
        let clamped = CpuInterval::new(1.0, 7.0).unwrap();
        assert_eq!(clamped.navigation_utilization, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid scheduler configuration")]
    fn invalid_config_panics() {
        let config = SchedulerConfig {
            cores: 0.0,
            ..SchedulerConfig::default()
        };
        let _ = HeadroomScheduler::new(config, vec![]);
    }
}
