//! Cognitive co-task modeling: what the freed-up CPU buys.
//!
//! The paper's System Utilization result (Section V-A) reports that RoboRun
//! "reduces CPU-utilization by 36% … freeing up CPU resources for
//! higher-level cognitive tasks, e.g., semantic labeling, and
//! gesture/action detection". This crate closes that loop: it models those
//! cognitive tasks as periodic frame-processing workloads
//! ([`CognitiveTask`]), replays a mission's per-decision CPU profile
//! through a headroom scheduler ([`HeadroomScheduler`]) and reports how
//! much of the desired cognitive throughput each navigation design can
//! sustain ([`CoTaskReport`], [`CoTaskComparison`]).
//!
//! # Example
//!
//! ```
//! use roborun_cognitive::{CognitiveTask, CpuInterval, HeadroomScheduler, SchedulerConfig};
//!
//! // A 100 s mission profile where navigation keeps the 4-core platform
//! // 40% busy on average.
//! let profile: Vec<CpuInterval> = (0..200)
//!     .map(|_| CpuInterval::new(0.5, 0.4).expect("valid interval"))
//!     .collect();
//! let scheduler = HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
//! let report = scheduler.run(&profile);
//! assert!(report.mean_attainment() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod scheduler;
pub mod task;

pub use metrics::{CoTaskComparison, CoTaskReport, TaskStats};
pub use scheduler::{CpuInterval, HeadroomScheduler, SchedulerConfig};
pub use task::CognitiveTask;

use roborun_core::MissionTelemetry;

/// Builds the per-decision CPU profile of a mission from its telemetry.
///
/// Each decision becomes one [`CpuInterval`] whose duration is the epoch
/// the mission runner actually simulated (`max(latency, min_epoch)`) and
/// whose utilization is the navigation pipeline's recorded CPU share.
pub fn intervals_from_telemetry(telemetry: &MissionTelemetry, min_epoch: f64) -> Vec<CpuInterval> {
    telemetry
        .records()
        .iter()
        .filter_map(|r| CpuInterval::new(r.latency().max(min_epoch), r.cpu_utilization).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_core::{DecisionRecord, Degradation, KnobSettings, RuntimeMode};
    use roborun_geom::Vec3;
    use roborun_sim::LatencyBreakdown;

    fn record(latency: f64, cpu: f64) -> DecisionRecord {
        DecisionRecord {
            time: 0.0,
            position: Vec3::new(0.0, 0.0, 5.0),
            commanded_velocity: 1.0,
            visibility: 10.0,
            deadline: 2.0,
            knobs: KnobSettings::static_baseline(),
            breakdown: LatencyBreakdown {
                point_cloud: latency,
                ..LatencyBreakdown::default()
            },
            cpu_utilization: cpu,
            zone: Some('B'),
            masked_latency: 0.0,
            degradation: Degradation::Healthy,
        }
    }

    #[test]
    fn telemetry_converts_to_intervals() {
        let mut telemetry = MissionTelemetry::new(RuntimeMode::SpatialAware);
        telemetry.push(record(0.2, 0.3));
        telemetry.push(record(1.5, 0.8));
        let intervals = intervals_from_telemetry(&telemetry, 0.5);
        assert_eq!(intervals.len(), 2);
        // The first decision is clamped up to the minimum epoch.
        assert!((intervals[0].duration - 0.5).abs() < 1e-12);
        assert!((intervals[1].duration - 1.5).abs() < 1e-12);
        assert!((intervals[1].navigation_utilization - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_telemetry_yields_no_intervals() {
        let telemetry = MissionTelemetry::new(RuntimeMode::SpatialOblivious);
        assert!(intervals_from_telemetry(&telemetry, 0.5).is_empty());
    }
}
