//! Cognitive co-task descriptions.
//!
//! The paper motivates RoboRun's CPU-utilization reduction by the
//! higher-level cognitive tasks it makes room for: "semantic labeling, and
//! gesture/action detection. Since navigation is a primitive task, lowering
//! its pressure on the CPU is imperative." (Section V-A). This module
//! describes those co-tasks as periodic frame-processing workloads so the
//! scheduler can quantify how much of each workload fits into the headroom
//! a given navigation design leaves.

use serde::{Deserialize, Serialize};

/// A periodic cognitive workload that consumes leftover CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CognitiveTask {
    /// Human-readable name ("semantic_labeling", ...).
    pub name: String,
    /// CPU cost of processing one frame (core-seconds).
    pub cost_per_frame: f64,
    /// Desired inter-frame period (seconds); the desired rate is
    /// `1 / desired_period` Hz.
    pub desired_period: f64,
    /// Maximum backlog (in frames) the task keeps before it starts dropping
    /// the oldest pending frames — a perception co-task has no use for
    /// stale camera frames.
    pub max_backlog: usize,
}

impl CognitiveTask {
    /// Creates a task after validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (non-positive cost
    /// or period, zero backlog).
    pub fn new(
        name: &str,
        cost_per_frame: f64,
        desired_period: f64,
        max_backlog: usize,
    ) -> Result<Self, String> {
        if cost_per_frame <= 0.0 || cost_per_frame.is_nan() {
            return Err(format!(
                "cost_per_frame must be positive, got {cost_per_frame}"
            ));
        }
        if desired_period <= 0.0 || desired_period.is_nan() {
            return Err(format!(
                "desired_period must be positive, got {desired_period}"
            ));
        }
        if max_backlog == 0 {
            return Err("max_backlog must be at least 1".to_string());
        }
        Ok(CognitiveTask {
            name: name.to_string(),
            cost_per_frame,
            desired_period,
            max_backlog,
        })
    }

    /// Semantic labeling of camera frames: a heavyweight CNN-style pass at
    /// 1 Hz, ~0.9 core-seconds per frame.
    pub fn semantic_labeling() -> Self {
        CognitiveTask::new("semantic_labeling", 0.9, 1.0, 3).expect("preset is valid")
    }

    /// Gesture / action detection: lighter per frame (~0.3 core-seconds)
    /// but wants 2 Hz.
    pub fn gesture_detection() -> Self {
        CognitiveTask::new("gesture_detection", 0.3, 0.5, 4).expect("preset is valid")
    }

    /// Object tracking: cheap (~0.1 core-seconds) at 4 Hz.
    pub fn object_tracking() -> Self {
        CognitiveTask::new("object_tracking", 0.1, 0.25, 8).expect("preset is valid")
    }

    /// The standard co-task mix used by the experiments: labeling +
    /// detection + tracking.
    pub fn standard_mix() -> Vec<Self> {
        vec![
            CognitiveTask::semantic_labeling(),
            CognitiveTask::gesture_detection(),
            CognitiveTask::object_tracking(),
        ]
    }

    /// Desired processing rate (frames per second).
    pub fn desired_rate_hz(&self) -> f64 {
        1.0 / self.desired_period
    }

    /// CPU demand if every desired frame were processed (core-utilization,
    /// i.e. cores occupied on average).
    pub fn steady_state_demand(&self) -> f64 {
        self.cost_per_frame / self.desired_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        let mix = CognitiveTask::standard_mix();
        assert_eq!(mix.len(), 3);
        let names: std::collections::HashSet<_> = mix.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names.len(), 3);
        for task in &mix {
            assert!(task.cost_per_frame > 0.0);
            assert!(task.desired_period > 0.0);
            assert!(task.max_backlog >= 1);
        }
    }

    #[test]
    fn rates_and_demand_follow_the_period() {
        let task = CognitiveTask::new("t", 0.5, 0.25, 2).unwrap();
        assert!((task.desired_rate_hz() - 4.0).abs() < 1e-12);
        assert!((task.steady_state_demand() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(CognitiveTask::new("t", 0.0, 1.0, 1).is_err());
        assert!(CognitiveTask::new("t", -1.0, 1.0, 1).is_err());
        assert!(CognitiveTask::new("t", 1.0, 0.0, 1).is_err());
        assert!(CognitiveTask::new("t", 1.0, f64::NAN, 1).is_err());
        assert!(CognitiveTask::new("t", 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn semantic_labeling_is_the_heaviest_preset() {
        let mix = CognitiveTask::standard_mix();
        let labeling = &mix[0];
        for other in &mix[1..] {
            assert!(labeling.cost_per_frame > other.cost_per_frame);
        }
    }
}
