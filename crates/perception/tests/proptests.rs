//! Property-based tests for the perception kernels and operators.

use proptest::prelude::*;
use roborun_geom::Vec3;
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        ((-30.0f64..30.0), (-30.0f64..30.0), (0.0f64..15.0))
            .prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn downsampling_never_increases_point_count(points in arb_points(200), cell in 0.1f64..5.0) {
        let cloud = PointCloud::new(Vec3::ZERO, points);
        let ds = cloud.downsampled(cell);
        prop_assert!(ds.len() <= cloud.len());
        // Downsampled points stay within the original bounds (averages of members).
        if let (Some(orig), Some(new)) = (cloud.bounds(), ds.bounds()) {
            prop_assert!(orig.inflate(1e-9).contains_aabb(&new));
        }
        // Coarser cells never yield more points than finer cells.
        let coarser = cloud.downsampled(cell * 2.0);
        prop_assert!(coarser.len() <= ds.len());
    }

    /// The expanding-ring nearest queries must return exactly what the
    /// retained linear scans return, on random maps and random queries.
    #[test]
    fn ring_nearest_queries_match_linear_scans(points in arb_points(150),
                                               resolution in 0.2f64..2.0,
                                               qx in -40.0f64..40.0, qy in -40.0f64..40.0,
                                               qz in -5.0f64..20.0,
                                               max_radius in 0.0f64..60.0,
                                               precision in 0.2f64..5.0) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut map = OccupancyMap::new(resolution);
        map.integrate_cloud(&PointCloud::new(origin, points), resolution);
        let q = Vec3::new(qx, qy, qz);
        prop_assert_eq!(
            map.nearest_occupied_distance(q, max_radius),
            map.nearest_occupied_distance_linear(q, max_radius)
        );
        let pm = PlannerMap::export(&map, &ExportConfig::new(precision, 1e9, origin));
        prop_assert_eq!(pm.distance_to_nearest(q), pm.distance_to_nearest_linear(q));
    }

    #[test]
    fn volume_limit_is_respected(points in arb_points(150), budget in 0.0f64..5_000.0) {
        let cloud = PointCloud::new(Vec3::ZERO, points);
        let limited = cloud.volume_limited(Vec3::ZERO, budget);
        prop_assert!(limited.len() <= cloud.len());
        if let Some(bounds) = limited.bounds() {
            // The accepted set's volume only exceeds the budget when a single
            // point was kept (a degenerate AABB has zero volume anyway).
            if limited.len() > 1 {
                prop_assert!(bounds.volume() <= budget.max(0.0) + 1e-6);
            }
        }
        if budget == 0.0 {
            prop_assert!(limited.is_empty());
        }
    }

    #[test]
    fn occupancy_map_marks_every_hit_point(points in arb_points(80), step in 0.2f64..2.0) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = PointCloud::new(origin, points.clone());
        let mut map = OccupancyMap::new(0.5);
        let updates = map.integrate_cloud(&cloud, step);
        prop_assert!(updates >= points.len());
        for p in &points {
            prop_assert!(map.is_occupied(*p), "hit point {p:?} not occupied");
        }
        // Stats are consistent.
        let stats = map.stats();
        prop_assert_eq!(stats.occupied + stats.free, map.len());
        prop_assert!((map.known_volume() - stats.known_volume).abs() < 1e-9);
    }

    #[test]
    fn export_respects_budget_and_precision_lattice(points in arb_points(120),
                                                    precision in 0.3f64..5.0,
                                                    budget in 1.0f64..2_000.0) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = PointCloud::new(origin, points);
        let mut map = OccupancyMap::new(0.3);
        map.integrate_cloud(&cloud, 0.6);
        let export = PlannerMap::export(&map, &ExportConfig::new(precision, budget, origin));
        // Exported voxel size is a power-of-two multiple of the map resolution
        // and never finer than requested... but also never coarser than the
        // request allows (snap goes downward).
        let ratio = export.voxel_size() / 0.3;
        prop_assert!((ratio - ratio.round()).abs() < 1e-6);
        prop_assert!((ratio.round() as u64).is_power_of_two());
        prop_assert!(export.voxel_size() <= precision.max(0.3) + 1e-9);
        // Volume budget respected (allowing the always-export-one rule).
        if export.len() > 1 {
            prop_assert!(export.occupied_volume() <= budget + export.voxel_size().powi(3) + 1e-6);
        }
        // Every exported box is occupied space according to the map's own
        // occupied voxels (conservatively: contains at least one).
        if !map.is_empty() && budget > 1.0 {
            for b in export.boxes() {
                let found = map.occupied_voxels().any(|(_, vb)| b.intersects(&vb));
                prop_assert!(found, "exported box {b:?} covers no occupied voxel");
            }
        }
    }

    #[test]
    fn export_distance_is_conservative(points in arb_points(100)) {
        // The exported (possibly coarsened) map must never report an
        // obstacle as farther away than the fine map does: coarsening may
        // inflate obstacles but must not shrink them.
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = PointCloud::new(origin, points);
        let mut map = OccupancyMap::new(0.3);
        map.integrate_cloud(&cloud, 0.6);
        let fine = PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, origin));
        let coarse = PlannerMap::export(&map, &ExportConfig::new(2.4, 1e9, origin));
        let probe = Vec3::new(0.0, 0.0, 5.0);
        match (fine.distance_to_nearest(probe), coarse.distance_to_nearest(probe)) {
            (Some(df), Some(dc)) => prop_assert!(dc <= df + 1e-6, "coarse {dc} > fine {df}"),
            (Some(_), None) => prop_assert!(false, "coarse export lost all obstacles"),
            _ => {}
        }
    }

    /// The DDA-batched `integrate_cloud` must leave the map bit-identical
    /// to the retained per-sample reference — same voxel states, same
    /// occupied set and bounds (via `PartialEq`), same update count — for
    /// any resolution/step combination, including steps finer and coarser
    /// than a voxel.
    #[test]
    fn batched_integration_matches_reference(points in arb_points(120),
                                             resolution in 0.2f64..2.0,
                                             step in 0.05f64..2.5,
                                             ox in -10.0f64..10.0, oy in -10.0f64..10.0) {
        let origin = Vec3::new(ox, oy, 5.0);
        let cloud = PointCloud::new(origin, points);
        let mut batched = OccupancyMap::new(resolution);
        let mut reference = OccupancyMap::new(resolution);
        let u1 = batched.integrate_cloud(&cloud, step);
        let u2 = reference.integrate_cloud_reference(&cloud, step);
        prop_assert_eq!(u1, u2, "update counts diverged");
        prop_assert_eq!(&batched, &reference);
        // A second cloud over the partially known map exercises the
        // no-downgrade clamping through the batched path too.
        let second = PointCloud::new(
            origin + Vec3::new(1.0, -0.5, 0.0),
            cloud.points().iter().map(|p| *p + Vec3::new(0.7, 0.7, 0.0)).collect(),
        );
        let u1 = batched.integrate_cloud(&second, step);
        let u2 = reference.integrate_cloud_reference(&second, step);
        prop_assert_eq!(u1, u2, "second-cloud update counts diverged");
        prop_assert_eq!(&batched, &reference);
    }

    /// `PlannerMap::delta_from` must be the exact set difference between
    /// two exports: applying it to the previous key set reproduces the new
    /// one.
    #[test]
    fn export_delta_is_exact_set_difference(points in arb_points(120),
                                            extra in arb_points(40),
                                            precision in 0.3f64..3.0) {
        use std::collections::BTreeSet;
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut map = OccupancyMap::new(0.3);
        map.integrate_cloud(&PointCloud::new(origin, points), 0.6);
        let before = PlannerMap::export(&map, &ExportConfig::new(precision, 1e9, origin));
        map.integrate_cloud(&PointCloud::new(origin, extra), 0.6);
        map.retain_within(origin, 25.0);
        let after = PlannerMap::export(&map, &ExportConfig::new(precision, 1e9, origin));
        let delta = after.delta_from(&before).expect("same voxel size");
        prop_assert_eq!(delta.voxel_size(), after.voxel_size());
        let mut keys: BTreeSet<_> = before.occupied_keys().collect();
        for k in delta.removed() {
            prop_assert!(keys.remove(k), "removed key {k:?} not in previous export");
        }
        for k in delta.added() {
            prop_assert!(keys.insert(*k), "added key {k:?} already present");
        }
        let new_keys: BTreeSet<_> = after.occupied_keys().collect();
        prop_assert_eq!(keys, new_keys);
        prop_assert_eq!(delta.len(), delta.added().len() + delta.removed().len());
    }
}

/// The ring queries swept over the shared adversarial scenario family —
/// shapes random sampling is unlikely to produce (exact voxel-face points,
/// dense lattices, tight clusters).
#[test]
fn adversarial_scenarios_match_linear_references() {
    for resolution in [0.3, 0.5, 1.0] {
        for scenario in roborun_conformance::adversarial_point_sets(11, resolution) {
            let origin = Vec3::new(0.0, 0.0, 5.0);
            // A step fine enough (< res/2) to route through the batched
            // carve, so the adversarial shapes exercise it too.
            let step = resolution * 0.2;
            let mut map = OccupancyMap::new(resolution);
            map.integrate_cloud(&PointCloud::new(origin, scenario.points.clone()), step);
            let mut reference = OccupancyMap::new(resolution);
            reference.integrate_cloud_reference(&PointCloud::new(origin, scenario.points), step);
            assert_eq!(map, reference, "integration diverged on {}", scenario.name);
            let pm = PlannerMap::export(&map, &ExportConfig::new(resolution, 1e9, origin));
            for q in roborun_conformance::boundary_probes(11, resolution) {
                for radius in [0.0, resolution, 7.3, 1e4] {
                    assert_eq!(
                        map.nearest_occupied_distance(q, radius),
                        map.nearest_occupied_distance_linear(q, radius),
                        "occupancy nearest diverged on {} at {q} r={radius}",
                        scenario.name
                    );
                }
                assert_eq!(
                    pm.distance_to_nearest(q),
                    pm.distance_to_nearest_linear(q),
                    "export nearest diverged on {} at {q}",
                    scenario.name
                );
            }
        }
    }
}
