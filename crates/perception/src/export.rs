//! Perception-to-planning export: the pruned, volume-limited map view the
//! planner receives.
//!
//! The paper's perception-to-planning operators are:
//!
//! * **Precision** — "enforced by sub-sampling and pruning the tree
//!   structure of the encoded map": occupied voxels are re-keyed at a
//!   coarser, power-of-two multiple of the map resolution.
//! * **Volume** — "controls the space volume communicated to the planner,
//!   limiting the planner's knowledge of the world. [...] we prune the map,
//!   encoded in a tree, by selecting higher level trees (in the sorted
//!   order) until the threshold is reached", sorted by proximity to the MAV.

use crate::OccupancyMap;
use roborun_geom::{
    snap_to_lattice, Aabb, FxHashSet, RingSearch, RingSearchOutcome, Vec3, VoxelKey,
};
use serde::{Deserialize, Serialize};

/// Configuration of one export (the two perception-to-planning knobs plus
/// the sort reference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExportConfig {
    /// Export precision in metres. Values are snapped to the nearest
    /// power-of-two multiple of the map resolution that does not exceed the
    /// request (the OctoMap tree constraint from paper Eq. 3).
    pub precision: f64,
    /// Maximum exported occupied volume in cubic metres.
    pub max_volume: f64,
    /// Reference position (the MAV) voxels are sorted by proximity to.
    pub reference: Vec3,
}

impl ExportConfig {
    /// Creates an export configuration.
    ///
    /// # Panics
    ///
    /// Panics if `precision <= 0` or `max_volume < 0`.
    pub fn new(precision: f64, max_volume: f64, reference: Vec3) -> Self {
        assert!(precision > 0.0, "export precision must be positive");
        assert!(max_volume >= 0.0, "export volume must be non-negative");
        ExportConfig {
            precision,
            max_volume,
            reference,
        }
    }
}

/// The planner's view of the world: coarse occupied boxes near the MAV.
///
/// # Example
///
/// ```
/// use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
/// use roborun_geom::Vec3;
///
/// let mut map = OccupancyMap::new(0.3);
/// map.integrate_cloud(&PointCloud::new(Vec3::ZERO, vec![Vec3::new(5.0, 0.0, 0.0)]), 0.3);
/// let planner_map = PlannerMap::export(&map, &ExportConfig::new(0.6, 1e6, Vec3::ZERO));
/// assert!(planner_map.is_occupied(Vec3::new(5.0, 0.0, 0.0), 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerMap {
    voxel_size: f64,
    boxes: Vec<Aabb>,
    /// Occupied voxel keys at `voxel_size` resolution, for O(1) point
    /// queries (the collision checker calls `is_occupied` millions of times
    /// during an RRT* search).
    keys: FxHashSet<VoxelKey>,
    /// Key-space bounds of `keys` (valid when non-empty) — they cap the
    /// expanding-ring search of [`PlannerMap::distance_to_nearest`].
    key_min: VoxelKey,
    key_max: VoxelKey,
}

impl PlannerMap {
    /// An empty planner map (open space) at the given voxel size.
    pub fn empty(voxel_size: f64) -> Self {
        PlannerMap {
            voxel_size,
            boxes: Vec::new(),
            keys: FxHashSet::default(),
            key_min: VoxelKey { x: 0, y: 0, z: 0 },
            key_max: VoxelKey { x: 0, y: 0, z: 0 },
        }
    }

    /// Exports a planner map from an occupancy map, applying the
    /// perception-to-planning precision and volume operators.
    pub fn export(map: &OccupancyMap, config: &ExportConfig) -> Self {
        // Snap to the power-of-two lattice rooted at the map resolution.
        // Eight levels cover a 128x coarsening, far beyond Table II's range.
        let precision =
            snap_to_lattice(config.precision.max(map.resolution()), map.resolution(), 8);

        // Re-key occupied voxels at the export resolution (tree pruning).
        let mut coarse: FxHashSet<VoxelKey> = FxHashSet::default();
        for (key, _) in map.occupied_voxels() {
            let center = key.center(map.resolution());
            coarse.insert(VoxelKey::from_point(center, precision));
        }

        // Sort coarse voxels by proximity to the MAV and keep them until the
        // exported volume exceeds the budget.
        let mut keys: Vec<VoxelKey> = coarse.into_iter().collect();
        keys.sort_by(|a, b| {
            let da = a.center(precision).distance_squared(config.reference);
            let db = b.center(precision).distance_squared(config.reference);
            da.partial_cmp(&db)
                .expect("distances are never NaN")
                .then_with(|| a.cmp(b))
        });
        let voxel_volume = precision.powi(3);
        let mut boxes = Vec::new();
        let mut kept_keys = FxHashSet::default();
        let mut volume = 0.0;
        for key in keys {
            // Always export at least the closest obstacle (if any budget at
            // all), otherwise the planner would fly blind next to a known
            // hazard; stop once the budget is consumed.
            if volume + voxel_volume > config.max_volume && !boxes.is_empty() {
                break;
            }
            boxes.push(Aabb::from_center_half_extents(
                key.center(precision),
                Vec3::splat(precision * 0.5),
            ));
            kept_keys.insert(key);
            volume += voxel_volume;
            if volume >= config.max_volume && config.max_volume > 0.0 {
                break;
            }
        }
        if config.max_volume == 0.0 {
            boxes.clear();
            kept_keys.clear();
        }
        let mut key_min = VoxelKey { x: 0, y: 0, z: 0 };
        let mut key_max = VoxelKey { x: 0, y: 0, z: 0 };
        for (i, key) in kept_keys.iter().enumerate() {
            if i == 0 {
                key_min = *key;
                key_max = *key;
            } else {
                key_min = key_min.componentwise_min(*key);
                key_max = key_max.componentwise_max(*key);
            }
        }
        PlannerMap {
            voxel_size: precision,
            boxes,
            keys: kept_keys,
            key_min,
            key_max,
        }
    }

    /// Voxel size of the exported boxes (metres).
    pub fn voxel_size(&self) -> f64 {
        self.voxel_size
    }

    /// The exported occupied boxes.
    pub fn boxes(&self) -> &[Aabb] {
        &self.boxes
    }

    /// Number of exported boxes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` when nothing was exported.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Total exported occupied volume (m³).
    pub fn occupied_volume(&self) -> f64 {
        self.boxes.len() as f64 * self.voxel_size.powi(3)
    }

    /// `true` when `p` lies within `margin` of any exported occupied box.
    ///
    /// Implemented as a local voxel-neighbourhood lookup in a hash set, so a
    /// query costs `O((margin / voxel_size + 2)³)` regardless of how many
    /// boxes were exported.
    pub fn is_occupied(&self, p: Vec3, margin: f64) -> bool {
        if self.keys.is_empty() {
            return false;
        }
        // A box within `margin` of `p` has its closest point within
        // `margin` per axis, so its key offset is at most
        // floor(margin / voxel) + 1 in each direction.
        let reach = (margin / self.voxel_size).floor() as i64 + 1;
        let center = VoxelKey::from_point(p, self.voxel_size);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    let key = VoxelKey {
                        x: center.x + dx,
                        y: center.y + dy,
                        z: center.z + dz,
                    };
                    if self.keys.contains(&key) {
                        let b = Aabb::from_center_half_extents(
                            key.center(self.voxel_size),
                            Vec3::splat(self.voxel_size * 0.5),
                        );
                        if b.distance_to_point(p) <= margin {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Distance from `p` to the nearest exported box surface, or `None`
    /// when the map is empty.
    ///
    /// Searches voxel keys in expanding Chebyshev rings around `p`, so the
    /// cost depends on how close the nearest box is, not on how many boxes
    /// were exported; once the ring search would visit more cells than a
    /// scan of the box list, it falls back to the linear reference (whose
    /// result is identical).
    pub fn distance_to_nearest(&self, p: Vec3) -> Option<f64> {
        if self.keys.is_empty() {
            return None;
        }
        let mut best: Option<f64> = None;
        let outcome = RingSearch::new(self.voxel_size, self.key_min, self.key_max)
            .with_fallback_budget(2 * self.keys.len())
            .run(p, None, |key| {
                if self.keys.contains(&key) {
                    let b = Aabb::from_center_half_extents(
                        key.center(self.voxel_size),
                        Vec3::splat(self.voxel_size * 0.5),
                    );
                    let d = b.distance_to_point(p);
                    if best.map(|bd| d < bd).unwrap_or(true) {
                        best = Some(d);
                    }
                }
                best.map(|d| d * d)
            });
        if outcome == RingSearchOutcome::BudgetExhausted {
            return self.distance_to_nearest_linear(p);
        }
        best
    }

    /// The occupied voxel keys of the export, in no particular order.
    ///
    /// Every exported box is exactly one voxel at [`PlannerMap::voxel_size`]
    /// resolution, so the key set identifies the boxes: consumers that keep
    /// derived per-box state (the collision checker's broad-phase) address
    /// it by key and patch it from a [`PlannerMapDelta`].
    pub fn occupied_keys(&self) -> impl Iterator<Item = VoxelKey> + '_ {
        self.keys.iter().copied()
    }

    /// `true` when `key` is one of the exported occupied voxels.
    pub fn contains_key(&self, key: VoxelKey) -> bool {
        self.keys.contains(&key)
    }

    /// The axis-aligned box of one exported voxel key.
    pub fn key_box(&self, key: VoxelKey) -> Aabb {
        Aabb::from_center_half_extents(
            key.center(self.voxel_size),
            Vec3::splat(self.voxel_size * 0.5),
        )
    }

    /// The key-level difference `self − previous`, or `None` when the two
    /// exports use different voxel sizes (a precision-knob change re-keys
    /// the whole map, so consumers must rebuild rather than patch).
    ///
    /// Successive exports along a mission share most of their voxels — the
    /// MAV only uncovers (and forgets) map content near the frontier — so
    /// the delta is usually a handful of keys even when the export holds
    /// thousands of boxes.
    pub fn delta_from(&self, previous: &PlannerMap) -> Option<PlannerMapDelta> {
        if self.voxel_size != previous.voxel_size {
            return None;
        }
        let added = self
            .keys
            .iter()
            .filter(|k| !previous.keys.contains(k))
            .copied()
            .collect();
        let removed = previous
            .keys
            .iter()
            .filter(|k| !self.keys.contains(k))
            .copied()
            .collect();
        Some(PlannerMapDelta {
            voxel_size: self.voxel_size,
            added,
            removed,
        })
    }

    /// Linear-scan reference for [`PlannerMap::distance_to_nearest`] —
    /// retained for the equivalence proptests and benches.
    pub fn distance_to_nearest_linear(&self, p: Vec3) -> Option<f64> {
        self.boxes
            .iter()
            .map(|b| b.distance_to_point(p))
            .min_by(|a, b| a.partial_cmp(b).expect("distances are never NaN"))
    }

    /// Bounds enclosing every exported box, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        let mut iter = self.boxes.iter();
        let first = *iter.next()?;
        Some(iter.fold(first, |acc, b| Aabb::union(&acc, b)))
    }
}

/// The key-level difference between two [`PlannerMap`] exports at the same
/// voxel size (see [`PlannerMap::delta_from`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerMapDelta {
    voxel_size: f64,
    added: Vec<VoxelKey>,
    removed: Vec<VoxelKey>,
}

impl PlannerMapDelta {
    /// Voxel size both exports share (metres).
    pub fn voxel_size(&self) -> f64 {
        self.voxel_size
    }

    /// Keys present in the new export but not the previous one.
    pub fn added(&self) -> &[VoxelKey] {
        &self.added
    }

    /// Keys present in the previous export but not the new one.
    pub fn removed(&self) -> &[VoxelKey] {
        &self.removed
    }

    /// `true` when the two exports held identical key sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changed keys (added + removed).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointCloud;

    fn wall_map() -> OccupancyMap {
        let mut map = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-10..=10)
            .flat_map(|y| {
                (0..6).map(move |z| Vec3::new(12.0, y as f64 * 0.3, 4.0 + z as f64 * 0.3))
            })
            .collect();
        map.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        map
    }

    #[test]
    fn export_preserves_obstacles_at_native_precision() {
        let map = wall_map();
        let cfg = ExportConfig::new(0.3, 1e9, Vec3::new(0.0, 0.0, 5.0));
        let pm = PlannerMap::export(&map, &cfg);
        assert!(!pm.is_empty());
        assert_eq!(pm.voxel_size(), 0.3);
        assert!(pm.is_occupied(Vec3::new(12.0, 0.0, 5.0), 0.1));
        assert!(!pm.is_occupied(Vec3::new(3.0, 0.0, 5.0), 0.1));
        assert_eq!(pm.len(), map.stats().occupied);
    }

    #[test]
    fn coarser_export_has_fewer_bigger_boxes() {
        let map = wall_map();
        let reference = Vec3::new(0.0, 0.0, 5.0);
        let fine = PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, reference));
        let coarse = PlannerMap::export(&map, &ExportConfig::new(2.4, 1e9, reference));
        assert!(coarse.len() < fine.len());
        assert!(coarse.voxel_size() > fine.voxel_size());
        // Obstacles are still represented (conservatively inflated).
        assert!(coarse.is_occupied(Vec3::new(12.0, 0.0, 5.0), 0.1));
        // Coarse voxel size snapped to a power-of-two multiple of 0.3.
        let ratio = coarse.voxel_size() / 0.3;
        assert!((ratio - ratio.round()).abs() < 1e-9);
        assert!((ratio.round() as u64).is_power_of_two());
    }

    #[test]
    fn requested_precision_never_exceeded() {
        let map = wall_map();
        let reference = Vec3::ZERO;
        // 1.0 m is not a power-of-two multiple of 0.3; snap down to 0.6.
        let pm = PlannerMap::export(&map, &ExportConfig::new(1.0, 1e9, reference));
        assert!((pm.voxel_size() - 0.6).abs() < 1e-9);
        // Precision finer than the map resolution clamps to the resolution.
        let pm2 = PlannerMap::export(&map, &ExportConfig::new(0.05, 1e9, reference));
        assert!((pm2.voxel_size() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn volume_budget_limits_export_and_prefers_near_voxels() {
        let mut map = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        // Two walls: one near (x = 6), one far (x = 30).
        let mut points = Vec::new();
        for y in -5..=5 {
            points.push(Vec3::new(6.0, y as f64 * 0.3, 5.0));
            points.push(Vec3::new(30.0, y as f64 * 0.3, 5.0));
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        let full = PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, origin));
        let voxel_volume = 0.3f64.powi(3);
        let budget = full.occupied_volume() * 0.4; // less than half the voxels
        let limited = PlannerMap::export(&map, &ExportConfig::new(0.3, budget, origin));
        assert!(limited.len() < full.len());
        assert!(limited.occupied_volume() <= budget + voxel_volume + 1e-9);
        // The near wall survives; the far wall is dropped first.
        assert!(limited.is_occupied(Vec3::new(6.0, 0.0, 5.0), 0.2));
        assert!(!limited.is_occupied(Vec3::new(30.0, 0.0, 5.0), 0.2));
    }

    #[test]
    fn zero_budget_exports_nothing() {
        let map = wall_map();
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.3, 0.0, Vec3::ZERO));
        assert!(pm.is_empty());
        assert_eq!(pm.occupied_volume(), 0.0);
        assert!(pm.distance_to_nearest(Vec3::ZERO).is_none());
        assert!(pm.bounds().is_none());
    }

    #[test]
    fn tiny_budget_still_exports_nearest_obstacle() {
        let map = wall_map();
        let pm = PlannerMap::export(
            &map,
            &ExportConfig::new(0.3, 1e-6, Vec3::new(0.0, 0.0, 5.0)),
        );
        assert_eq!(pm.len(), 1);
    }

    #[test]
    fn empty_map_exports_empty() {
        let map = OccupancyMap::new(0.3);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.6, 1e6, Vec3::ZERO));
        assert!(pm.is_empty());
        assert_eq!(PlannerMap::empty(0.5).len(), 0);
    }

    #[test]
    fn distance_and_bounds_queries() {
        let map = wall_map();
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, Vec3::new(0.0, 0.0, 5.0)));
        let d = pm.distance_to_nearest(Vec3::new(0.0, 0.0, 5.0)).unwrap();
        assert!(d > 10.0 && d < 12.5, "distance {d}");
        let bounds = pm.bounds().unwrap();
        for b in pm.boxes() {
            assert!(bounds.contains_aabb(b));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn export_config_rejects_zero_precision() {
        let _ = ExportConfig::new(0.0, 10.0, Vec3::ZERO);
    }
}
