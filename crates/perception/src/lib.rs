//! Perception substrate: point clouds and the occupancy map, with RoboRun's
//! precision and volume operators.
//!
//! The paper's perception stage runs two kernels:
//!
//! * **Point cloud** — converts camera pixels to 3-D points. Its precision
//!   operator "controls the sampling distance between points: we grid the
//!   space into cells, map the points onto the cells using their
//!   coordinates, and then reduce each cell to a single average point". Its
//!   volume operator sorts points by distance to the MAV's trajectory and
//!   integrates them "one by one until their resulting volume exceeds the
//!   desired threshold".
//! * **OctoMap** — accumulates point clouds into a 3-D occupancy map
//!   "encoded in a tree data structure where each leaf is a voxel". Its
//!   precision operator controls the step size of the raytracer; the
//!   perception-to-planning operators sub-sample/prune the tree and limit
//!   the volume communicated to the planner, sorted by proximity to the MAV.
//!
//! This crate implements both kernels and all of those operators from
//! scratch (the reproduction does not link OctoMap); see
//! [`PointCloud`], [`OccupancyMap`] and [`PlannerMap`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod occupancy;
pub mod point_cloud;

pub use export::{ExportConfig, PlannerMap, PlannerMapDelta};
pub use occupancy::{MapStats, OccupancyMap, VoxelState};
pub use point_cloud::PointCloud;
