//! Point clouds and the point-cloud precision/volume operators.

use roborun_geom::{Aabb, Vec3, VoxelKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A point cloud in the world frame, as produced by the camera rig.
///
/// # Example
///
/// ```
/// use roborun_perception::PointCloud;
/// use roborun_geom::Vec3;
///
/// let cloud = PointCloud::new(Vec3::ZERO, vec![
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(1.05, 0.02, 0.0),
///     Vec3::new(5.0, 0.0, 0.0),
/// ]);
/// // Coarsening to 0.5 m merges the two nearby points.
/// let coarse = cloud.downsampled(0.5);
/// assert_eq!(coarse.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    /// Sensor origin the cloud was captured from (used for ray tracing
    /// free space into the occupancy map).
    origin: Vec3,
    points: Vec<Vec3>,
}

impl PointCloud {
    /// Creates a cloud from a sensor origin and points.
    pub fn new(origin: Vec3, points: Vec<Vec3>) -> Self {
        PointCloud { origin, points }
    }

    /// An empty cloud captured from `origin`.
    pub fn empty(origin: Vec3) -> Self {
        PointCloud {
            origin,
            points: Vec::new(),
        }
    }

    /// Sensor origin.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// The points of the cloud.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Axis-aligned bounds of the points, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.points.iter().copied())
    }

    /// **Precision operator** (paper Section III-B, point-cloud precision):
    /// grids space into cells of `cell_size` metres, maps every point to its
    /// cell and replaces each cell's points by their average.
    ///
    /// Larger `cell_size` (coarser precision) yields fewer points and a
    /// cheaper downstream map update.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0`.
    pub fn downsampled(&self, cell_size: f64) -> PointCloud {
        assert!(
            cell_size > 0.0,
            "cell size must be positive, got {cell_size}"
        );
        let mut cells: HashMap<VoxelKey, (Vec3, usize)> = HashMap::new();
        for &p in &self.points {
            let key = VoxelKey::from_point(p, cell_size);
            let entry = cells.entry(key).or_insert((Vec3::ZERO, 0));
            entry.0 += p;
            entry.1 += 1;
        }
        let mut points: Vec<Vec3> = cells.into_values().map(|(sum, n)| sum / n as f64).collect();
        // Deterministic ordering regardless of hash-map iteration order.
        points.sort_by(|a, b| {
            (a.x, a.y, a.z)
                .partial_cmp(&(b.x, b.y, b.z))
                .expect("point coordinates are never NaN")
        });
        PointCloud {
            origin: self.origin,
            points,
        }
    }

    /// **Volume operator** (paper Section III-B, first volume operator):
    /// sorts the points by distance to `reference` (the MAV's position /
    /// imminent trajectory — "closer points pose more threats") and keeps
    /// integrating them one by one until the axis-aligned volume of the
    /// accepted set would exceed `max_volume` cubic metres.
    ///
    /// # Panics
    ///
    /// Panics if `max_volume < 0`.
    pub fn volume_limited(&self, reference: Vec3, max_volume: f64) -> PointCloud {
        assert!(max_volume >= 0.0, "max volume must be non-negative");
        if self.points.is_empty() || max_volume == 0.0 {
            return PointCloud::empty(self.origin);
        }
        let mut sorted: Vec<Vec3> = self.points.clone();
        sorted.sort_by(|a, b| {
            a.distance_squared(reference)
                .partial_cmp(&b.distance_squared(reference))
                .expect("distances are never NaN")
        });
        let mut accepted: Vec<Vec3> = Vec::new();
        let mut bounds: Option<Aabb> = None;
        for p in sorted {
            let candidate = match bounds {
                None => Aabb::new(p, p),
                Some(b) => Aabb::union(&b, &Aabb::new(p, p)),
            };
            if candidate.volume() > max_volume && !accepted.is_empty() {
                break;
            }
            bounds = Some(candidate);
            accepted.push(p);
        }
        PointCloud {
            origin: self.origin,
            points: accepted,
        }
    }

    /// Merges another cloud into this one (keeps this cloud's origin).
    pub fn merge(&mut self, other: &PointCloud) {
        self.points.extend_from_slice(&other.points);
    }
}

impl Extend<Vec3> for PointCloud {
    fn extend<T: IntoIterator<Item = Vec3>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_line_cloud() -> PointCloud {
        // 100 points spaced 0.1 m apart along X at y=z=0.
        PointCloud::new(
            Vec3::ZERO,
            (0..100)
                .map(|i| Vec3::new(i as f64 * 0.1, 0.0, 0.0))
                .collect(),
        )
    }

    #[test]
    fn empty_cloud_behaviour() {
        let c = PointCloud::empty(Vec3::new(1.0, 2.0, 3.0));
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.origin(), Vec3::new(1.0, 2.0, 3.0));
        assert!(c.bounds().is_none());
        assert!(c.downsampled(0.5).is_empty());
        assert!(c.volume_limited(Vec3::ZERO, 100.0).is_empty());
    }

    #[test]
    fn downsampling_reduces_points_monotonically() {
        let cloud = dense_line_cloud();
        let fine = cloud.downsampled(0.1);
        let mid = cloud.downsampled(0.5);
        let coarse = cloud.downsampled(2.0);
        assert!(fine.len() >= mid.len());
        assert!(mid.len() > coarse.len());
        assert_eq!(coarse.len(), 5); // 10 m line / 2 m cells
                                     // Origin preserved.
        assert_eq!(coarse.origin(), cloud.origin());
    }

    #[test]
    fn downsampling_averages_cell_members() {
        let cloud = PointCloud::new(
            Vec3::ZERO,
            vec![Vec3::new(0.1, 0.1, 0.1), Vec3::new(0.3, 0.3, 0.3)],
        );
        let ds = cloud.downsampled(1.0);
        assert_eq!(ds.len(), 1);
        assert!((ds.points()[0] - Vec3::new(0.2, 0.2, 0.2)).norm() < 1e-12);
    }

    #[test]
    fn downsampling_is_deterministic() {
        let cloud = dense_line_cloud();
        assert_eq!(cloud.downsampled(0.7), cloud.downsampled(0.7));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _ = dense_line_cloud().downsampled(0.0);
    }

    #[test]
    fn volume_operator_prefers_near_points() {
        let cloud = PointCloud::new(
            Vec3::ZERO,
            vec![
                Vec3::new(50.0, 5.0, 5.0),
                Vec3::new(1.0, 0.5, 0.5),
                Vec3::new(2.0, 1.0, 1.0),
            ],
        );
        let limited = cloud.volume_limited(Vec3::ZERO, 10.0);
        // The far point would blow up the volume, so only near points stay.
        assert_eq!(limited.len(), 2);
        assert!(limited.points().iter().all(|p| p.x < 10.0));
    }

    #[test]
    fn volume_operator_keeps_everything_when_budget_is_large() {
        let cloud = dense_line_cloud();
        let limited = cloud.volume_limited(Vec3::ZERO, 1.0e9);
        assert_eq!(limited.len(), cloud.len());
    }

    #[test]
    fn volume_operator_zero_budget_empties_cloud() {
        let cloud = dense_line_cloud();
        assert!(cloud.volume_limited(Vec3::ZERO, 0.0).is_empty());
    }

    #[test]
    fn volume_operator_always_keeps_at_least_one_point() {
        // Even a tiny non-zero budget keeps the nearest point (a degenerate
        // single-point AABB has zero volume).
        let cloud = dense_line_cloud();
        let limited = cloud.volume_limited(Vec3::new(4.0, 0.0, 0.0), 1e-12);
        assert!(!limited.is_empty());
        // The kept point is the nearest one to the reference.
        assert!((limited.points()[0].x - 4.0).abs() < 0.11);
    }

    #[test]
    fn merge_and_extend() {
        let mut a = PointCloud::new(Vec3::ZERO, vec![Vec3::X]);
        let b = PointCloud::new(Vec3::Y, vec![Vec3::Y, Vec3::Z]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.origin(), Vec3::ZERO);
        a.extend([Vec3::splat(2.0)]);
        assert_eq!(a.len(), 4);
        let bounds = a.bounds().unwrap();
        assert!(bounds.contains(Vec3::splat(2.0)));
    }
}
