//! Occupancy map (the OctoMap substitute) with the raytracer precision
//! operator.
//!
//! The paper's OctoMap kernel "accumulates these point clouds into a 3D map
//! and encodes them in a tree data structure where each leaf is a voxel";
//! its precision operator "is enforced by controlling the step size of the
//! raytracer". Our substitute stores voxels in a hash map keyed by integer
//! voxel coordinates; the tree structure only matters to the paper for the
//! power-of-two pruning performed at export time, which
//! [`crate::PlannerMap`] reproduces by re-keying voxels at coarser
//! power-of-two resolutions.

use crate::PointCloud;
use roborun_geom::{
    cell_min_distance_squared, for_each_shell_key_in, Aabb, FxHashMap, FxHashSet, Ray, Vec3,
    VoxelKey,
};
use serde::{Deserialize, Serialize};

/// State of a known voxel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoxelState {
    /// The voxel contains an observed obstacle surface.
    Occupied,
    /// The voxel was traversed by at least one sensor ray without a hit.
    Free,
}

/// Summary statistics of an occupancy map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapStats {
    /// Number of occupied voxels.
    pub occupied: usize,
    /// Number of free voxels.
    pub free: usize,
    /// Voxel edge length (metres).
    pub resolution: f64,
    /// Total volume of known (occupied + free) space, cubic metres.
    pub known_volume: f64,
    /// Total volume of occupied space, cubic metres.
    pub occupied_volume: f64,
}

/// A uniform-resolution occupancy map built from point clouds.
///
/// # Example
///
/// ```
/// use roborun_perception::{OccupancyMap, PointCloud};
/// use roborun_geom::Vec3;
///
/// let mut map = OccupancyMap::new(0.5);
/// let cloud = PointCloud::new(Vec3::ZERO, vec![Vec3::new(3.0, 0.0, 0.0)]);
/// map.integrate_cloud(&cloud, 0.5);
/// assert!(map.is_occupied(Vec3::new(3.0, 0.0, 0.0)));
/// assert!(!map.is_occupied(Vec3::new(1.0, 0.0, 0.0))); // carved free
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OccupancyMap {
    resolution: f64,
    voxels: FxHashMap<VoxelKey, VoxelState>,
    /// The occupied subset of `voxels`' keys, kept in sync so nearest-
    /// obstacle searches never iterate the (far more numerous) free voxels.
    occupied: FxHashSet<VoxelKey>,
    /// Key-space bounds of `occupied` (valid when non-empty); they let the
    /// ring search skip shells that cannot contain an occupied voxel.
    occupied_min: VoxelKey,
    occupied_max: VoxelKey,
}

impl OccupancyMap {
    /// Creates an empty map with the given voxel size (metres).
    ///
    /// # Panics
    ///
    /// Panics if `resolution <= 0`.
    pub fn new(resolution: f64) -> Self {
        assert!(
            resolution > 0.0,
            "map resolution must be positive, got {resolution}"
        );
        OccupancyMap {
            resolution,
            voxels: FxHashMap::default(),
            occupied: FxHashSet::default(),
            occupied_min: VoxelKey { x: 0, y: 0, z: 0 },
            occupied_max: VoxelKey { x: 0, y: 0, z: 0 },
        }
    }

    /// Extends the occupied key bounds to cover `key`.
    fn grow_occupied_bounds(&mut self, key: VoxelKey) {
        if self.occupied.is_empty() {
            self.occupied_min = key;
            self.occupied_max = key;
        } else {
            self.occupied_min = VoxelKey {
                x: self.occupied_min.x.min(key.x),
                y: self.occupied_min.y.min(key.y),
                z: self.occupied_min.z.min(key.z),
            };
            self.occupied_max = VoxelKey {
                x: self.occupied_max.x.max(key.x),
                y: self.occupied_max.y.max(key.y),
                z: self.occupied_max.z.max(key.z),
            };
        }
    }

    /// Voxel edge length (metres).
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Number of known voxels (occupied + free).
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Integrates a point cloud: every point marks its voxel occupied and
    /// the ray from the cloud origin to the point carves free space.
    ///
    /// `raytrace_step` is the **OctoMap precision operator**: the distance
    /// between free-space samples along each ray. A coarser step visits
    /// fewer voxels (cheaper, as the paper's Eq. 4 models) at the cost of
    /// possibly missing thin free corridors. Returns the number of voxel
    /// updates performed (a direct measure of the work done).
    ///
    /// # Panics
    ///
    /// Panics if `raytrace_step <= 0`.
    pub fn integrate_cloud(&mut self, cloud: &PointCloud, raytrace_step: f64) -> usize {
        assert!(raytrace_step > 0.0, "raytrace step must be positive");
        let origin = cloud.origin();
        let mut updates = 0usize;
        for &point in cloud.points() {
            let distance = origin.distance(point);
            if distance > 1e-9 {
                let ray = Ray::new(origin, point - origin);
                // Carve free space up to (but not including) the hit voxel.
                let mut t = 0.0;
                while t < distance - self.resolution {
                    let key = VoxelKey::from_point(ray.at(t), self.resolution);
                    // Never downgrade an occupied voxel to free: occupied
                    // observations win, as in OctoMap's clamping policy.
                    let entry = self.voxels.entry(key).or_insert(VoxelState::Free);
                    if *entry != VoxelState::Occupied {
                        *entry = VoxelState::Free;
                    }
                    updates += 1;
                    t += raytrace_step;
                }
            }
            let key = VoxelKey::from_point(point, self.resolution);
            self.voxels.insert(key, VoxelState::Occupied);
            self.grow_occupied_bounds(key);
            self.occupied.insert(key);
            updates += 1;
        }
        updates
    }

    /// State of the voxel containing `p`, or `None` when unknown.
    pub fn state_at(&self, p: Vec3) -> Option<VoxelState> {
        self.voxels
            .get(&VoxelKey::from_point(p, self.resolution))
            .copied()
    }

    /// `true` when the voxel containing `p` is known occupied.
    pub fn is_occupied(&self, p: Vec3) -> bool {
        self.state_at(p) == Some(VoxelState::Occupied)
    }

    /// `true` when the voxel containing `p` has never been observed.
    pub fn is_unknown(&self, p: Vec3) -> bool {
        self.state_at(p).is_none()
    }

    /// Iterates over occupied voxels as `(key, bounds)` pairs.
    pub fn occupied_voxels(&self) -> impl Iterator<Item = (VoxelKey, Aabb)> + '_ {
        let res = self.resolution;
        self.voxels
            .iter()
            .filter(|(_, s)| **s == VoxelState::Occupied)
            .map(move |(k, _)| {
                (
                    *k,
                    Aabb::from_center_half_extents(k.center(res), Vec3::splat(res * 0.5)),
                )
            })
    }

    /// Distance from `p` to the centre of the nearest occupied voxel within
    /// `max_radius`, or `None` when there is none. This is the map-derived
    /// `d_obs` the profilers feed to the governor (as opposed to the
    /// ground-truth distance the simulator knows).
    ///
    /// Searches voxel keys in expanding Chebyshev rings around `p` — the
    /// common case (an obstacle a few voxels away) costs a handful of hash
    /// probes instead of a scan of the whole map. When the rings would
    /// visit more cells than the map holds (sparse maps, large radii), the
    /// search falls back to the retained linear reference, whose result is
    /// identical.
    pub fn nearest_occupied_distance(&self, p: Vec3, max_radius: f64) -> Option<f64> {
        if self.occupied.is_empty() || max_radius < 0.0 {
            return None;
        }
        let center = VoxelKey::from_point(p, self.resolution);
        // An occupied voxel centre within `max_radius` lies within this
        // many rings of the centre cell.
        let max_ring = (max_radius / self.resolution).ceil() as i64 + 1;
        // Rings closer than the occupied key bounds are empty — skip them.
        let sx = (self.occupied_min.x - center.x).max(center.x - self.occupied_max.x);
        let sy = (self.occupied_min.y - center.y).max(center.y - self.occupied_max.y);
        let sz = (self.occupied_min.z - center.z).max(center.z - self.occupied_max.z);
        let start_ring = sx.max(sy).max(sz).max(0);
        let mut best: Option<f64> = None;
        let mut visited = 0usize;
        for ring in start_ring..=max_ring {
            let ring_min = (ring as f64 - 1.0).max(0.0) * self.resolution;
            if ring_min > best.unwrap_or(max_radius) {
                break;
            }
            if visited > 2 * self.occupied.len() {
                // The rings have cost more than a scan of the occupied set:
                // finish with a direct scan (same minimum, same result).
                let mut best = best;
                for key in &self.occupied {
                    let d = key.center(self.resolution).distance(p);
                    if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                        best = Some(d);
                    }
                }
                return best;
            }
            for_each_shell_key_in(center, ring, self.occupied_min, self.occupied_max, |key| {
                visited += 1;
                // Cell-level lower bound (distance to the cell box never
                // exceeds the distance to its centre): skip cells that
                // cannot hold a closer occupied voxel.
                let cutoff = best.unwrap_or(max_radius);
                if cell_min_distance_squared(key, self.resolution, p) > cutoff * cutoff {
                    return;
                }
                if self.occupied.contains(&key) {
                    let d = key.center(self.resolution).distance(p);
                    if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                        best = Some(d);
                    }
                }
            });
        }
        best
    }

    /// Linear-scan reference for [`OccupancyMap::nearest_occupied_distance`]
    /// — retained for the equivalence proptests and benches.
    pub fn nearest_occupied_distance_linear(&self, p: Vec3, max_radius: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (key, state) in &self.voxels {
            if *state != VoxelState::Occupied {
                continue;
            }
            let d = key.center(self.resolution).distance(p);
            if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                best = Some(d);
            }
        }
        best
    }

    /// Distance from `p` along `direction` to the first *unknown* voxel,
    /// sampled every `step` metres up to `max_range`. Unknown space ahead
    /// shortens the distance the MAV can trust, which the profilers fold
    /// into the visibility estimate ("closest unknown" in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `max_range < 0`.
    pub fn distance_to_unknown(&self, p: Vec3, direction: Vec3, max_range: f64, step: f64) -> f64 {
        assert!(step > 0.0, "step must be positive");
        assert!(max_range >= 0.0, "max range must be non-negative");
        let Some(dir) = direction.try_normalize() else {
            return max_range;
        };
        let ray = Ray::new(p, dir);
        let mut t = 0.0;
        while t <= max_range {
            if self.is_unknown(ray.at(t)) {
                return t;
            }
            t += step;
        }
        max_range
    }

    /// Summary statistics.
    pub fn stats(&self) -> MapStats {
        let occupied = self
            .voxels
            .values()
            .filter(|s| **s == VoxelState::Occupied)
            .count();
        let free = self.voxels.len() - occupied;
        let voxel_volume = self.resolution.powi(3);
        MapStats {
            occupied,
            free,
            resolution: self.resolution,
            known_volume: self.voxels.len() as f64 * voxel_volume,
            occupied_volume: occupied as f64 * voxel_volume,
        }
    }

    /// Known (observed) volume in cubic metres — the profiler's "map
    /// volume" variable (Table I).
    pub fn known_volume(&self) -> f64 {
        self.voxels.len() as f64 * self.resolution.powi(3)
    }

    /// Drops every voxel whose centre lies farther than `radius` from
    /// `center` — a memory bound for long missions (the map only needs to
    /// cover the MAV's local neighbourhood for navigation).
    pub fn retain_within(&mut self, center: Vec3, radius: f64) {
        let res = self.resolution;
        self.voxels
            .retain(|k, _| k.center(res).distance(center) <= radius);
        self.occupied
            .retain(|k| k.center(res).distance(center) <= radius);
        // Recompute the occupied bounds from the surviving keys.
        let mut iter = self.occupied.iter();
        if let Some(first) = iter.next() {
            let (mut lo, mut hi) = (*first, *first);
            for k in iter {
                lo = VoxelKey {
                    x: lo.x.min(k.x),
                    y: lo.y.min(k.y),
                    z: lo.z.min(k.z),
                };
                hi = VoxelKey {
                    x: hi.x.max(k.x),
                    y: hi.y.max(k.y),
                    z: hi.z.max(k.z),
                };
            }
            self.occupied_min = lo;
            self.occupied_max = hi;
        } else {
            self.occupied_min = VoxelKey { x: 0, y: 0, z: 0 };
            self.occupied_max = VoxelKey { x: 0, y: 0, z: 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_with_wall(origin: Vec3, wall_x: f64) -> PointCloud {
        // A vertical line of points at x = wall_x spread in y.
        PointCloud::new(
            origin,
            (-5..=5)
                .map(|i| Vec3::new(wall_x, i as f64 * 0.5, origin.z))
                .collect(),
        )
    }

    #[test]
    fn new_map_is_empty() {
        let map = OccupancyMap::new(0.5);
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.resolution(), 0.5);
        assert!(map.is_unknown(Vec3::ZERO));
        assert!(!map.is_occupied(Vec3::ZERO));
        assert_eq!(map.known_volume(), 0.0);
        assert!(map.nearest_occupied_distance(Vec3::ZERO, 100.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = OccupancyMap::new(0.0);
    }

    #[test]
    fn integration_marks_hits_occupied_and_path_free() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let updates = map.integrate_cloud(&cloud_with_wall(origin, 8.0), 0.5);
        assert!(updates > 0);
        assert!(map.is_occupied(Vec3::new(8.0, 0.0, 5.0)));
        assert_eq!(
            map.state_at(Vec3::new(4.0, 0.0, 5.0)),
            Some(VoxelState::Free)
        );
        // Behind the wall is unknown.
        assert!(map.is_unknown(Vec3::new(12.0, 0.0, 5.0)));
        let stats = map.stats();
        assert!(stats.occupied > 0);
        assert!(stats.free > stats.occupied);
        assert!((stats.known_volume - map.known_volume()).abs() < 1e-9);
        assert!(stats.occupied_volume < stats.known_volume);
    }

    #[test]
    fn occupied_never_downgraded_to_free() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        // First scan sees an obstacle at x=4.
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(4.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(map.is_occupied(Vec3::new(4.0, 0.0, 5.0)));
        // Second scan's ray passes through the same voxel to a farther hit.
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(
            map.is_occupied(Vec3::new(4.0, 0.0, 5.0)),
            "occupied voxel was erased"
        );
        assert!(map.is_occupied(Vec3::new(9.0, 0.0, 5.0)));
    }

    #[test]
    fn coarser_raytrace_step_does_less_work() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = cloud_with_wall(origin, 20.0);
        let mut fine = OccupancyMap::new(0.5);
        let mut coarse = OccupancyMap::new(0.5);
        let fine_updates = fine.integrate_cloud(&cloud, 0.25);
        let coarse_updates = coarse.integrate_cloud(&cloud, 2.0);
        assert!(
            fine_updates > 2 * coarse_updates,
            "fine {fine_updates} coarse {coarse_updates}"
        );
        // Both agree on the occupied wall.
        assert!(fine.is_occupied(Vec3::new(20.0, 0.0, 5.0)));
        assert!(coarse.is_occupied(Vec3::new(20.0, 0.0, 5.0)));
    }

    #[test]
    fn coarser_resolution_uses_fewer_voxels() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = cloud_with_wall(origin, 10.0);
        let mut fine = OccupancyMap::new(0.3);
        let mut coarse = OccupancyMap::new(2.4);
        fine.integrate_cloud(&cloud, 0.3);
        coarse.integrate_cloud(&cloud, 0.3);
        assert!(fine.len() > coarse.len());
        let fine_occ = fine.stats().occupied;
        let coarse_occ = coarse.stats().occupied;
        assert!(fine_occ >= coarse_occ);
    }

    #[test]
    fn nearest_occupied_distance_matches_geometry() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(6.0, 0.0, 5.0)]),
            0.5,
        );
        let d = map
            .nearest_occupied_distance(Vec3::new(0.0, 0.0, 5.0), 100.0)
            .unwrap();
        assert!((d - 6.0).abs() < 1.0, "distance {d}");
        assert!(map
            .nearest_occupied_distance(Vec3::new(0.0, 0.0, 5.0), 2.0)
            .is_none());
    }

    #[test]
    fn distance_to_unknown_detects_frontier() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(10.0, 0.0, 5.0)]),
            0.25,
        );
        // Looking along the observed corridor, unknown space starts near the
        // wall (the wall voxel is known-occupied, behind it is unknown).
        let d = map.distance_to_unknown(origin, Vec3::X, 40.0, 0.25);
        assert!(d > 8.0 && d <= 12.0, "frontier at {d}");
        // Looking sideways where nothing was observed, unknown starts almost
        // immediately (just outside the origin's free voxel).
        let d_side = map.distance_to_unknown(origin, Vec3::Y, 40.0, 0.25);
        assert!(d_side < 2.0);
        // Degenerate direction returns the full range.
        assert_eq!(
            map.distance_to_unknown(origin, Vec3::ZERO, 40.0, 0.25),
            40.0
        );
    }

    #[test]
    fn occupied_voxel_iteration_and_retain() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(&cloud_with_wall(origin, 8.0), 0.5);
        let occupied: Vec<_> = map.occupied_voxels().collect();
        assert_eq!(occupied.len(), map.stats().occupied);
        for (_, bounds) in &occupied {
            assert!((bounds.size().x - 0.5).abs() < 1e-12);
        }
        // Retaining a small bubble around the origin drops the far wall.
        map.retain_within(origin, 3.0);
        assert!(map.stats().occupied == 0);
        assert!(!map.is_empty(), "nearby free voxels should remain");
    }
}
