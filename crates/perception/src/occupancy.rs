//! Occupancy map (the OctoMap substitute) with the raytracer precision
//! operator.
//!
//! The paper's OctoMap kernel "accumulates these point clouds into a 3D map
//! and encodes them in a tree data structure where each leaf is a voxel";
//! its precision operator "is enforced by controlling the step size of the
//! raytracer". Our substitute stores voxels in a hash map keyed by integer
//! voxel coordinates; the tree structure only matters to the paper for the
//! power-of-two pruning performed at export time, which
//! [`crate::PlannerMap`] reproduces by re-keying voxels at coarser
//! power-of-two resolutions.

use crate::PointCloud;
use roborun_geom::{
    Aabb, FxHashMap, FxHashSet, Ray, RingSearch, RingSearchOutcome, Vec3, VoxelKey,
};
use serde::{Deserialize, Serialize};

/// `true` when two voxel keys are equal or differ by one grid step along
/// exactly one axis — the only transitions between consecutive run heads
/// for which the batched carve's two-key argument holds (see
/// [`OccupancyMap::carve_free_batched`]).
fn unit_step_apart(a: VoxelKey, b: VoxelKey) -> bool {
    a.manhattan_distance(&b) <= 1
}

/// State of a known voxel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VoxelState {
    /// The voxel contains an observed obstacle surface.
    Occupied,
    /// The voxel was traversed by at least one sensor ray without a hit.
    Free,
}

/// Summary statistics of an occupancy map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapStats {
    /// Number of occupied voxels.
    pub occupied: usize,
    /// Number of free voxels.
    pub free: usize,
    /// Voxel edge length (metres).
    pub resolution: f64,
    /// Total volume of known (occupied + free) space, cubic metres.
    pub known_volume: f64,
    /// Total volume of occupied space, cubic metres.
    pub occupied_volume: f64,
}

/// A uniform-resolution occupancy map built from point clouds.
///
/// # Example
///
/// ```
/// use roborun_perception::{OccupancyMap, PointCloud};
/// use roborun_geom::Vec3;
///
/// let mut map = OccupancyMap::new(0.5);
/// let cloud = PointCloud::new(Vec3::ZERO, vec![Vec3::new(3.0, 0.0, 0.0)]);
/// map.integrate_cloud(&cloud, 0.5);
/// assert!(map.is_occupied(Vec3::new(3.0, 0.0, 0.0)));
/// assert!(!map.is_occupied(Vec3::new(1.0, 0.0, 0.0))); // carved free
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyMap {
    resolution: f64,
    voxels: FxHashMap<VoxelKey, VoxelState>,
    /// The occupied subset of `voxels`' keys, kept in sync so nearest-
    /// obstacle searches never iterate the (far more numerous) free voxels.
    /// Derivable from `voxels`, so excluded from serialized forms and
    /// rebuilt on load (see [`OccupancyMap::rebuild_spatial_caches`]).
    #[serde(skip)]
    occupied: FxHashSet<VoxelKey>,
    /// Key-space bounds of `occupied` (valid when non-empty); they let the
    /// ring search skip shells that cannot contain an occupied voxel.
    /// Derivable like `occupied` and skipped with it. Decay can leave them
    /// conservatively large, which only costs ring pruning efficiency,
    /// never correctness.
    #[serde(skip)]
    occupied_min: VoxelKey,
    #[serde(skip)]
    occupied_max: VoxelKey,
    /// Stale-occupied decay window in epochs, or `None` (the default) for
    /// the classic accrete-only behaviour. Runtime configuration, not
    /// map content: excluded from serialized forms and comparisons reset
    /// it alongside the other skipped fields.
    #[serde(skip)]
    decay_after: Option<u64>,
    /// Epoch stamp applied to occupied observations while decay is
    /// enabled (set by [`OccupancyMap::set_epoch`]).
    #[serde(skip)]
    current_epoch: u64,
    /// Epoch each occupied voxel was last observed occupied at — only
    /// maintained while decay is enabled.
    #[serde(skip)]
    last_occupied_epoch: FxHashMap<VoxelKey, u64>,
}

impl OccupancyMap {
    /// Creates an empty map with the given voxel size (metres).
    ///
    /// # Panics
    ///
    /// Panics if `resolution <= 0`.
    pub fn new(resolution: f64) -> Self {
        assert!(
            resolution > 0.0,
            "map resolution must be positive, got {resolution}"
        );
        OccupancyMap {
            resolution,
            voxels: FxHashMap::default(),
            occupied: FxHashSet::default(),
            occupied_min: VoxelKey { x: 0, y: 0, z: 0 },
            occupied_max: VoxelKey { x: 0, y: 0, z: 0 },
            decay_after: None,
            current_epoch: 0,
            last_occupied_epoch: FxHashMap::default(),
        }
    }

    /// Enables (or disables, with `None`) stale-occupied decay.
    ///
    /// With decay set to `Some(n)`, a free-space carve through an
    /// occupied voxel **downgrades it to free** when the voxel's last
    /// occupied observation is more than `n` epochs older than the
    /// current epoch (see [`OccupancyMap::set_epoch`]) — the mechanism
    /// that lets cells vacated by moving obstacles actually free up.
    /// Fresh occupied observations still win, exactly as in OctoMap's
    /// clamping policy: only *stale* occupancy yields to contradicting
    /// free evidence. With decay `None` (the default) the map keeps the
    /// classic accrete-only behaviour bit for bit.
    ///
    /// Decay state is runtime configuration (`#[serde(skip)]`): a
    /// deserialized map starts with decay disabled.
    pub fn set_stale_decay(&mut self, epochs: Option<u64>) {
        self.decay_after = epochs;
        if epochs.is_none() {
            self.last_occupied_epoch = FxHashMap::default();
        }
    }

    /// The stale-occupied decay window, if enabled.
    pub fn stale_decay(&self) -> Option<u64> {
        self.decay_after
    }

    /// Sets the epoch stamped onto occupied observations and compared
    /// against by the decay rule. Epochs are the caller's decision
    /// counter; the map only ever compares differences.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.current_epoch = epoch;
    }

    /// The current epoch (see [`OccupancyMap::set_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Extends the occupied key bounds to cover `key`.
    fn grow_occupied_bounds(&mut self, key: VoxelKey) {
        if self.occupied.is_empty() {
            self.occupied_min = key;
            self.occupied_max = key;
        } else {
            self.occupied_min = self.occupied_min.componentwise_min(key);
            self.occupied_max = self.occupied_max.componentwise_max(key);
        }
    }

    /// Voxel edge length (metres).
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Number of known voxels (occupied + free).
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }

    /// Integrates a point cloud: every point marks its voxel occupied and
    /// the ray from the cloud origin to the point carves free space.
    ///
    /// `raytrace_step` is the **OctoMap precision operator**: the distance
    /// between free-space samples along each ray. A coarser step visits
    /// fewer voxels (cheaper, as the paper's Eq. 4 models) at the cost of
    /// possibly missing thin free corridors. Returns the number of voxel
    /// updates performed (a direct measure of the work done).
    ///
    /// # Panics
    ///
    /// Panics if `raytrace_step <= 0`.
    pub fn integrate_cloud(&mut self, cloud: &PointCloud, raytrace_step: f64) -> usize {
        assert!(raytrace_step > 0.0, "raytrace step must be positive");
        let origin = cloud.origin();
        // Batching pays off when several samples share a voxel — measured,
        // the crossover sits above two samples per voxel; below that the
        // per-sample loop is already optimal, so use it directly.
        let batch = raytrace_step * 2.0 < self.resolution;
        let mut updates = 0usize;
        for &point in cloud.points() {
            let distance = origin.distance(point);
            if distance > 1e-9 {
                let ray = Ray::new(origin, point - origin);
                // Carve free space up to (but not including) the hit voxel.
                let limit = distance - self.resolution;
                updates += if batch {
                    self.carve_free_batched(&ray, limit, raytrace_step)
                } else {
                    self.carve_free_per_sample(&ray, limit, raytrace_step)
                };
            }
            self.mark_occupied(VoxelKey::from_point(point, self.resolution));
            updates += 1;
        }
        updates
    }

    /// Reference implementation of [`OccupancyMap::integrate_cloud`]: every
    /// ray sample is keyed and hashed independently
    /// (`OccupancyMap::carve_free_per_sample`, unconditionally). Retained
    /// for the exact-equivalence proptests and the kernel-scaling benches;
    /// the production path batches samples per traversed voxel when the
    /// step is finer than a voxel.
    ///
    /// # Panics
    ///
    /// Panics if `raytrace_step <= 0`.
    pub fn integrate_cloud_reference(&mut self, cloud: &PointCloud, raytrace_step: f64) -> usize {
        assert!(raytrace_step > 0.0, "raytrace step must be positive");
        let origin = cloud.origin();
        let mut updates = 0usize;
        for &point in cloud.points() {
            let distance = origin.distance(point);
            if distance > 1e-9 {
                let ray = Ray::new(origin, point - origin);
                updates +=
                    self.carve_free_per_sample(&ray, distance - self.resolution, raytrace_step);
            }
            self.mark_occupied(VoxelKey::from_point(point, self.resolution));
            updates += 1;
        }
        updates
    }

    /// Marks one voxel as observed free. Never downgrades a *fresh*
    /// occupied voxel: occupied observations win, as in OctoMap's
    /// clamping policy. With stale-occupied decay enabled
    /// ([`OccupancyMap::set_stale_decay`]) **and** `decay_eligible`
    /// evidence, an occupied voxel whose last occupied observation has
    /// gone stale yields to the contradicting free ray — it demonstrably
    /// passed through the cell, so whatever occupied it has moved on.
    ///
    /// `decay_eligible` is `false` for samples near the end of a carve
    /// (the occlusion boundary): a ray grazing the corner of a partially
    /// filled voxel right before its hit point is *not* evidence the
    /// voxel is empty — treating it as such erodes real static surfaces
    /// cell by cell. Only samples the ray clears by a comfortable margin
    /// may decay (see [`OccupancyMap::integrate_cloud`]).
    #[inline]
    fn mark_free(&mut self, key: VoxelKey, decay_eligible: bool) {
        use std::collections::hash_map::Entry;
        match self.voxels.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert(VoxelState::Free);
            }
            Entry::Occupied(mut slot) => {
                if *slot.get() != VoxelState::Occupied || !decay_eligible {
                    return;
                }
                let Some(max_age) = self.decay_after else {
                    return;
                };
                let stale = self
                    .last_occupied_epoch
                    .get(&key)
                    // Occupied before decay was enabled ⇒ age unknown ⇒
                    // treat as stale (the conservative direction for a
                    // cell a ray just saw through).
                    .is_none_or(|&seen| self.current_epoch.saturating_sub(seen) > max_age);
                if stale {
                    slot.insert(VoxelState::Free);
                    self.occupied.remove(&key);
                    self.last_occupied_epoch.remove(&key);
                    // The occupied bounds stay conservatively large; the
                    // ring searches only use them as an outer cover.
                }
            }
        }
    }

    /// Stamps one voxel occupied, maintaining the occupied caches and —
    /// while decay is enabled — the last-observed epoch.
    #[inline]
    fn mark_occupied(&mut self, key: VoxelKey) {
        self.voxels.insert(key, VoxelState::Occupied);
        self.grow_occupied_bounds(key);
        self.occupied.insert(key);
        if self.decay_after.is_some() {
            self.last_occupied_epoch.insert(key, self.current_epoch);
        }
    }

    /// Largest sample parameter still *decay-eligible* on a carve to
    /// `limit`: samples within two voxels of the carve end sit at the
    /// occlusion boundary (the ray is about to hit something there) and
    /// must not count as evidence against a stale occupied cell.
    #[inline]
    fn decay_limit(&self, limit: f64) -> f64 {
        limit - 2.0 * self.resolution
    }

    /// The per-sample free-space carve: every sample `t = 0, step, 2·step,
    /// … < limit` is keyed and marked independently. This *is* the
    /// reference semantics; [`OccupancyMap::carve_free_batched`] must
    /// reproduce it bit for bit.
    fn carve_free_per_sample(&mut self, ray: &Ray, limit: f64, step: f64) -> usize {
        let decay_limit = self.decay_limit(limit);
        let mut updates = 0usize;
        let mut t = 0.0;
        while t < limit {
            let key = VoxelKey::from_point(ray.at(t), self.resolution);
            self.mark_free(key, t <= decay_limit);
            updates += 1;
            t += step;
        }
        updates
    }

    /// The batched free-space carve: samples sharing a voxel are grouped
    /// into runs and each run costs one keying and one hash operation
    /// instead of one per sample. Exactly equivalent to
    /// [`OccupancyMap::carve_free_per_sample`]; returns the same sample
    /// count.
    ///
    /// Voxel boundaries are proposed by the same Amanatides–Woo crossing
    /// recurrence as [`roborun_geom::GridRayWalk`], inlined because only
    /// the crossing parameters are needed here. Correctness does not rest
    /// on the proposal; it rests on per-axis monotonicity: each component
    /// of `VoxelKey::from_point(ray.at(t), res)` is a monotone function of
    /// `t` even in floating point (products, sums, divisions and floors
    /// are all monotone), so every sample between two samples with equal
    /// keys shares that key, and every sample between two samples whose
    /// keys differ by one grid step along one axis holds one of those two
    /// keys. Each run is therefore marked from its first sample's key
    /// alone and validated against the *next* run's first key; the rare
    /// runs that fail validation (a boundary crossed twice within one
    /// proposed cell, or a corner-diagonal crossing) are replayed sample
    /// by sample.
    fn carve_free_batched(&mut self, ray: &Ray, limit: f64, step: f64) -> usize {
        let mut t = 0.0;
        if t >= limit {
            return 0;
        }
        // Decay eligibility decreases monotonically along the ray, so a
        // run whose head sample is ineligible holds no eligible sample at
        // all — marking each run from its head alone therefore reproduces
        // the per-sample reference's decay decisions exactly.
        let decay_limit = self.decay_limit(limit);
        // Amanatides–Woo crossing state: t_next[axis] is the parameter of
        // the next grid-plane crossing along that axis, t_delta[axis] the
        // spacing between crossings.
        let res = self.resolution;
        let origin_key = VoxelKey::from_point(ray.origin, res);
        let origin_cell = [origin_key.x, origin_key.y, origin_key.z];
        let mut t_next = [f64::INFINITY; 3];
        let mut t_delta = [f64::INFINITY; 3];
        for axis in 0..3 {
            let d = ray.direction[axis];
            if d.abs() < 1e-12 {
                continue;
            }
            let boundary_cell = origin_cell[axis] + i64::from(d > 0.0);
            t_next[axis] = (boundary_cell as f64 * res - ray.origin[axis]) / d;
            t_delta[axis] = res / d.abs();
        }
        let mut updates = 0usize;
        // The previous run, pending validation against this run's first
        // key: (first sample parameter, sample count, first sample's key).
        let mut prev: Option<(f64, usize, VoxelKey)> = None;
        while t < limit {
            // Proposed exit of the voxel containing `t`: advance every
            // crossing at or before `t`, then take the nearest remaining.
            // (t_delta >= res > 0, so this terminates.)
            while t_next[0] <= t {
                t_next[0] += t_delta[0];
            }
            while t_next[1] <= t {
                t_next[1] += t_delta[1];
            }
            while t_next[2] <= t {
                t_next[2] += t_delta[2];
            }
            let exit = t_next[0].min(t_next[1]).min(t_next[2]);
            let run_start = t;
            let first_key = VoxelKey::from_point(ray.at(run_start), res);
            self.mark_free(first_key, run_start <= decay_limit);
            let stop = if exit < limit { exit } else { limit };
            let mut count = 1usize;
            t += step;
            while t < stop {
                count += 1;
                t += step;
            }
            updates += count;
            if let Some((p_start, p_count, p_key)) = prev {
                if !unit_step_apart(p_key, first_key) {
                    self.replay_run(ray, p_start, p_count, step, decay_limit);
                }
            }
            prev = Some((run_start, count, first_key));
        }
        // The final run has no successor: validate it against its own last
        // sample (equal keys ⟹ the run shares one voxel, by monotonicity).
        if let Some((p_start, p_count, p_key)) = prev {
            if p_count > 1 {
                let mut rt = p_start;
                for _ in 1..p_count {
                    rt += step;
                }
                if VoxelKey::from_point(ray.at(rt), res) != p_key {
                    self.replay_run(ray, p_start, p_count, step, decay_limit);
                }
            }
        }
        updates
    }

    /// Re-carves one run sample by sample — the exact fallback for runs
    /// the batched validation rejects. Regenerating `t` by repeated
    /// addition from the run's first sample reproduces the original float
    /// sequence, and `mark_free` is idempotent, so replaying over already
    /// marked voxels cannot diverge from the reference.
    fn replay_run(&mut self, ray: &Ray, start: f64, count: usize, step: f64, decay_limit: f64) {
        let res = self.resolution;
        let mut t = start;
        let mut prev = None;
        for _ in 0..count {
            let key = VoxelKey::from_point(ray.at(t), res);
            if prev != Some(key) {
                self.mark_free(key, t <= decay_limit);
                prev = Some(key);
            }
            t += step;
        }
    }

    /// State of the voxel containing `p`, or `None` when unknown.
    pub fn state_at(&self, p: Vec3) -> Option<VoxelState> {
        self.voxels
            .get(&VoxelKey::from_point(p, self.resolution))
            .copied()
    }

    /// `true` when the voxel containing `p` is known occupied.
    pub fn is_occupied(&self, p: Vec3) -> bool {
        self.state_at(p) == Some(VoxelState::Occupied)
    }

    /// `true` when the voxel containing `p` has never been observed.
    pub fn is_unknown(&self, p: Vec3) -> bool {
        self.state_at(p).is_none()
    }

    /// Iterates over occupied voxels as `(key, bounds)` pairs.
    pub fn occupied_voxels(&self) -> impl Iterator<Item = (VoxelKey, Aabb)> + '_ {
        let res = self.resolution;
        self.voxels
            .iter()
            .filter(|(_, s)| **s == VoxelState::Occupied)
            .map(move |(k, _)| {
                (
                    *k,
                    Aabb::from_center_half_extents(k.center(res), Vec3::splat(res * 0.5)),
                )
            })
    }

    /// Distance from `p` to the centre of the nearest occupied voxel within
    /// `max_radius`, or `None` when there is none. This is the map-derived
    /// `d_obs` the profilers feed to the governor (as opposed to the
    /// ground-truth distance the simulator knows).
    ///
    /// Searches voxel keys in expanding Chebyshev rings around `p` — the
    /// common case (an obstacle a few voxels away) costs a handful of hash
    /// probes instead of a scan of the whole map. When the rings would
    /// visit more cells than the map holds (sparse maps, large radii), the
    /// search falls back to the retained linear reference, whose result is
    /// identical.
    pub fn nearest_occupied_distance(&self, p: Vec3, max_radius: f64) -> Option<f64> {
        if self.occupied.is_empty() || max_radius < 0.0 {
            return None;
        }
        // An occupied voxel centre within `max_radius` lies within this
        // many rings of the centre cell; `max_radius` also seeds the prune
        // bound so farther cells are skipped before the first hit.
        let ring_cap = (max_radius / self.resolution).ceil() as i64 + 1;
        let mut best: Option<f64> = None;
        let outcome = RingSearch::new(self.resolution, self.occupied_min, self.occupied_max)
            .cap_max_ring(ring_cap)
            .with_fallback_budget(2 * self.occupied.len())
            .run(p, Some(max_radius * max_radius), |key| {
                if self.occupied.contains(&key) {
                    let d = key.center(self.resolution).distance(p);
                    if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                        best = Some(d);
                    }
                }
                let cutoff = best.unwrap_or(max_radius);
                Some(cutoff * cutoff)
            });
        if outcome == RingSearchOutcome::BudgetExhausted {
            // The rings have cost more than a scan of the occupied set:
            // finish with a direct scan (same minimum, same result).
            for key in &self.occupied {
                let d = key.center(self.resolution).distance(p);
                if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                    best = Some(d);
                }
            }
        }
        best
    }

    /// Linear-scan reference for [`OccupancyMap::nearest_occupied_distance`]
    /// — retained for the equivalence proptests and benches.
    pub fn nearest_occupied_distance_linear(&self, p: Vec3, max_radius: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (key, state) in &self.voxels {
            if *state != VoxelState::Occupied {
                continue;
            }
            let d = key.center(self.resolution).distance(p);
            if d <= max_radius && best.map(|b| d < b).unwrap_or(true) {
                best = Some(d);
            }
        }
        best
    }

    /// Distance from `p` along `direction` to the first *unknown* voxel,
    /// sampled every `step` metres up to `max_range`. Unknown space ahead
    /// shortens the distance the MAV can trust, which the profilers fold
    /// into the visibility estimate ("closest unknown" in Table I).
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or `max_range < 0`.
    pub fn distance_to_unknown(&self, p: Vec3, direction: Vec3, max_range: f64, step: f64) -> f64 {
        assert!(step > 0.0, "step must be positive");
        assert!(max_range >= 0.0, "max range must be non-negative");
        let Some(dir) = direction.try_normalize() else {
            return max_range;
        };
        let ray = Ray::new(p, dir);
        let mut t = 0.0;
        while t <= max_range {
            if self.is_unknown(ray.at(t)) {
                return t;
            }
            t += step;
        }
        max_range
    }

    /// Summary statistics.
    pub fn stats(&self) -> MapStats {
        let occupied = self
            .voxels
            .values()
            .filter(|s| **s == VoxelState::Occupied)
            .count();
        let free = self.voxels.len() - occupied;
        let voxel_volume = self.resolution.powi(3);
        MapStats {
            occupied,
            free,
            resolution: self.resolution,
            known_volume: self.voxels.len() as f64 * voxel_volume,
            occupied_volume: occupied as f64 * voxel_volume,
        }
    }

    /// Known (observed) volume in cubic metres — the profiler's "map
    /// volume" variable (Table I).
    pub fn known_volume(&self) -> f64 {
        self.voxels.len() as f64 * self.resolution.powi(3)
    }

    /// Drops every voxel whose centre lies farther than `radius` from
    /// `center` — a memory bound for long missions (the map only needs to
    /// cover the MAV's local neighbourhood for navigation).
    pub fn retain_within(&mut self, center: Vec3, radius: f64) {
        let res = self.resolution;
        self.voxels
            .retain(|k, _| k.center(res).distance(center) <= radius);
        self.occupied
            .retain(|k| k.center(res).distance(center) <= radius);
        self.last_occupied_epoch
            .retain(|k, _| k.center(res).distance(center) <= radius);
        self.recompute_occupied_bounds();
    }

    /// Rebuilds the occupied-key set and its bounds from the voxel map.
    ///
    /// Both are `#[serde(skip)]`: they are derivable state, so serialized
    /// forms carry only `voxels` and a deserialized map holds empty caches.
    /// Deserializers must call this before querying — after it, every query
    /// answers exactly as on the original map (enforced by the round-trip
    /// test).
    pub fn rebuild_spatial_caches(&mut self) {
        self.occupied = self
            .voxels
            .iter()
            .filter(|(_, s)| **s == VoxelState::Occupied)
            .map(|(k, _)| *k)
            .collect();
        self.recompute_occupied_bounds();
    }

    /// Recomputes the occupied key bounds from the occupied set.
    fn recompute_occupied_bounds(&mut self) {
        let mut iter = self.occupied.iter();
        if let Some(first) = iter.next() {
            let (mut lo, mut hi) = (*first, *first);
            for k in iter {
                lo = lo.componentwise_min(*k);
                hi = hi.componentwise_max(*k);
            }
            self.occupied_min = lo;
            self.occupied_max = hi;
        } else {
            self.occupied_min = VoxelKey { x: 0, y: 0, z: 0 };
            self.occupied_max = VoxelKey { x: 0, y: 0, z: 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud_with_wall(origin: Vec3, wall_x: f64) -> PointCloud {
        // A vertical line of points at x = wall_x spread in y.
        PointCloud::new(
            origin,
            (-5..=5)
                .map(|i| Vec3::new(wall_x, i as f64 * 0.5, origin.z))
                .collect(),
        )
    }

    #[test]
    fn new_map_is_empty() {
        let map = OccupancyMap::new(0.5);
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.resolution(), 0.5);
        assert!(map.is_unknown(Vec3::ZERO));
        assert!(!map.is_occupied(Vec3::ZERO));
        assert_eq!(map.known_volume(), 0.0);
        assert!(map.nearest_occupied_distance(Vec3::ZERO, 100.0).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = OccupancyMap::new(0.0);
    }

    #[test]
    fn integration_marks_hits_occupied_and_path_free() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let updates = map.integrate_cloud(&cloud_with_wall(origin, 8.0), 0.5);
        assert!(updates > 0);
        assert!(map.is_occupied(Vec3::new(8.0, 0.0, 5.0)));
        assert_eq!(
            map.state_at(Vec3::new(4.0, 0.0, 5.0)),
            Some(VoxelState::Free)
        );
        // Behind the wall is unknown.
        assert!(map.is_unknown(Vec3::new(12.0, 0.0, 5.0)));
        let stats = map.stats();
        assert!(stats.occupied > 0);
        assert!(stats.free > stats.occupied);
        assert!((stats.known_volume - map.known_volume()).abs() < 1e-9);
        assert!(stats.occupied_volume < stats.known_volume);
    }

    #[test]
    fn occupied_never_downgraded_to_free() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        // First scan sees an obstacle at x=4.
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(4.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(map.is_occupied(Vec3::new(4.0, 0.0, 5.0)));
        // Second scan's ray passes through the same voxel to a farther hit.
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(
            map.is_occupied(Vec3::new(4.0, 0.0, 5.0)),
            "occupied voxel was erased"
        );
        assert!(map.is_occupied(Vec3::new(9.0, 0.0, 5.0)));
    }

    #[test]
    fn coarser_raytrace_step_does_less_work() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = cloud_with_wall(origin, 20.0);
        let mut fine = OccupancyMap::new(0.5);
        let mut coarse = OccupancyMap::new(0.5);
        let fine_updates = fine.integrate_cloud(&cloud, 0.25);
        let coarse_updates = coarse.integrate_cloud(&cloud, 2.0);
        assert!(
            fine_updates > 2 * coarse_updates,
            "fine {fine_updates} coarse {coarse_updates}"
        );
        // Both agree on the occupied wall.
        assert!(fine.is_occupied(Vec3::new(20.0, 0.0, 5.0)));
        assert!(coarse.is_occupied(Vec3::new(20.0, 0.0, 5.0)));
    }

    #[test]
    fn coarser_resolution_uses_fewer_voxels() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cloud = cloud_with_wall(origin, 10.0);
        let mut fine = OccupancyMap::new(0.3);
        let mut coarse = OccupancyMap::new(2.4);
        fine.integrate_cloud(&cloud, 0.3);
        coarse.integrate_cloud(&cloud, 0.3);
        assert!(fine.len() > coarse.len());
        let fine_occ = fine.stats().occupied;
        let coarse_occ = coarse.stats().occupied;
        assert!(fine_occ >= coarse_occ);
    }

    #[test]
    fn nearest_occupied_distance_matches_geometry() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(6.0, 0.0, 5.0)]),
            0.5,
        );
        let d = map
            .nearest_occupied_distance(Vec3::new(0.0, 0.0, 5.0), 100.0)
            .unwrap();
        assert!((d - 6.0).abs() < 1.0, "distance {d}");
        assert!(map
            .nearest_occupied_distance(Vec3::new(0.0, 0.0, 5.0), 2.0)
            .is_none());
    }

    #[test]
    fn distance_to_unknown_detects_frontier() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(10.0, 0.0, 5.0)]),
            0.25,
        );
        // Looking along the observed corridor, unknown space starts near the
        // wall (the wall voxel is known-occupied, behind it is unknown).
        let d = map.distance_to_unknown(origin, Vec3::X, 40.0, 0.25);
        assert!(d > 8.0 && d <= 12.0, "frontier at {d}");
        // Looking sideways where nothing was observed, unknown starts almost
        // immediately (just outside the origin's free voxel).
        let d_side = map.distance_to_unknown(origin, Vec3::Y, 40.0, 0.25);
        assert!(d_side < 2.0);
        // Degenerate direction returns the full range.
        assert_eq!(
            map.distance_to_unknown(origin, Vec3::ZERO, 40.0, 0.25),
            40.0
        );
    }

    #[test]
    fn serde_skip_round_trip_answers_identically() {
        // What a serde round trip produces with `#[serde(skip)]` on the
        // occupied-key caches: `voxels` restored, the skipped fields at
        // their defaults. After `rebuild_spatial_caches` the map compares
        // equal to the original and answers nearest queries identically.
        let mut original = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        original.integrate_cloud(&cloud_with_wall(origin, 8.0), 0.5);
        let mut restored = OccupancyMap {
            resolution: original.resolution,
            voxels: original.voxels.clone(),
            occupied: FxHashSet::default(),
            occupied_min: VoxelKey::default(),
            occupied_max: VoxelKey::default(),
            decay_after: None,
            current_epoch: 0,
            last_occupied_epoch: FxHashMap::default(),
        };
        assert!(
            restored.nearest_occupied_distance(origin, 100.0).is_none(),
            "an unrebuilt cache must be observably stale, or the test is vacuous"
        );
        restored.rebuild_spatial_caches();
        assert_eq!(restored, original);
        for probe in [
            origin,
            Vec3::new(8.0, 0.0, 5.0),
            Vec3::new(-20.0, 3.0, 1.0),
            Vec3::new(7.75, -2.5, 5.0),
        ] {
            for radius in [0.0, 2.0, 50.0] {
                assert_eq!(
                    restored.nearest_occupied_distance(probe, radius),
                    original.nearest_occupied_distance(probe, radius)
                );
            }
            assert_eq!(restored.state_at(probe), original.state_at(probe));
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn stale_decay_frees_vacated_cells_but_protects_fresh_ones() {
        let mut map = OccupancyMap::new(0.5);
        map.set_stale_decay(Some(2));
        assert_eq!(map.stale_decay(), Some(2));
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let actor_cell = Vec3::new(4.0, 0.0, 5.0);
        // Epoch 0: an obstacle (a moving actor, say) occupies x = 4.
        map.set_epoch(0);
        map.integrate_cloud(&PointCloud::new(origin, vec![actor_cell]), 0.25);
        assert!(map.is_occupied(actor_cell));
        // Epoch 1 (fresh): a ray now sees through the cell — still
        // protected, occupied wins like OctoMap clamping.
        map.set_epoch(1);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(map.is_occupied(actor_cell), "fresh occupancy was decayed");
        // Epoch 4 (stale, age 4 > 2): the same contradicting evidence now
        // frees the vacated cell.
        map.set_epoch(4);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert_eq!(map.state_at(actor_cell), Some(VoxelState::Free));
        // The occupied cache agrees (the ring search no longer finds it).
        let d = map.nearest_occupied_distance(origin, 100.0).unwrap();
        assert!(d > 6.0, "decayed voxel still reported at {d}");
        // Re-observation re-occupies and re-protects the cell.
        map.set_epoch(5);
        map.integrate_cloud(&PointCloud::new(origin, vec![actor_cell]), 0.25);
        assert!(map.is_occupied(actor_cell));
        map.set_epoch(6);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(map.is_occupied(actor_cell));
    }

    #[test]
    fn decay_disabled_is_the_classic_accrete_only_map() {
        // Same evidence sequence as above, decay off: the occupied voxel
        // must survive arbitrarily stale contradicting rays (this is the
        // behaviour every pre-dynamics mission relies on).
        let mut map = OccupancyMap::new(0.5);
        assert_eq!(map.stale_decay(), None);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let cell = Vec3::new(4.0, 0.0, 5.0);
        map.set_epoch(0);
        map.integrate_cloud(&PointCloud::new(origin, vec![cell]), 0.25);
        map.set_epoch(1_000);
        map.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(9.0, 0.0, 5.0)]),
            0.25,
        );
        assert!(map.is_occupied(cell));
    }

    #[test]
    fn decay_is_identical_in_batched_and_reference_integration() {
        // The decay rule lives in `mark_free`, which both carve paths
        // share — the batched integration must age voxels exactly like
        // the per-sample reference.
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let run = |reference: bool| {
            let mut map = OccupancyMap::new(2.4); // coarse => batching engages
            map.set_stale_decay(Some(1));
            map.set_epoch(0);
            let first = PointCloud::new(origin, vec![Vec3::new(7.2, 0.0, 5.0)]);
            let second = PointCloud::new(origin, vec![Vec3::new(21.6, 0.3, 5.2)]);
            if reference {
                map.integrate_cloud_reference(&first, 0.3);
                map.set_epoch(5);
                map.integrate_cloud_reference(&second, 0.3);
            } else {
                map.integrate_cloud(&first, 0.3);
                map.set_epoch(5);
                map.integrate_cloud(&second, 0.3);
            }
            map
        };
        let batched = run(false);
        let reference = run(true);
        for xi in 0..12 {
            let p = Vec3::new(xi as f64 * 2.0, 0.0, 5.0);
            assert_eq!(batched.state_at(p), reference.state_at(p), "at {p}");
        }
        assert_eq!(batched.stats(), reference.stats());
    }

    #[test]
    fn occupied_voxel_iteration_and_retain() {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        map.integrate_cloud(&cloud_with_wall(origin, 8.0), 0.5);
        let occupied: Vec<_> = map.occupied_voxels().collect();
        assert_eq!(occupied.len(), map.stats().occupied);
        for (_, bounds) in &occupied {
            assert!((bounds.size().x - 0.5).abs() < 1e-12);
        }
        // Retaining a small bubble around the origin drops the far wall.
        map.retain_within(origin, 3.0);
        assert!(map.stats().occupied == 0);
        assert!(!map.is_empty(), "nearby free voxels should remain");
    }
}
