//! Bag recording and playback — the substitute for `rosbag`.
//!
//! Two recording granularities are provided:
//!
//! * [`BagIndex`] records the *metadata* of every sample on any number of
//!   topics (time, topic, type, size, transport latency) — enough to
//!   reconstruct traffic timelines and communication costs, which is what
//!   the latency-breakdown experiments need.
//! * [`TypedBag`] additionally keeps the payloads of a single message type
//!   so a stream can be replayed into tests (e.g. re-feeding recorded
//!   spatial profiles to a governor ablation).

use crate::message::{Message, Stamped};
use crate::topic::TopicName;
use serde::{Deserialize, Serialize};

/// Metadata of one recorded sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BagEntry {
    /// Simulation time of the publish (seconds).
    pub time: f64,
    /// Topic the sample was published on.
    pub topic: TopicName,
    /// Message type name.
    pub type_name: String,
    /// Approximate payload size (bytes).
    pub bytes: usize,
    /// Transport latency charged to the recording subscription (seconds).
    pub transport_latency: f64,
    /// Per-topic sequence number.
    pub sequence: u64,
}

/// An append-only index of recorded sample metadata.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BagIndex {
    entries: Vec<BagEntry>,
}

impl BagIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        BagIndex::default()
    }

    /// Records one sample's metadata.
    pub fn record<T: Message>(&mut self, topic: &TopicName, sample: &Stamped<T>) {
        self.entries.push(BagEntry {
            time: sample.publish_time,
            topic: topic.clone(),
            type_name: T::type_name().to_string(),
            bytes: sample.message.approx_size_bytes(),
            transport_latency: sample.transport_latency,
            sequence: sample.sequence,
        });
    }

    /// All recorded entries, in recording order.
    pub fn entries(&self) -> &[BagEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries recorded on one topic, in recording order.
    pub fn topic_entries(&self, topic: &str) -> Vec<&BagEntry> {
        self.entries
            .iter()
            .filter(|e| e.topic.as_str() == topic)
            .collect()
    }

    /// Time span covered by the recording: (first, last) publish time, or
    /// `None` when empty.
    pub fn time_span(&self) -> Option<(f64, f64)> {
        let first = self.entries.first()?.time;
        let last = self.entries.iter().map(|e| e.time).fold(first, f64::max);
        Some((
            self.entries.iter().map(|e| e.time).fold(first, f64::min),
            last,
        ))
    }

    /// Total recorded payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// A CSV rendering (`time,topic,type,bytes,transport_latency,sequence`),
    /// one line per entry, with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,topic,type,bytes,transport_latency,sequence\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:.6},{},{},{},{:.6},{}\n",
                e.time, e.topic, e.type_name, e.bytes, e.transport_latency, e.sequence
            ));
        }
        out
    }
}

/// A recording of one topic's payloads, replayable in publish order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypedBag<T> {
    topic: TopicName,
    samples: Vec<Stamped<T>>,
}

impl<T: Message> TypedBag<T> {
    /// Creates an empty bag for one topic.
    pub fn new(topic: TopicName) -> Self {
        TypedBag {
            topic,
            samples: Vec::new(),
        }
    }

    /// The topic this bag records.
    pub fn topic(&self) -> &TopicName {
        &self.topic
    }

    /// Appends a sample.
    pub fn record(&mut self, sample: Stamped<T>) {
        self.samples.push(sample);
    }

    /// Recorded samples, in recording order.
    pub fn samples(&self) -> &[Stamped<T>] {
        &self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Replays the payloads whose publish time falls within
    /// `[t_start, t_end)`, in publish order.
    pub fn replay_between(&self, t_start: f64, t_end: f64) -> Vec<&T> {
        self.samples
            .iter()
            .filter(|s| s.publish_time >= t_start && s.publish_time < t_end)
            .map(|s| &s.message)
            .collect()
    }

    /// Consumes the bag and returns an iterator over the payloads.
    pub fn into_messages(self) -> impl Iterator<Item = T> {
        self.samples.into_iter().map(Stamped::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamped(t: f64, seq: u64, message: f64) -> Stamped<f64> {
        Stamped {
            publish_time: t,
            sequence: seq,
            transport_latency: 0.001,
            message,
        }
    }

    #[test]
    fn index_records_metadata_and_spans() {
        let mut index = BagIndex::new();
        assert!(index.is_empty());
        let cloud = TopicName::new("/sensors/points").unwrap();
        let policy = TopicName::new("/runtime/policy").unwrap();
        index.record(&cloud, &stamped(1.0, 0, 3.5));
        index.record(&cloud, &stamped(2.0, 1, 4.5));
        index.record(&policy, &stamped(1.5, 0, 9.9));
        assert_eq!(index.len(), 3);
        assert_eq!(index.topic_entries("/sensors/points").len(), 2);
        assert_eq!(index.time_span(), Some((1.0, 2.0)));
        assert_eq!(index.total_bytes(), 24);
    }

    #[test]
    fn csv_has_header_and_one_line_per_entry() {
        let mut index = BagIndex::new();
        let topic = TopicName::new("/odom").unwrap();
        index.record(&topic, &stamped(0.5, 0, 1.0));
        index.record(&topic, &stamped(1.0, 1, 2.0));
        let csv = index.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,topic"));
        assert!(lines[1].contains("/odom"));
    }

    #[test]
    fn typed_bag_replays_by_time_window() {
        let topic = TopicName::new("/profile").unwrap();
        let mut bag = TypedBag::new(topic.clone());
        assert!(bag.is_empty());
        for i in 0..10 {
            bag.record(stamped(i as f64, i, i as f64 * 10.0));
        }
        assert_eq!(bag.len(), 10);
        assert_eq!(bag.topic(), &topic);
        let window: Vec<f64> = bag.replay_between(3.0, 6.0).into_iter().copied().collect();
        assert_eq!(window, vec![30.0, 40.0, 50.0]);
        let all: Vec<f64> = bag.into_messages().collect();
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn empty_index_has_no_span() {
        assert_eq!(BagIndex::new().time_span(), None);
    }
}
