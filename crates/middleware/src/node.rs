//! Nodes, publishers and subscriptions — the user-facing handles.
//!
//! A [`Node`] is a named participant on the [`MessageBus`]; it creates
//! typed [`Publisher`]s and [`Subscription`]s. The handles are plain
//! structs (no lifetimes) so they can be stored in pipeline-stage structs
//! and moved into executor callbacks.

use crate::bus::{MessageBus, PublishReceipt};
use crate::error::MiddlewareError;
use crate::message::{Message, Stamped};
use crate::qos::QosProfile;
use crate::topic::TopicName;
use std::marker::PhantomData;

/// A named participant on the bus.
#[derive(Debug, Clone)]
pub struct Node {
    bus: MessageBus,
    name: String,
}

impl Node {
    /// Registers a new node on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidNodeName`] for malformed names and
    /// [`MiddlewareError::NodeNameTaken`] for duplicates.
    pub fn new(bus: &MessageBus, name: &str) -> Result<Self, MiddlewareError> {
        bus.register_node(name)?;
        Ok(Node {
            bus: bus.clone(),
            name: name.to_string(),
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bus this node is registered on.
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// Creates a publisher for `T` on `topic`.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidTopicName`] for malformed topic
    /// names and [`MiddlewareError::TypeMismatch`] if the topic already
    /// carries a different message type.
    pub fn publisher<T: Message>(&self, topic: &str) -> Result<Publisher<T>, MiddlewareError> {
        let topic = TopicName::new(topic)?;
        self.bus.register_publisher::<T>(&self.name, &topic)?;
        Ok(Publisher {
            bus: self.bus.clone(),
            node: self.name.clone(),
            topic,
            _marker: PhantomData,
        })
    }

    /// Creates a subscription to `T` samples on `topic` with the given QoS.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidTopicName`] for malformed topic
    /// names and [`MiddlewareError::TypeMismatch`] if the topic already
    /// carries a different message type.
    pub fn subscribe<T: Message>(
        &self,
        topic: &str,
        qos: QosProfile,
    ) -> Result<Subscription<T>, MiddlewareError> {
        let topic = TopicName::new(topic)?;
        let id = self
            .bus
            .register_subscription::<T>(&self.name, &topic, qos)?;
        Ok(Subscription {
            bus: self.bus.clone(),
            topic,
            id,
            qos,
            _marker: PhantomData,
        })
    }
}

/// A typed publisher handle.
///
/// Dropping the publisher unregisters it from the topic (the bus's
/// publisher count decreases); samples it already published remain
/// queued at their subscribers.
#[derive(Debug)]
pub struct Publisher<T: Message> {
    bus: MessageBus,
    node: String,
    topic: TopicName,
    _marker: PhantomData<fn(T)>,
}

impl<T: Message> Publisher<T> {
    /// The topic this publisher writes to.
    pub fn topic(&self) -> &TopicName {
        &self.topic
    }

    /// The node that owns this publisher.
    pub fn node_name(&self) -> &str {
        &self.node
    }

    /// Publishes one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::BusClosed`] after the bus has been shut
    /// down.
    pub fn publish(&self, message: T) -> Result<PublishReceipt, MiddlewareError> {
        self.bus.publish(&self.topic, message)
    }

    /// Number of active subscriptions that will receive the next publish.
    pub fn subscriber_count(&self) -> usize {
        self.bus.subscription_count(&self.topic)
    }
}

/// A typed subscription handle with a keep-last queue on the bus.
#[derive(Debug)]
pub struct Subscription<T: Message> {
    bus: MessageBus,
    topic: TopicName,
    id: u64,
    qos: QosProfile,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Message> Subscription<T> {
    /// The topic this subscription listens on.
    pub fn topic(&self) -> &TopicName {
        &self.topic
    }

    /// The QoS profile the subscription was created with.
    pub fn qos(&self) -> QosProfile {
        self.qos
    }

    /// Takes the oldest queued sample, if any. Structural failures (the
    /// subscription was dropped, a payload failed its downcast) degrade
    /// to `None`; use [`Subscription::recv_checked`] to observe them.
    pub fn try_recv(&self) -> Option<Stamped<T>> {
        self.bus.take::<T>(&self.topic, self.id)
    }

    /// Takes the oldest queued sample, surfacing structural failures as
    /// typed [`MiddlewareError`]s instead of silently returning `None`:
    /// `Ok(None)` is an empty queue, `Err(UnknownSubscription)` a handle
    /// whose bus-side slot is gone (subscriber dropped mid-mission),
    /// `Err(PayloadTypeCorrupted)` a dropped corrupt sample. Callers that
    /// must keep a mission alive log the error and continue.
    pub fn recv_checked(&self) -> Result<Option<Stamped<T>>, MiddlewareError> {
        self.bus.try_take::<T>(&self.topic, self.id)
    }

    /// Takes the newest queued sample, discarding anything older. Returns
    /// `None` when the queue is empty.
    pub fn latest(&self) -> Option<Stamped<T>> {
        let mut newest = None;
        while let Some(sample) = self.try_recv() {
            newest = Some(sample);
        }
        newest
    }

    /// Drains every queued sample in publish order.
    pub fn drain(&self) -> Vec<Stamped<T>> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(sample) = self.try_recv() {
            out.push(sample);
        }
        out
    }

    /// Number of samples currently queued.
    pub fn len(&self) -> usize {
        self.bus.queue_len(&self.topic, self.id)
    }

    /// `true` when no samples are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted from this subscription's queue because it was full.
    pub fn evictions(&self) -> u64 {
        self.bus.subscription_evictions(&self.topic, self.id)
    }
}

impl<T: Message> Drop for Publisher<T> {
    fn drop(&mut self) {
        self.bus.unregister_publisher(&self.node, &self.topic);
    }
}

impl<T: Message> Drop for Subscription<T> {
    fn drop(&mut self) {
        self.bus.unregister_subscription(&self.topic, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_publisher_subscription_round_trip() {
        let bus = MessageBus::with_free_transport();
        let talker = Node::new(&bus, "talker").unwrap();
        let listener = Node::new(&bus, "listener").unwrap();
        let publisher = talker.publisher::<String>("/chatter").unwrap();
        let subscription = listener
            .subscribe::<String>("/chatter", QosProfile::default())
            .unwrap();

        assert_eq!(publisher.subscriber_count(), 1);
        publisher.publish(String::from("hello world")).unwrap();
        let sample = subscription.try_recv().expect("sample");
        assert_eq!(sample.message, "hello world");
        assert!(subscription.is_empty());
    }

    #[test]
    fn latest_discards_older_samples() {
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let publisher = node.publisher::<u32>("/counter").unwrap();
        let subscription = node
            .subscribe::<u32>("/counter", QosProfile::reliable(8))
            .unwrap();
        for i in 0..5 {
            publisher.publish(i).unwrap();
        }
        assert_eq!(subscription.len(), 5);
        assert_eq!(subscription.latest().unwrap().message, 4);
        assert!(subscription.latest().is_none());
    }

    #[test]
    fn drain_preserves_order() {
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let publisher = node.publisher::<u32>("/counter").unwrap();
        let subscription = node
            .subscribe::<u32>("/counter", QosProfile::reliable(8))
            .unwrap();
        for i in 0..4 {
            publisher.publish(i).unwrap();
        }
        let values: Vec<u32> = subscription
            .drain()
            .into_iter()
            .map(|s| s.message)
            .collect();
        assert_eq!(values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn dropping_a_publisher_unregisters_it() {
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let topic = crate::topic::TopicName::new("/beat").unwrap();
        {
            let _publisher = node.publisher::<u8>("/beat").unwrap();
            assert_eq!(bus.publisher_count(&topic), 1);
        }
        assert_eq!(bus.publisher_count(&topic), 0);
    }

    #[test]
    fn dropping_a_subscription_unregisters_it() {
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let publisher = node.publisher::<u8>("/beat").unwrap();
        {
            let _subscription = node
                .subscribe::<u8>("/beat", QosProfile::default())
                .unwrap();
            assert_eq!(publisher.subscriber_count(), 1);
        }
        assert_eq!(publisher.subscriber_count(), 0);
    }

    #[test]
    fn invalid_names_surface_as_errors() {
        let bus = MessageBus::default();
        assert!(Node::new(&bus, "Bad Name").is_err());
        let node = Node::new(&bus, "ok").unwrap();
        assert!(node.publisher::<u8>("no_leading_slash").is_err());
        assert!(node
            .subscribe::<u8>("/UPPER", QosProfile::default())
            .is_err());
    }

    #[test]
    fn dropped_subscriber_degrades_instead_of_aborting() {
        let bus = MessageBus::with_free_transport();
        let talker = Node::new(&bus, "talker").unwrap();
        let listener = Node::new(&bus, "listener").unwrap();
        let publisher = talker.publisher::<u32>("/mission").unwrap();
        let keeper = listener
            .subscribe::<u32>("/mission", QosProfile::reliable(4))
            .unwrap();
        {
            let _doomed = listener
                .subscribe::<u32>("/mission", QosProfile::reliable(4))
                .unwrap();
            publisher.publish(1).unwrap();
            // `_doomed` drops here, mid-"mission".
        }
        // Publishing continues without error, deliveries reflect the
        // drop, and the surviving subscription keeps receiving — the
        // sweep never aborts.
        let receipt = publisher.publish(2).unwrap();
        assert_eq!(receipt.deliveries, 1);
        assert_eq!(keeper.drain().len(), 2);
    }

    #[test]
    fn recv_checked_reports_a_stale_subscription_as_a_typed_error() {
        use crate::error::BusError;
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let publisher = node.publisher::<u8>("/beat").unwrap();
        let sub = node
            .subscribe::<u8>("/beat", QosProfile::default())
            .unwrap();
        publisher.publish(1).unwrap();
        assert!(matches!(sub.recv_checked(), Ok(Some(_))));
        assert!(matches!(sub.recv_checked(), Ok(None)));
        // Simulate the bus-side slot vanishing while the handle lives
        // on: unregister directly, as a foreign drop would.
        bus.unregister_subscription(sub.topic(), 0);
        match sub.recv_checked() {
            Err(BusError::UnknownSubscription { topic, id }) => {
                assert_eq!(topic, "/beat");
                assert_eq!(id, 0);
            }
            other => panic!("expected UnknownSubscription, got {other:?}"),
        }
        // The un-checked path degrades the same condition to `None`.
        assert!(sub.try_recv().is_none());
        // The publisher keeps working regardless.
        publisher.publish(2).unwrap();
    }

    #[test]
    fn two_subscribers_each_get_every_sample() {
        let bus = MessageBus::with_free_transport();
        let talker = Node::new(&bus, "talker").unwrap();
        let a = Node::new(&bus, "a").unwrap();
        let b = Node::new(&bus, "b").unwrap();
        let publisher = talker.publisher::<u32>("/fanout").unwrap();
        let sub_a = a
            .subscribe::<u32>("/fanout", QosProfile::reliable(8))
            .unwrap();
        let sub_b = b
            .subscribe::<u32>("/fanout", QosProfile::reliable(8))
            .unwrap();
        for i in 0..3 {
            publisher.publish(i).unwrap();
        }
        assert_eq!(sub_a.drain().len(), 3);
        assert_eq!(sub_b.drain().len(), 3);
    }
}
