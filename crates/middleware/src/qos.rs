//! Quality-of-service profiles for subscriptions.
//!
//! The middleware keeps the small subset of the ROS 2 QoS vocabulary that
//! matters for a deterministic in-process simulation: a keep-last history
//! depth, a reliability class (which the communication-latency model charges
//! differently), and a durability class (latched topics re-deliver the last
//! sample to late subscribers).

use serde::{Deserialize, Serialize};

/// Delivery reliability of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Reliability {
    /// Every sample is acknowledged; transport costs more per message.
    #[default]
    Reliable,
    /// Samples may be dropped under pressure; cheapest transport.
    BestEffort,
}

/// Durability of a topic's last sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Durability {
    /// Only samples published after subscribing are delivered.
    #[default]
    Volatile,
    /// The most recent sample is retained and delivered to late subscribers
    /// (ROS "transient local" / latched topics).
    TransientLocal,
}

/// A subscription's quality-of-service profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QosProfile {
    /// Keep-last history depth: the subscription queue holds at most this
    /// many undelivered samples; older samples are dropped first.
    pub depth: usize,
    /// Reliability class.
    pub reliability: Reliability,
    /// Durability class.
    pub durability: Durability,
}

impl Default for QosProfile {
    fn default() -> Self {
        QosProfile::reliable(10)
    }
}

impl QosProfile {
    /// A reliable, volatile profile with the given queue depth.
    pub fn reliable(depth: usize) -> Self {
        QosProfile {
            depth: depth.max(1),
            reliability: Reliability::Reliable,
            durability: Durability::Volatile,
        }
    }

    /// The profile used for high-rate sensor streams: best-effort, shallow
    /// queue (depth 5), volatile — mirrors ROS 2's `SensorDataQoS`.
    pub fn sensor_data() -> Self {
        QosProfile {
            depth: 5,
            reliability: Reliability::BestEffort,
            durability: Durability::Volatile,
        }
    }

    /// A latched profile: reliable, and the last sample is re-delivered to
    /// subscribers that join after it was published. Used for slowly
    /// changing state such as the active policy or the mission goal.
    pub fn latched(depth: usize) -> Self {
        QosProfile {
            depth: depth.max(1),
            reliability: Reliability::Reliable,
            durability: Durability::TransientLocal,
        }
    }

    /// Returns a copy with a different depth (builder-style).
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// Returns a copy with best-effort reliability (builder-style).
    pub fn best_effort(mut self) -> Self {
        self.reliability = Reliability::BestEffort;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reliable_depth_10() {
        let qos = QosProfile::default();
        assert_eq!(qos.depth, 10);
        assert_eq!(qos.reliability, Reliability::Reliable);
        assert_eq!(qos.durability, Durability::Volatile);
    }

    #[test]
    fn sensor_data_is_best_effort() {
        let qos = QosProfile::sensor_data();
        assert_eq!(qos.reliability, Reliability::BestEffort);
        assert!(qos.depth >= 1);
    }

    #[test]
    fn latched_is_transient_local() {
        let qos = QosProfile::latched(1);
        assert_eq!(qos.durability, Durability::TransientLocal);
        assert_eq!(qos.depth, 1);
    }

    #[test]
    fn depth_is_never_zero() {
        assert_eq!(QosProfile::reliable(0).depth, 1);
        assert_eq!(QosProfile::default().with_depth(0).depth, 1);
    }

    #[test]
    fn builders_adjust_fields() {
        let qos = QosProfile::reliable(4).best_effort().with_depth(7);
        assert_eq!(qos.depth, 7);
        assert_eq!(qos.reliability, Reliability::BestEffort);
    }
}
