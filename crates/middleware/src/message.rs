//! The message contract and the stamped envelope.
//!
//! Anything cloneable and `Send` can travel over a topic; the only extra
//! requirement is an approximate wire size so the communication-latency
//! model ([`crate::CommLatencyModel`]) can charge a transport cost that
//! scales with payload size, the way a serialized ROS message would.

use serde::{Deserialize, Serialize};

/// A value that can be published on a topic.
///
/// Implementors report an approximate serialized size; the default type
/// name is derived from the Rust type. Domain crates wrap their types in
/// thin newtype messages and implement this trait for them.
pub trait Message: Clone + Send + 'static {
    /// Approximate serialized size in bytes, used by the
    /// communication-latency model. It does not need to be exact — only
    /// roughly proportional to the real payload.
    fn approx_size_bytes(&self) -> usize;

    /// A short, human-readable type name used by graph introspection and
    /// bag recording.
    fn type_name() -> &'static str {
        std::any::type_name::<Self>()
    }
}

macro_rules! impl_message_for_pod {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Message for $ty {
                fn approx_size_bytes(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }
            }
        )*
    };
}

impl_message_for_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl Message for String {
    fn approx_size_bytes(&self) -> usize {
        self.len()
    }
}

impl Message for () {
    fn approx_size_bytes(&self) -> usize {
        0
    }
}

impl<T: Message> Message for Vec<T> {
    fn approx_size_bytes(&self) -> usize {
        self.iter().map(Message::approx_size_bytes).sum()
    }
}

impl<T: Message> Message for Option<T> {
    fn approx_size_bytes(&self) -> usize {
        self.as_ref().map_or(1, |v| 1 + v.approx_size_bytes())
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn approx_size_bytes(&self) -> usize {
        self.0.approx_size_bytes() + self.1.approx_size_bytes()
    }
}

/// A published sample together with its delivery metadata.
///
/// The bus stamps every sample with the publish time (simulation seconds),
/// a per-topic sequence number and the transport latency the QoS class and
/// payload size incurred. Subscribers that only care about the payload use
/// [`Stamped::into_inner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stamped<T> {
    /// Simulation time at which the sample was published (seconds).
    pub publish_time: f64,
    /// Per-topic, monotonically increasing sequence number (starts at 0).
    pub sequence: u64,
    /// Transport latency charged for this sample (seconds).
    pub transport_latency: f64,
    /// The payload.
    pub message: T,
}

impl<T> Stamped<T> {
    /// Simulation time at which the sample becomes visible to subscribers.
    pub fn arrival_time(&self) -> f64 {
        self.publish_time + self.transport_latency
    }

    /// Consumes the envelope and returns the payload.
    pub fn into_inner(self) -> T {
        self.message
    }

    /// Maps the payload, preserving the metadata.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Stamped<U> {
        Stamped {
            publish_time: self.publish_time,
            sequence: self.sequence,
            transport_latency: self.transport_latency,
            message: f(self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_sizes_match_their_layout() {
        assert_eq!(3.0f64.approx_size_bytes(), 8);
        assert_eq!(1u32.approx_size_bytes(), 4);
        assert_eq!(true.approx_size_bytes(), 1);
        assert_eq!(().approx_size_bytes(), 0);
    }

    #[test]
    fn container_sizes_sum_their_elements() {
        let v = vec![1.0f64; 10];
        assert_eq!(v.approx_size_bytes(), 80);
        assert_eq!(String::from("hello").approx_size_bytes(), 5);
        assert_eq!(Some(2.0f64).approx_size_bytes(), 9);
        assert_eq!(Option::<f64>::None.approx_size_bytes(), 1);
        assert_eq!((1.0f64, 7u8).approx_size_bytes(), 9);
    }

    #[test]
    fn stamped_arrival_adds_transport_latency() {
        let s = Stamped {
            publish_time: 10.0,
            sequence: 3,
            transport_latency: 0.25,
            message: 42u32,
        };
        assert!((s.arrival_time() - 10.25).abs() < 1e-12);
        assert_eq!(s.clone().into_inner(), 42);
        let mapped = s.map(|m| m as f64 * 2.0);
        assert_eq!(mapped.sequence, 3);
        assert!((mapped.message - 84.0).abs() < 1e-12);
    }

    #[test]
    fn default_type_name_is_the_rust_path() {
        assert!(String::type_name().contains("String"));
        assert!(<Vec<f64>>::type_name().contains("Vec"));
    }
}
