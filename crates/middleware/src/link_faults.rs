//! Link-level fault hooks for the message bus.
//!
//! A [`LinkFaultModel`] lets a test harness or fault-injection layer decide,
//! per published sample, whether the "wire" drops, duplicates or delays the
//! message. The bus consults the installed model exactly once per publish,
//! keyed by the topic and the topic-local sequence number, so a model that
//! is a pure function of `(topic, sequence)` makes the whole transport
//! bit-deterministic regardless of node scheduling.
//!
//! With no model installed (the default) the bus behaves exactly as before:
//! the hook is skipped entirely and delivery latencies are untouched, so
//! healthy runs stay bit-identical.

use crate::topic::TopicName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the simulated link does to one published sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDisposition {
    /// The sample is lost on the wire: no subscriber receives it and it is
    /// not retained for late joiners. The publisher still observes a
    /// successful publish (loss is silent, as on a real lossy link).
    pub drop: bool,
    /// Extra copies delivered to every subscriber beyond the original.
    pub duplicates: u32,
    /// Additional transport latency added to every delivered copy
    /// (seconds, non-negative).
    pub extra_delay: f64,
}

impl Default for LinkDisposition {
    fn default() -> Self {
        LinkDisposition {
            drop: false,
            duplicates: 0,
            extra_delay: 0.0,
        }
    }
}

impl LinkDisposition {
    /// A healthy link: deliver exactly once with no extra delay.
    pub fn healthy() -> Self {
        LinkDisposition::default()
    }

    /// `true` when the disposition leaves the sample untouched.
    pub fn is_healthy(&self) -> bool {
        !self.drop && self.duplicates == 0 && self.extra_delay <= 0.0
    }
}

/// A per-publish fault decision source installed on a [`crate::MessageBus`].
///
/// Implementations should be pure functions of `(topic, sequence)` (plus
/// their own fixed seed) so that fault injection is reproducible: the bus
/// guarantees it calls [`LinkFaultModel::disposition`] exactly once per
/// publish, in publish order per topic.
pub trait LinkFaultModel: Send + fmt::Debug {
    /// Decides what happens to the sample `sequence` on `topic`.
    fn disposition(&mut self, topic: &TopicName, sequence: u64) -> LinkDisposition;
}

/// Counters of what the installed [`LinkFaultModel`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultStats {
    /// Publishes for which the model was consulted.
    pub consulted: u64,
    /// Samples dropped on the wire.
    pub dropped: u64,
    /// Extra copies delivered (summed over subscribers).
    pub duplicated: u64,
    /// Samples that received extra transport delay.
    pub delayed: u64,
}

impl LinkFaultStats {
    /// Total fault events (drops + duplicate deliveries + delays).
    pub fn total_events(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disposition_is_healthy() {
        assert!(LinkDisposition::default().is_healthy());
        assert!(LinkDisposition::healthy().is_healthy());
        let lossy = LinkDisposition {
            drop: true,
            ..LinkDisposition::default()
        };
        assert!(!lossy.is_healthy());
    }

    #[test]
    fn stats_total_sums_event_kinds() {
        let stats = LinkFaultStats {
            consulted: 10,
            dropped: 2,
            duplicated: 3,
            delayed: 4,
        };
        assert_eq!(stats.total_events(), 9);
    }
}
