//! Error type shared by the middleware.

use std::fmt;

/// Errors returned by the middleware layer.
///
/// Every variant carries enough context (topic or node names, the offending
/// types) for the message to be actionable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiddlewareError {
    /// A topic name did not follow the `/segment/segment` grammar.
    InvalidTopicName {
        /// The rejected name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A node name was empty or contained separators.
    InvalidNodeName {
        /// The rejected name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A node with this name already exists on the bus.
    NodeNameTaken {
        /// The duplicated name.
        name: String,
    },
    /// A publisher or subscription was created on a topic that already
    /// carries a different message type.
    TypeMismatch {
        /// Topic on which the conflict occurred.
        topic: String,
        /// Type the topic already carries.
        existing: &'static str,
        /// Type the caller tried to attach.
        requested: &'static str,
    },
    /// A publish was attempted on a topic whose bus has been shut down.
    BusClosed,
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::InvalidTopicName { name, reason } => {
                write!(f, "invalid topic name `{name}`: {reason}")
            }
            MiddlewareError::InvalidNodeName { name, reason } => {
                write!(f, "invalid node name `{name}`: {reason}")
            }
            MiddlewareError::NodeNameTaken { name } => {
                write!(f, "a node named `{name}` already exists on this bus")
            }
            MiddlewareError::TypeMismatch {
                topic,
                existing,
                requested,
            } => write!(
                f,
                "topic `{topic}` carries `{existing}` but `{requested}` was requested"
            ),
            MiddlewareError::BusClosed => write!(f, "the message bus has been shut down"),
        }
    }
}

impl std::error::Error for MiddlewareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_names() {
        let e = MiddlewareError::TypeMismatch {
            topic: "/sensors/points".into(),
            existing: "PointCloudMsg",
            requested: "OdometryMsg",
        };
        let text = e.to_string();
        assert!(text.contains("/sensors/points"));
        assert!(text.contains("PointCloudMsg"));
        assert!(text.contains("OdometryMsg"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MiddlewareError::BusClosed, MiddlewareError::BusClosed);
        assert_ne!(
            MiddlewareError::BusClosed,
            MiddlewareError::NodeNameTaken { name: "x".into() }
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(MiddlewareError::BusClosed);
        assert!(!e.to_string().is_empty());
    }
}
