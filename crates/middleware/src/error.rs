//! Error type shared by the middleware.

use std::fmt;

/// Errors returned by the middleware layer.
///
/// Every variant carries enough context (topic or node names, the offending
/// types) for the message to be actionable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiddlewareError {
    /// A topic name did not follow the `/segment/segment` grammar.
    InvalidTopicName {
        /// The rejected name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A node name was empty or contained separators.
    InvalidNodeName {
        /// The rejected name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A node with this name already exists on the bus.
    NodeNameTaken {
        /// The duplicated name.
        name: String,
    },
    /// A publisher or subscription was created on a topic that already
    /// carries a different message type.
    TypeMismatch {
        /// Topic on which the conflict occurred.
        topic: String,
        /// Type the topic already carries.
        existing: &'static str,
        /// Type the caller tried to attach.
        requested: &'static str,
    },
    /// A publish was attempted on a topic whose bus has been shut down.
    BusClosed,
    /// An operation referenced a topic the bus has never seen.
    UnknownTopic {
        /// The missing topic.
        topic: String,
    },
    /// An operation referenced a subscription that does not exist on the
    /// topic — typically a handle used after its subscriber side was
    /// dropped mid-mission. Degrade (skip the sample), don't abort.
    UnknownSubscription {
        /// Topic the subscription was expected on.
        topic: String,
        /// The stale subscription id.
        id: u64,
    },
    /// A queued payload failed to downcast to the subscription's message
    /// type. The type is checked at registration, so this indicates
    /// internal queue corruption; the sample is dropped and reported
    /// rather than panicking the whole sweep.
    PayloadTypeCorrupted {
        /// Topic the corrupted sample was queued on.
        topic: String,
    },
}

/// Typed bus-level error — the middleware's single error type.
///
/// Alias of [`MiddlewareError`]: every hot-path operation (publish, take,
/// queue inspection) reports failures through these variants instead of
/// panicking, so a dropped subscriber or a corrupted queue degrades one
/// sample instead of aborting a whole mission sweep.
pub type BusError = MiddlewareError;

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::InvalidTopicName { name, reason } => {
                write!(f, "invalid topic name `{name}`: {reason}")
            }
            MiddlewareError::InvalidNodeName { name, reason } => {
                write!(f, "invalid node name `{name}`: {reason}")
            }
            MiddlewareError::NodeNameTaken { name } => {
                write!(f, "a node named `{name}` already exists on this bus")
            }
            MiddlewareError::TypeMismatch {
                topic,
                existing,
                requested,
            } => write!(
                f,
                "topic `{topic}` carries `{existing}` but `{requested}` was requested"
            ),
            MiddlewareError::BusClosed => write!(f, "the message bus has been shut down"),
            MiddlewareError::UnknownTopic { topic } => {
                write!(f, "topic `{topic}` does not exist on this bus")
            }
            MiddlewareError::UnknownSubscription { topic, id } => write!(
                f,
                "subscription {id} on `{topic}` no longer exists (subscriber dropped?)"
            ),
            MiddlewareError::PayloadTypeCorrupted { topic } => write!(
                f,
                "a sample queued on `{topic}` failed its type downcast (queue corruption)"
            ),
        }
    }
}

impl std::error::Error for MiddlewareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_names() {
        let e = MiddlewareError::TypeMismatch {
            topic: "/sensors/points".into(),
            existing: "PointCloudMsg",
            requested: "OdometryMsg",
        };
        let text = e.to_string();
        assert!(text.contains("/sensors/points"));
        assert!(text.contains("PointCloudMsg"));
        assert!(text.contains("OdometryMsg"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MiddlewareError::BusClosed, MiddlewareError::BusClosed);
        assert_ne!(
            MiddlewareError::BusClosed,
            MiddlewareError::NodeNameTaken { name: "x".into() }
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(MiddlewareError::BusClosed);
        assert!(!e.to_string().is_empty());
    }
}
