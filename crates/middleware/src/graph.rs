//! Node-graph introspection, the substitute for `rqt_graph` / `ros2 topic
//! info`.
//!
//! [`GraphInfo::snapshot`] captures the bus's current topology — nodes,
//! topics, message types, connectivity and per-topic traffic — as plain
//! data that experiments print and tests assert on. A Graphviz export is
//! provided for documentation.

use crate::bus::MessageBus;
use crate::latency::CommStats;
use crate::topic::TopicName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One topic's entry in the graph snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicInfo {
    /// The topic name.
    pub name: TopicName,
    /// Message type carried by the topic.
    pub type_name: String,
    /// Nodes publishing on the topic.
    pub publishers: Vec<String>,
    /// Nodes subscribed to the topic.
    pub subscribers: Vec<String>,
    /// Traffic statistics accumulated so far.
    pub stats: CommStats,
}

/// A point-in-time snapshot of the bus topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphInfo {
    /// Node names, sorted.
    pub nodes: Vec<String>,
    /// Topic entries, sorted by topic name.
    pub topics: Vec<TopicInfo>,
}

impl GraphInfo {
    /// Captures the current topology of `bus`.
    pub fn snapshot(bus: &MessageBus) -> Self {
        let connections = bus.node_connections();
        let nodes: Vec<String> = connections.keys().cloned().collect();

        let mut publishers_by_topic: BTreeMap<TopicName, Vec<String>> = BTreeMap::new();
        let mut subscribers_by_topic: BTreeMap<TopicName, Vec<String>> = BTreeMap::new();
        for (node, conn) in &connections {
            for topic in &conn.publishes {
                publishers_by_topic
                    .entry(topic.clone())
                    .or_default()
                    .push(node.clone());
            }
            for topic in &conn.subscribes {
                subscribers_by_topic
                    .entry(topic.clone())
                    .or_default()
                    .push(node.clone());
            }
        }

        let topics = bus
            .topic_names()
            .into_iter()
            .map(|name| TopicInfo {
                type_name: bus.topic_type(&name).unwrap_or("<unknown>").to_string(),
                publishers: publishers_by_topic.get(&name).cloned().unwrap_or_default(),
                subscribers: subscribers_by_topic.get(&name).cloned().unwrap_or_default(),
                stats: bus.topic_stats(&name),
                name,
            })
            .collect();

        GraphInfo { nodes, topics }
    }

    /// Looks up a topic entry by name.
    pub fn topic(&self, name: &str) -> Option<&TopicInfo> {
        self.topics.iter().find(|t| t.name.as_str() == name)
    }

    /// Total messages published across every topic.
    pub fn total_messages(&self) -> u64 {
        self.topics.iter().map(|t| t.stats.messages_published).sum()
    }

    /// Total payload bytes published across every topic.
    pub fn total_bytes(&self) -> u64 {
        self.topics.iter().map(|t| t.stats.bytes_published).sum()
    }

    /// Renders the graph in Graphviz DOT syntax: nodes as ellipses, topics
    /// as boxes, publish/subscribe edges between them.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph rosgraph {\n  rankdir=LR;\n");
        for node in &self.nodes {
            let _ = writeln!(out, "  \"{node}\" [shape=ellipse];");
        }
        for topic in &self.topics {
            let _ = writeln!(
                out,
                "  \"{}\" [shape=box, label=\"{}\\n{}\"];",
                topic.name, topic.name, topic.type_name
            );
            for publisher in &topic.publishers {
                let _ = writeln!(out, "  \"{publisher}\" -> \"{}\";", topic.name);
            }
            for subscriber in &topic.subscribers {
                let _ = writeln!(out, "  \"{}\" -> \"{subscriber}\";", topic.name);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders a compact plain-text table (one line per topic) for
    /// experiment logs.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<32} {:>4} {:>4} {:>10} {:>12} {:>10}",
            "topic", "pubs", "subs", "msgs", "bytes", "mean ms"
        );
        for topic in &self.topics {
            let _ = writeln!(
                out,
                "{:<32} {:>4} {:>4} {:>10} {:>12} {:>10.3}",
                topic.name.as_str(),
                topic.publishers.len(),
                topic.subscribers.len(),
                topic.stats.messages_published,
                topic.stats.bytes_published,
                topic.stats.mean_transport_latency() * 1e3,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::qos::QosProfile;

    fn sample_bus() -> MessageBus {
        let bus = MessageBus::default();
        let camera = Node::new(&bus, "camera").unwrap();
        let mapper = Node::new(&bus, "mapper").unwrap();
        let planner = Node::new(&bus, "planner").unwrap();
        let cloud_pub = camera.publisher::<Vec<f64>>("/sensors/points").unwrap();
        let _cloud_sub = mapper
            .subscribe::<Vec<f64>>("/sensors/points", QosProfile::sensor_data())
            .unwrap();
        let map_pub = mapper
            .publisher::<Vec<f64>>("/perception/planner_map")
            .unwrap();
        let _map_sub = planner
            .subscribe::<Vec<f64>>("/perception/planner_map", QosProfile::reliable(4))
            .unwrap();
        cloud_pub.publish(vec![0.0; 1000]).unwrap();
        cloud_pub.publish(vec![0.0; 1000]).unwrap();
        map_pub.publish(vec![0.0; 200]).unwrap();
        // Keep the subscriptions alive beyond this function by leaking them
        // into the bus? Not needed: the snapshot below is taken by the
        // caller while the subscriptions are still alive only for the
        // connectivity captured at registration time. For traffic stats the
        // publishes above already happened while they were alive.
        bus
    }

    #[test]
    fn snapshot_captures_nodes_topics_and_traffic() {
        let bus = MessageBus::default();
        let camera = Node::new(&bus, "camera").unwrap();
        let mapper = Node::new(&bus, "mapper").unwrap();
        let cloud_pub = camera.publisher::<Vec<f64>>("/sensors/points").unwrap();
        let cloud_sub = mapper
            .subscribe::<Vec<f64>>("/sensors/points", QosProfile::sensor_data())
            .unwrap();
        cloud_pub.publish(vec![0.0; 1024]).unwrap();

        let graph = GraphInfo::snapshot(&bus);
        assert_eq!(
            graph.nodes,
            vec!["camera".to_string(), "mapper".to_string()]
        );
        let topic = graph.topic("/sensors/points").expect("topic present");
        assert_eq!(topic.publishers, vec!["camera".to_string()]);
        assert_eq!(topic.subscribers, vec!["mapper".to_string()]);
        assert_eq!(topic.stats.messages_published, 1);
        assert_eq!(graph.total_messages(), 1);
        assert_eq!(graph.total_bytes(), 8 * 1024);
        drop(cloud_sub);
    }

    #[test]
    fn dot_export_contains_every_node_and_topic() {
        let bus = sample_bus();
        let graph = GraphInfo::snapshot(&bus);
        let dot = graph.to_dot();
        assert!(dot.starts_with("digraph"));
        for node in ["camera", "mapper", "planner"] {
            assert!(dot.contains(node), "missing node {node}");
        }
        assert!(dot.contains("/sensors/points"));
        assert!(dot.contains("/perception/planner_map"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn table_lists_one_line_per_topic() {
        let bus = sample_bus();
        let graph = GraphInfo::snapshot(&bus);
        let table = graph.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 1 + graph.topics.len());
        assert!(lines[0].contains("topic"));
    }

    #[test]
    fn missing_topic_lookup_returns_none() {
        let bus = sample_bus();
        let graph = GraphInfo::snapshot(&bus);
        assert!(graph.topic("/does/not_exist").is_none());
    }
}
