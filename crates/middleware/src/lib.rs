//! A minimal, deterministic ROS-like middleware substrate.
//!
//! The RoboRun paper implements its runtime "on top of the Robot Operating
//! System (ROS), which provides inter-process communication and common
//! robotics libraries" (Section III-A). This crate is the reproduction's
//! substitute for that transport layer: an in-process publish/subscribe
//! middleware with the pieces the navigation pipeline actually relies on —
//!
//! * [`MessageBus`] — topic registry, keep-last delivery queues, simulated
//!   time stamping and per-topic traffic statistics.
//! * [`Node`], [`Publisher`], [`Subscription`] — the user-facing handles,
//!   typed end to end.
//! * [`QosProfile`] — keep-last depth, reliability and durability (latched
//!   topics), mirroring the ROS 2 QoS vocabulary the pipeline would use.
//! * [`Executor`] — a deterministic single-threaded executor over simulated
//!   time with tasks and periodic timers.
//! * [`CommLatencyModel`] — the transport-cost model behind the "comm"
//!   slices of the paper's Fig. 11 latency breakdown.
//! * [`GraphInfo`] — `rqt_graph`-style introspection of the node graph.
//! * [`BagIndex`] / [`TypedBag`] — `rosbag`-style recording and playback.
//!
//! Everything is deterministic: time only advances when the caller says so,
//! and delivery order equals publish order.
//!
//! # Example
//!
//! ```
//! use roborun_middleware::{MessageBus, Node, QosProfile};
//!
//! let bus = MessageBus::default();
//! let camera = Node::new(&bus, "camera")?;
//! let mapper = Node::new(&bus, "mapper")?;
//!
//! let points = camera.publisher::<Vec<f64>>("/sensors/points")?;
//! let cloud_in = mapper.subscribe::<Vec<f64>>("/sensors/points", QosProfile::sensor_data())?;
//!
//! bus.set_time(1.0);
//! points.publish(vec![1.0, 2.0, 3.0])?;
//! let sample = cloud_in.try_recv().expect("a sample is queued");
//! assert_eq!(sample.message, vec![1.0, 2.0, 3.0]);
//! assert!(sample.arrival_time() >= 1.0);
//! # Ok::<(), roborun_middleware::MiddlewareError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod error;
pub mod executor;
pub mod graph;
pub mod latency;
pub mod link_faults;
pub mod message;
pub mod node;
pub mod qos;
pub mod record;
pub mod topic;

pub use bus::{MessageBus, NodeConnections, PublishReceipt};
pub use error::{BusError, MiddlewareError};
pub use executor::Executor;
pub use graph::{GraphInfo, TopicInfo};
pub use latency::{CommLatencyModel, CommStats};
pub use link_faults::{LinkDisposition, LinkFaultModel, LinkFaultStats};
pub use message::{Message, Stamped};
pub use node::{Node, Publisher, Subscription};
pub use qos::{Durability, QosProfile, Reliability};
pub use record::{BagEntry, BagIndex, TypedBag};
pub use topic::TopicName;
