//! Topic names and their validation.
//!
//! Topic names follow the ROS convention: absolute, slash-separated
//! segments of lower-case alphanumerics and underscores, e.g.
//! `/perception/planner_map`. Validating names eagerly keeps typos from
//! silently creating a second, disconnected topic.

use crate::error::MiddlewareError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, absolute topic name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TopicName(String);

impl TopicName {
    /// Parses and validates a topic name.
    ///
    /// # Errors
    ///
    /// Returns [`MiddlewareError::InvalidTopicName`] when the name is empty,
    /// not absolute (missing the leading `/`), has empty segments, or
    /// contains characters outside `[a-z0-9_]`.
    pub fn new(name: &str) -> Result<Self, MiddlewareError> {
        let reject = |reason: &str| MiddlewareError::InvalidTopicName {
            name: name.to_string(),
            reason: reason.to_string(),
        };
        if name.is_empty() {
            return Err(reject("name is empty"));
        }
        if !name.starts_with('/') {
            return Err(reject("topic names must be absolute (start with `/`)"));
        }
        if name.len() == 1 {
            return Err(reject("`/` alone is not a topic"));
        }
        if name.ends_with('/') {
            return Err(reject("trailing `/` creates an empty segment"));
        }
        for segment in name[1..].split('/') {
            if segment.is_empty() {
                return Err(reject("empty segment (`//`)"));
            }
            if !segment
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                return Err(reject(
                    "segments may only contain lower-case letters, digits and `_`",
                ));
            }
            if segment.starts_with(|c: char| c.is_ascii_digit()) {
                return Err(reject("segments must not start with a digit"));
            }
        }
        Ok(TopicName(name.to_string()))
    }

    /// The full name, including the leading `/`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The name's slash-separated segments (without the leading `/`).
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0[1..].split('/')
    }

    /// The namespace: everything up to the last segment, or `/` for
    /// single-segment topics.
    pub fn namespace(&self) -> &str {
        match self.0.rfind('/') {
            Some(0) | None => "/",
            Some(idx) => &self.0[..idx],
        }
    }

    /// The last segment of the name.
    pub fn base_name(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }
}

impl fmt::Display for TopicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TopicName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl std::str::FromStr for TopicName {
    type Err = MiddlewareError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TopicName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_names() {
        for name in [
            "/points",
            "/sensors/points",
            "/perception/planner_map",
            "/runtime/policy_2",
            "/a/b/c/d",
        ] {
            assert!(TopicName::new(name).is_ok(), "{name} should be accepted");
        }
    }

    #[test]
    fn rejects_malformed_names() {
        for name in [
            "",
            "/",
            "points",
            "/Points",
            "/sensors//points",
            "/sensors/points/",
            "/sensors/3d_points",
            "/sensors/points!",
            "/sensors/point cloud",
        ] {
            assert!(TopicName::new(name).is_err(), "{name} should be rejected");
        }
    }

    #[test]
    fn accessors_split_the_name() {
        let t = TopicName::new("/perception/planner_map").unwrap();
        assert_eq!(t.as_str(), "/perception/planner_map");
        assert_eq!(t.namespace(), "/perception");
        assert_eq!(t.base_name(), "planner_map");
        assert_eq!(
            t.segments().collect::<Vec<_>>(),
            vec!["perception", "planner_map"]
        );

        let single = TopicName::new("/odom").unwrap();
        assert_eq!(single.namespace(), "/");
        assert_eq!(single.base_name(), "odom");
    }

    #[test]
    fn from_str_round_trips_display() {
        let t: TopicName = "/runtime/policy".parse().unwrap();
        assert_eq!(t.to_string(), "/runtime/policy");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = TopicName::new("/a").unwrap();
        let b = TopicName::new("/b").unwrap();
        assert!(a < b);
    }
}
