//! A deterministic single-threaded executor over simulated time.
//!
//! The executor owns a set of named *tasks* (closures that typically drain
//! a [`crate::Subscription`] and publish results) and *timers* (closures
//! fired on a fixed simulated period). Each [`Executor::spin_once`] call
//! advances the bus clock, fires due timers in registration order and then
//! runs every task once — exactly the processing model a single-threaded
//! ROS executor provides, minus the wall-clock nondeterminism.

use crate::bus::MessageBus;

/// A closure invoked with the current simulation time (seconds).
pub type Callback = Box<dyn FnMut(f64) + Send>;

struct TaskEntry {
    name: String,
    callback: Callback,
    invocations: u64,
}

struct TimerEntry {
    name: String,
    period: f64,
    next_fire: f64,
    callback: Callback,
    invocations: u64,
    missed: u64,
}

/// Single-threaded, simulated-time executor.
pub struct Executor {
    bus: MessageBus,
    tasks: Vec<TaskEntry>,
    timers: Vec<TimerEntry>,
    steps: u64,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field(
                "tasks",
                &self
                    .tasks
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field(
                "timers",
                &self
                    .timers
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("steps", &self.steps)
            .finish()
    }
}

impl Executor {
    /// Creates an executor driving the given bus's clock.
    pub fn new(bus: &MessageBus) -> Self {
        Executor {
            bus: bus.clone(),
            tasks: Vec::new(),
            timers: Vec::new(),
            steps: 0,
        }
    }

    /// The bus whose clock this executor advances.
    pub fn bus(&self) -> &MessageBus {
        &self.bus
    }

    /// Registers a task run once per spin, in registration order.
    pub fn add_task(&mut self, name: &str, callback: impl FnMut(f64) + Send + 'static) {
        self.tasks.push(TaskEntry {
            name: name.to_string(),
            callback: Box::new(callback),
            invocations: 0,
        });
    }

    /// Registers a timer fired every `period` simulated seconds (the first
    /// firing happens once the clock reaches `period`).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn add_timer(
        &mut self,
        name: &str,
        period: f64,
        callback: impl FnMut(f64) + Send + 'static,
    ) {
        assert!(period > 0.0, "timer period must be positive, got {period}");
        let now = self.bus.now();
        self.timers.push(TimerEntry {
            name: name.to_string(),
            period,
            next_fire: now + period,
            callback: Box::new(callback),
            invocations: 0,
            missed: 0,
        });
    }

    /// Advances simulated time by `dt` seconds, fires due timers, then runs
    /// every task once. Returns the new simulation time.
    pub fn spin_once(&mut self, dt: f64) -> f64 {
        self.bus.advance_time(dt);
        let now = self.bus.now();
        self.steps += 1;

        for timer in &mut self.timers {
            if now + 1e-12 >= timer.next_fire {
                (timer.callback)(now);
                timer.invocations += 1;
                timer.next_fire += timer.period;
                // If the step jumped over several periods, account for the
                // missed firings but only invoke the callback once — the
                // same "fire once, catch up the phase" policy a wall-clock
                // executor under overload exhibits.
                while now + 1e-12 >= timer.next_fire {
                    timer.missed += 1;
                    timer.next_fire += timer.period;
                }
            }
        }
        for task in &mut self.tasks {
            (task.callback)(now);
            task.invocations += 1;
        }
        now
    }

    /// Spins with a fixed step until the bus clock reaches `t_end` or the
    /// bus is shut down. Returns the number of spins executed.
    pub fn spin_until(&mut self, t_end: f64, dt: f64) -> u64 {
        assert!(dt > 0.0, "spin step must be positive, got {dt}");
        let mut spins = 0;
        while self.bus.now() + 1e-12 < t_end && !self.bus.is_shutdown() {
            self.spin_once(dt);
            spins += 1;
        }
        spins
    }

    /// Spins exactly `n` steps of `dt` seconds (stops early on shutdown).
    /// Returns the number of spins executed.
    pub fn spin_steps(&mut self, n: u64, dt: f64) -> u64 {
        let mut spins = 0;
        for _ in 0..n {
            if self.bus.is_shutdown() {
                break;
            }
            self.spin_once(dt);
            spins += 1;
        }
        spins
    }

    /// Total spins executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of times the named task has run (`None` if unknown).
    pub fn task_invocations(&self, name: &str) -> Option<u64> {
        self.tasks
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.invocations)
    }

    /// Number of times the named timer has fired (`None` if unknown).
    pub fn timer_invocations(&self, name: &str) -> Option<u64> {
        self.timers
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.invocations)
    }

    /// Number of firings the named timer skipped because a spin step jumped
    /// over more than one period (`None` if unknown).
    pub fn timer_missed(&self, name: &str) -> Option<u64> {
        self.timers
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.missed)
    }

    /// Names of the registered tasks, in execution order.
    pub fn task_names(&self) -> Vec<&str> {
        self.tasks.iter().map(|t| t.name.as_str()).collect()
    }

    /// Names of the registered timers, in registration order.
    pub fn timer_names(&self) -> Vec<&str> {
        self.timers.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use crate::qos::QosProfile;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn tasks_run_once_per_spin_in_registration_order() {
        let bus = MessageBus::with_free_transport();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut executor = Executor::new(&bus);
        for name in ["first", "second", "third"] {
            let order = Arc::clone(&order);
            executor.add_task(name, move |_| order.lock().unwrap().push(name));
        }
        executor.spin_once(0.1);
        executor.spin_once(0.1);
        let seen = order.lock().unwrap().clone();
        assert_eq!(
            seen,
            vec!["first", "second", "third", "first", "second", "third"]
        );
        assert_eq!(executor.task_invocations("second"), Some(2));
        assert_eq!(executor.steps(), 2);
    }

    #[test]
    fn timers_fire_on_their_period() {
        let bus = MessageBus::with_free_transport();
        let count = Arc::new(AtomicU64::new(0));
        let mut executor = Executor::new(&bus);
        let c = Arc::clone(&count);
        executor.add_timer("heartbeat", 1.0, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        // 10 spins of 0.25 s = 2.5 s → the 1 Hz timer fires at t=1.0 and 2.0.
        executor.spin_steps(10, 0.25);
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(executor.timer_invocations("heartbeat"), Some(2));
        assert_eq!(executor.timer_missed("heartbeat"), Some(0));
    }

    #[test]
    fn oversized_steps_fire_once_and_record_missed_periods() {
        let bus = MessageBus::with_free_transport();
        let count = Arc::new(AtomicU64::new(0));
        let mut executor = Executor::new(&bus);
        let c = Arc::clone(&count);
        executor.add_timer("fast", 0.1, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        executor.spin_once(1.05); // jumps over ~10 periods
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert!(executor.timer_missed("fast").unwrap() >= 8);
    }

    #[test]
    fn spin_until_reaches_the_requested_time() {
        let bus = MessageBus::with_free_transport();
        let mut executor = Executor::new(&bus);
        executor.add_task("noop", |_| {});
        let spins = executor.spin_until(2.0, 0.5);
        assert_eq!(spins, 4);
        assert!((bus.now() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shutdown_stops_spinning() {
        let bus = MessageBus::with_free_transport();
        let mut executor = Executor::new(&bus);
        let bus_for_task = bus.clone();
        executor.add_task("stopper", move |now| {
            if now >= 1.0 {
                bus_for_task.shutdown();
            }
        });
        let spins = executor.spin_until(100.0, 0.5);
        assert!(spins <= 3, "executor spun {spins} times after shutdown");
        assert!(bus.is_shutdown());
    }

    #[test]
    fn a_task_can_pump_messages_between_nodes() {
        let bus = MessageBus::with_free_transport();
        let source = Node::new(&bus, "source").unwrap();
        let sink = Node::new(&bus, "sink").unwrap();
        let publisher = source.publisher::<u64>("/ticks").unwrap();
        let subscription = sink
            .subscribe::<u64>("/ticks", QosProfile::reliable(32))
            .unwrap();
        let received = Arc::new(AtomicU64::new(0));

        let mut executor = Executor::new(&bus);
        let mut tick = 0u64;
        executor.add_task("producer", move |_| {
            publisher.publish(tick).unwrap();
            tick += 1;
        });
        let received_in_task = Arc::clone(&received);
        executor.add_task("consumer", move |_| {
            while subscription.try_recv().is_some() {
                received_in_task.fetch_add(1, Ordering::SeqCst);
            }
        });

        executor.spin_steps(20, 0.1);
        assert_eq!(received.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "timer period must be positive")]
    fn zero_period_timer_panics() {
        let bus = MessageBus::default();
        let mut executor = Executor::new(&bus);
        executor.add_timer("bad", 0.0, |_| {});
    }
}
