//! Communication-latency model and per-topic transport statistics.
//!
//! The paper's Fig. 11 breaks each decision's end-to-end latency into
//! computation stages (shades of red) and *communication* hops (shades of
//! blue) — the cost of moving point clouds, maps and trajectories between
//! ROS nodes. This module provides the substitute for that transport cost:
//! a simple affine model in the payload size, with a surcharge for reliable
//! delivery, plus the bookkeeping needed to report per-topic traffic.

use crate::qos::{QosProfile, Reliability};
use serde::{Deserialize, Serialize};

/// Affine model of one hop's transport latency.
///
/// `latency = base + per_kilobyte · size_kB`, multiplied by
/// `1 + reliable_overhead` for reliable subscriptions. The defaults are
/// calibrated so that a full-resolution point cloud (hundreds of kilobytes)
/// costs tens of milliseconds — the same order as the "comm" slices in the
/// paper's latency breakdown — while a small policy message is essentially
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommLatencyModel {
    /// Fixed per-message cost (seconds): serialization setup, scheduling.
    pub base: f64,
    /// Cost per kilobyte of payload (seconds/kB).
    pub per_kilobyte: f64,
    /// Fractional surcharge for [`Reliability::Reliable`] delivery
    /// (acknowledgements, retransmission budget).
    pub reliable_overhead: f64,
}

impl Default for CommLatencyModel {
    fn default() -> Self {
        CommLatencyModel {
            base: 2.0e-4,
            per_kilobyte: 8.0e-5,
            reliable_overhead: 0.25,
        }
    }
}

impl CommLatencyModel {
    /// A model in which every transfer is free. Useful for tests that want
    /// deterministic zero-latency delivery.
    pub fn free() -> Self {
        CommLatencyModel {
            base: 0.0,
            per_kilobyte: 0.0,
            reliable_overhead: 0.0,
        }
    }

    /// Transport latency of a single message of `bytes` payload under the
    /// given QoS profile (seconds).
    pub fn transfer_latency(&self, bytes: usize, qos: &QosProfile) -> f64 {
        let kilobytes = bytes as f64 / 1024.0;
        let raw = self.base + self.per_kilobyte * kilobytes;
        match qos.reliability {
            Reliability::Reliable => raw * (1.0 + self.reliable_overhead),
            Reliability::BestEffort => raw,
        }
    }
}

/// Accumulated transport statistics for one topic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages published on the topic.
    pub messages_published: u64,
    /// Message deliveries (one per subscription that received a sample).
    pub deliveries: u64,
    /// Samples dropped because a subscription queue was full.
    pub drops: u64,
    /// Total payload bytes published.
    pub bytes_published: u64,
    /// Total transport latency charged across all deliveries (seconds).
    pub total_transport_latency: f64,
}

impl CommStats {
    /// Records one publish of `bytes` payload delivered to `deliveries`
    /// subscriptions with `dropped` older samples evicted, each delivery
    /// charged `latency` seconds.
    pub fn record_publish(&mut self, bytes: usize, deliveries: u64, dropped: u64, latency: f64) {
        self.messages_published += 1;
        self.deliveries += deliveries;
        self.drops += dropped;
        self.bytes_published += bytes as u64;
        self.total_transport_latency += latency * deliveries as f64;
    }

    /// Mean transport latency per delivery (seconds), 0 if nothing was
    /// delivered yet.
    pub fn mean_transport_latency(&self) -> f64 {
        if self.deliveries == 0 {
            0.0
        } else {
            self.total_transport_latency / self.deliveries as f64
        }
    }

    /// Mean payload size per published message (bytes), 0 before the first
    /// publish.
    pub fn mean_message_bytes(&self) -> f64 {
        if self.messages_published == 0 {
            0.0
        } else {
            self.bytes_published as f64 / self.messages_published as f64
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CommStats) {
        self.messages_published += other.messages_published;
        self.deliveries += other.deliveries;
        self.drops += other.drops;
        self.bytes_published += other.bytes_published;
        self.total_transport_latency += other.total_transport_latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_payload_size() {
        let model = CommLatencyModel::default();
        let qos = QosProfile::default();
        let small = model.transfer_latency(100, &qos);
        let large = model.transfer_latency(500_000, &qos);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn reliable_costs_more_than_best_effort() {
        let model = CommLatencyModel::default();
        let reliable = model.transfer_latency(10_000, &QosProfile::reliable(5));
        let best_effort = model.transfer_latency(10_000, &QosProfile::sensor_data());
        assert!(reliable > best_effort);
        let expected_ratio = 1.0 + model.reliable_overhead;
        assert!((reliable / best_effort - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn free_model_charges_nothing() {
        let model = CommLatencyModel::free();
        assert_eq!(model.transfer_latency(1 << 20, &QosProfile::default()), 0.0);
    }

    #[test]
    fn point_cloud_scale_payload_costs_tens_of_milliseconds() {
        // ~300 kB point cloud — the order of a 6-camera scan.
        let model = CommLatencyModel::default();
        let latency = model.transfer_latency(300 * 1024, &QosProfile::sensor_data());
        assert!(latency > 0.005 && latency < 0.2, "latency {latency}");
    }

    #[test]
    fn stats_accumulate_and_average() {
        let mut stats = CommStats::default();
        stats.record_publish(1000, 2, 0, 0.01);
        stats.record_publish(3000, 2, 1, 0.02);
        assert_eq!(stats.messages_published, 2);
        assert_eq!(stats.deliveries, 4);
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.bytes_published, 4000);
        assert!((stats.mean_message_bytes() - 2000.0).abs() < 1e-9);
        assert!((stats.mean_transport_latency() - 0.015).abs() < 1e-9);

        let mut merged = CommStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.messages_published, 4);
        assert_eq!(merged.deliveries, 8);
    }

    #[test]
    fn empty_stats_have_zero_averages() {
        let stats = CommStats::default();
        assert_eq!(stats.mean_transport_latency(), 0.0);
        assert_eq!(stats.mean_message_bytes(), 0.0);
    }
}
