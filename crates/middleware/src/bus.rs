//! The message bus: the in-process substitute for the ROS transport layer.
//!
//! A [`MessageBus`] owns every topic, routes published samples into
//! per-subscription keep-last queues, stamps them with simulated time and a
//! transport latency from the [`CommLatencyModel`], and keeps per-topic
//! traffic statistics. Nodes ([`crate::Node`]) are thin handles onto the
//! bus; all shared state lives here behind one mutex so that the middleware
//! is `Send + Sync` while remaining fully deterministic when driven from a
//! single thread (the configuration every test and experiment uses).

use crate::error::MiddlewareError;
use crate::latency::{CommLatencyModel, CommStats};
use crate::link_faults::{LinkDisposition, LinkFaultModel, LinkFaultStats};
use crate::message::{Message, Stamped};
use crate::qos::{Durability, QosProfile};
use crate::topic::TopicName;
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Receipt returned by a successful publish.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishReceipt {
    /// Sequence number assigned to the sample (per topic, from 0).
    pub sequence: u64,
    /// Number of subscriptions the sample was delivered to.
    pub deliveries: usize,
    /// Older samples evicted from full subscription queues by this publish.
    pub evictions: usize,
    /// Largest transport latency charged to any subscription (seconds).
    pub max_transport_latency: f64,
}

/// Per-node connectivity used by graph introspection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeConnections {
    /// Topics the node publishes on.
    pub publishes: BTreeSet<TopicName>,
    /// Topics the node subscribes to.
    pub subscribes: BTreeSet<TopicName>,
}

#[derive(Debug)]
struct SubscriptionSlot {
    id: u64,
    qos: QosProfile,
    queue: VecDeque<Box<dyn Any + Send>>,
    evictions: u64,
    active: bool,
}

#[derive(Debug)]
struct TopicState {
    type_id: TypeId,
    type_name: &'static str,
    next_sequence: u64,
    publisher_nodes: Vec<String>,
    subscriptions: Vec<SubscriptionSlot>,
    retained: Option<Box<dyn Any + Send>>,
    stats: CommStats,
}

#[derive(Debug)]
struct BusInner {
    now: f64,
    comm_model: CommLatencyModel,
    topics: BTreeMap<TopicName, TopicState>,
    nodes: BTreeMap<String, NodeConnections>,
    next_subscription_id: u64,
    closed: bool,
    link_faults: Option<Box<dyn LinkFaultModel>>,
    link_fault_stats: LinkFaultStats,
}

/// The in-process publish/subscribe bus.
///
/// Cloning a `MessageBus` is cheap and yields another handle onto the same
/// shared state, so nodes, publishers and subscriptions can be moved freely
/// between owners.
#[derive(Debug, Clone)]
pub struct MessageBus {
    inner: Arc<Mutex<BusInner>>,
}

impl Default for MessageBus {
    fn default() -> Self {
        MessageBus::new(CommLatencyModel::default())
    }
}

impl MessageBus {
    /// Creates a bus with the given communication-latency model.
    pub fn new(comm_model: CommLatencyModel) -> Self {
        MessageBus {
            inner: Arc::new(Mutex::new(BusInner {
                now: 0.0,
                comm_model,
                topics: BTreeMap::new(),
                nodes: BTreeMap::new(),
                next_subscription_id: 0,
                closed: false,
                link_faults: None,
                link_fault_stats: LinkFaultStats::default(),
            })),
        }
    }

    /// Installs a [`LinkFaultModel`] consulted once per publish. Replaces
    /// any previously installed model (and its statistics). With no model
    /// installed the bus is a perfect transport and behaves bit-identically
    /// to a bus that never had one.
    pub fn install_link_faults(&self, model: Box<dyn LinkFaultModel>) {
        let mut inner = self.lock();
        inner.link_faults = Some(model);
        inner.link_fault_stats = LinkFaultStats::default();
    }

    /// Counters of what the installed link-fault model has done so far
    /// (all zero when no model is installed).
    pub fn link_fault_stats(&self) -> LinkFaultStats {
        self.lock().link_fault_stats
    }

    /// Creates a bus whose transport is free (useful in tests).
    pub fn with_free_transport() -> Self {
        MessageBus::new(CommLatencyModel::free())
    }

    /// Current simulation time on the bus (seconds).
    pub fn now(&self) -> f64 {
        self.lock().now
    }

    /// Sets the simulation time used to stamp publishes.
    ///
    /// Time never moves backwards: attempts to rewind are clamped to the
    /// current time.
    pub fn set_time(&self, time: f64) {
        let mut inner = self.lock();
        if time > inner.now {
            inner.now = time;
        }
    }

    /// Advances the simulation time by `dt` seconds (negative values are
    /// ignored).
    pub fn advance_time(&self, dt: f64) {
        if dt > 0.0 {
            let mut inner = self.lock();
            inner.now += dt;
        }
    }

    /// Shuts the bus down; subsequent publishes fail with
    /// [`MiddlewareError::BusClosed`]. Already-queued samples can still be
    /// taken by subscribers.
    pub fn shutdown(&self) {
        self.lock().closed = true;
    }

    /// `true` once [`MessageBus::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().closed
    }

    /// The communication-latency model in force.
    pub fn comm_model(&self) -> CommLatencyModel {
        self.lock().comm_model
    }

    /// Names of every topic that has at least one publisher or
    /// subscription, in lexicographic order.
    pub fn topic_names(&self) -> Vec<TopicName> {
        self.lock().topics.keys().cloned().collect()
    }

    /// The message type name carried by a topic, if the topic exists.
    pub fn topic_type(&self, topic: &TopicName) -> Option<&'static str> {
        self.lock().topics.get(topic).map(|t| t.type_name)
    }

    /// Traffic statistics for one topic (zeroed default if the topic does
    /// not exist).
    pub fn topic_stats(&self, topic: &TopicName) -> CommStats {
        self.lock()
            .topics
            .get(topic)
            .map(|t| t.stats)
            .unwrap_or_default()
    }

    /// Traffic statistics for every topic.
    pub fn all_stats(&self) -> BTreeMap<TopicName, CommStats> {
        self.lock()
            .topics
            .iter()
            .map(|(name, state)| (name.clone(), state.stats))
            .collect()
    }

    /// Sum of the transport latency charged across every delivery on every
    /// topic since the bus was created (seconds).
    pub fn total_transport_latency(&self) -> f64 {
        self.lock()
            .topics
            .values()
            .map(|t| t.stats.total_transport_latency)
            .sum()
    }

    /// Registered node names and their topic connectivity.
    pub fn node_connections(&self) -> BTreeMap<String, NodeConnections> {
        self.lock().nodes.clone()
    }

    /// Number of publishers currently registered on a topic.
    pub fn publisher_count(&self, topic: &TopicName) -> usize {
        self.lock()
            .topics
            .get(topic)
            .map(|t| t.publisher_nodes.len())
            .unwrap_or(0)
    }

    /// Number of active subscriptions on a topic.
    pub fn subscription_count(&self, topic: &TopicName) -> usize {
        self.lock()
            .topics
            .get(topic)
            .map(|t| t.subscriptions.iter().filter(|s| s.active).count())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // crate-internal plumbing used by Node / Publisher / Subscription
    // ------------------------------------------------------------------

    fn lock(&self) -> std::sync::MutexGuard<'_, BusInner> {
        // A poisoned mutex can only result from a panic inside the bus
        // itself; recovering the inner state keeps unrelated tests honest.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_node(&self, name: &str) -> Result<(), MiddlewareError> {
        validate_node_name(name)?;
        let mut inner = self.lock();
        if inner.nodes.contains_key(name) {
            return Err(MiddlewareError::NodeNameTaken {
                name: name.to_string(),
            });
        }
        inner
            .nodes
            .insert(name.to_string(), NodeConnections::default());
        Ok(())
    }

    pub(crate) fn register_publisher<T: Message>(
        &self,
        node: &str,
        topic: &TopicName,
    ) -> Result<(), MiddlewareError> {
        let mut inner = self.lock();
        let state = ensure_topic::<T>(&mut inner.topics, topic)?;
        state.publisher_nodes.push(node.to_string());
        if let Some(conn) = inner.nodes.get_mut(node) {
            conn.publishes.insert(topic.clone());
        }
        Ok(())
    }

    pub(crate) fn unregister_publisher(&self, node: &str, topic: &TopicName) {
        let mut inner = self.lock();
        if let Some(state) = inner.topics.get_mut(topic) {
            if let Some(idx) = state.publisher_nodes.iter().position(|n| n == node) {
                state.publisher_nodes.remove(idx);
            }
        }
    }

    pub(crate) fn register_subscription<T: Message>(
        &self,
        node: &str,
        topic: &TopicName,
        qos: QosProfile,
    ) -> Result<u64, MiddlewareError> {
        let mut inner = self.lock();
        let id = inner.next_subscription_id;
        inner.next_subscription_id += 1;
        let comm_model = inner.comm_model;
        let state = ensure_topic::<T>(&mut inner.topics, topic)?;
        let mut slot = SubscriptionSlot {
            id,
            qos,
            queue: VecDeque::new(),
            evictions: 0,
            active: true,
        };
        // Latched topics re-deliver the retained sample to late joiners.
        if qos.durability == Durability::TransientLocal {
            if let Some(retained) = state.retained.as_ref() {
                if let Some(sample) = retained.downcast_ref::<Stamped<T>>() {
                    let mut sample = sample.clone();
                    sample.transport_latency =
                        comm_model.transfer_latency(sample.message.approx_size_bytes(), &qos);
                    slot.queue.push_back(Box::new(sample));
                }
            }
        }
        state.subscriptions.push(slot);
        if let Some(conn) = inner.nodes.get_mut(node) {
            conn.subscribes.insert(topic.clone());
        }
        Ok(id)
    }

    pub(crate) fn unregister_subscription(&self, topic: &TopicName, id: u64) {
        let mut inner = self.lock();
        if let Some(state) = inner.topics.get_mut(topic) {
            if let Some(slot) = state.subscriptions.iter_mut().find(|s| s.id == id) {
                slot.active = false;
                slot.queue.clear();
            }
        }
    }

    pub(crate) fn publish<T: Message>(
        &self,
        topic: &TopicName,
        message: T,
    ) -> Result<PublishReceipt, MiddlewareError> {
        let trace_timer = roborun_trace::timer();
        let mut guard = self.lock();
        let inner = &mut *guard;
        if inner.closed {
            return Err(MiddlewareError::BusClosed);
        }
        let now = inner.now;
        let comm_model = inner.comm_model;
        let state = inner
            .topics
            .get_mut(topic)
            .filter(|s| s.type_id == TypeId::of::<T>())
            .ok_or_else(|| MiddlewareError::TypeMismatch {
                topic: topic.to_string(),
                existing: "<unregistered>",
                requested: T::type_name(),
            })?;

        let sequence = state.next_sequence;
        state.next_sequence += 1;
        let bytes = message.approx_size_bytes();

        // One fault decision per publish, keyed by (topic, sequence), so a
        // pure-function model keeps the transport bit-deterministic.
        let disposition = match inner.link_faults.as_mut() {
            Some(model) => {
                inner.link_fault_stats.consulted += 1;
                model.disposition(topic, sequence)
            }
            None => LinkDisposition::healthy(),
        };
        if disposition.drop {
            // Lost on the wire: the publisher sees a successful publish but
            // nothing is delivered or retained.
            inner.link_fault_stats.dropped += 1;
            state.stats.record_publish(bytes, 0, 0, 0.0);
            return Ok(PublishReceipt {
                sequence,
                deliveries: 0,
                evictions: 0,
                max_transport_latency: 0.0,
            });
        }
        let copies = 1 + disposition.duplicates as usize;
        let delayed = disposition.extra_delay > 0.0;

        let mut deliveries = 0usize;
        let mut evictions = 0usize;
        let mut latency_sum = 0.0;
        let mut max_latency = 0.0f64;
        for slot in state.subscriptions.iter_mut().filter(|s| s.active) {
            let base_latency = comm_model.transfer_latency(bytes, &slot.qos);
            let latency = if delayed {
                base_latency + disposition.extra_delay
            } else {
                base_latency
            };
            for copy in 0..copies {
                let sample = Stamped {
                    publish_time: now,
                    sequence,
                    transport_latency: latency,
                    message: message.clone(),
                };
                if slot.queue.len() >= slot.qos.depth {
                    slot.queue.pop_front();
                    slot.evictions += 1;
                    evictions += 1;
                }
                slot.queue.push_back(Box::new(sample));
                deliveries += 1;
                latency_sum += latency;
                max_latency = max_latency.max(latency);
                if copy > 0 {
                    inner.link_fault_stats.duplicated += 1;
                }
            }
            if delayed {
                inner.link_fault_stats.delayed += 1;
            }
        }

        let mean_latency = if deliveries > 0 {
            latency_sum / deliveries as f64
        } else {
            0.0
        };
        state
            .stats
            .record_publish(bytes, deliveries as u64, evictions as u64, mean_latency);
        if roborun_trace::armed() {
            let depth: usize = state
                .subscriptions
                .iter()
                .filter(|s| s.active)
                .map(|s| s.queue.len())
                .sum();
            roborun_trace::collector::complete_labeled(
                roborun_trace::SpanKind::BusPublish,
                topic.as_str(),
                now,
                mean_latency,
                roborun_trace::timer_ns(&trace_timer),
                &[
                    ("bytes", bytes as f64),
                    ("sequence", sequence as f64),
                    ("deliveries", deliveries as f64),
                    ("evictions", evictions as f64),
                ],
            );
            roborun_trace::collector::counter(
                roborun_trace::SpanKind::QueueDepth,
                topic.as_str(),
                now,
                depth as f64,
            );
        }

        // Retain the last sample for TransientLocal late joiners.
        state.retained = Some(Box::new(Stamped {
            publish_time: now,
            sequence,
            transport_latency: 0.0,
            message,
        }));

        Ok(PublishReceipt {
            sequence,
            deliveries,
            evictions,
            max_transport_latency: max_latency,
        })
    }

    /// Takes the oldest queued sample, reporting structural failures as
    /// typed [`crate::BusError`]s: an unknown topic or a stale
    /// subscription id (its subscriber dropped mid-mission) degrades to
    /// an error the caller can log and skip, and a corrupted payload is
    /// dropped with a [`MiddlewareError::PayloadTypeCorrupted`] instead
    /// of panicking. `Ok(None)` simply means the queue is empty.
    pub(crate) fn try_take<T: Message>(
        &self,
        topic: &TopicName,
        id: u64,
    ) -> Result<Option<Stamped<T>>, MiddlewareError> {
        let mut inner = self.lock();
        let state = inner
            .topics
            .get_mut(topic)
            .ok_or_else(|| MiddlewareError::UnknownTopic {
                topic: topic.to_string(),
            })?;
        let slot = state
            .subscriptions
            .iter_mut()
            .find(|s| s.id == id && s.active)
            .ok_or_else(|| MiddlewareError::UnknownSubscription {
                topic: topic.to_string(),
                id,
            })?;
        let Some(boxed) = slot.queue.pop_front() else {
            return Ok(None);
        };
        let remaining = slot.queue.len();
        match boxed.downcast::<Stamped<T>>() {
            Ok(sample) => {
                if roborun_trace::armed() {
                    roborun_trace::collector::complete_labeled(
                        roborun_trace::SpanKind::BusDeliver,
                        topic.as_str(),
                        sample.publish_time,
                        sample.transport_latency,
                        0,
                        &[
                            ("sequence", sample.sequence as f64),
                            ("subscription", id as f64),
                        ],
                    );
                    roborun_trace::collector::counter(
                        roborun_trace::SpanKind::QueueDepth,
                        topic.as_str(),
                        sample.publish_time + sample.transport_latency,
                        remaining as f64,
                    );
                }
                Ok(Some(*sample))
            }
            // The type is checked at registration time, so a mismatch
            // here is internal queue corruption; the sample is dropped
            // and the corruption reported.
            Err(_) => Err(MiddlewareError::PayloadTypeCorrupted {
                topic: topic.to_string(),
            }),
        }
    }

    pub(crate) fn take<T: Message>(&self, topic: &TopicName, id: u64) -> Option<Stamped<T>> {
        self.try_take(topic, id).ok().flatten()
    }

    pub(crate) fn queue_len(&self, topic: &TopicName, id: u64) -> usize {
        let inner = self.lock();
        inner
            .topics
            .get(topic)
            .and_then(|state| state.subscriptions.iter().find(|s| s.id == id))
            .map(|slot| slot.queue.len())
            .unwrap_or(0)
    }

    pub(crate) fn subscription_evictions(&self, topic: &TopicName, id: u64) -> u64 {
        let inner = self.lock();
        inner
            .topics
            .get(topic)
            .and_then(|state| state.subscriptions.iter().find(|s| s.id == id))
            .map(|slot| slot.evictions)
            .unwrap_or(0)
    }
}

fn validate_node_name(name: &str) -> Result<(), MiddlewareError> {
    let reject = |reason: &str| MiddlewareError::InvalidNodeName {
        name: name.to_string(),
        reason: reason.to_string(),
    };
    if name.is_empty() {
        return Err(reject("name is empty"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return Err(reject(
            "node names may only contain lower-case letters, digits and `_`",
        ));
    }
    Ok(())
}

fn ensure_topic<'a, T: Message>(
    topics: &'a mut BTreeMap<TopicName, TopicState>,
    topic: &TopicName,
) -> Result<&'a mut TopicState, MiddlewareError> {
    // Entry-based so no panicking re-lookup is needed after insertion.
    let state = topics.entry(topic.clone()).or_insert_with(|| TopicState {
        type_id: TypeId::of::<T>(),
        type_name: T::type_name(),
        next_sequence: 0,
        publisher_nodes: Vec::new(),
        subscriptions: Vec::new(),
        retained: None,
        stats: CommStats::default(),
    });
    if state.type_id != TypeId::of::<T>() {
        return Err(MiddlewareError::TypeMismatch {
            topic: topic.to_string(),
            existing: state.type_name,
            requested: T::type_name(),
        });
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(name: &str) -> TopicName {
        TopicName::new(name).unwrap()
    }

    #[test]
    fn publish_without_subscribers_is_recorded_but_delivers_nothing() {
        let bus = MessageBus::default();
        bus.register_node("talker").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<String>("talker", &t).unwrap();
        let receipt = bus.publish(&t, String::from("hello")).unwrap();
        assert_eq!(receipt.deliveries, 0);
        assert_eq!(receipt.sequence, 0);
        let stats = bus.topic_stats(&t);
        assert_eq!(stats.messages_published, 1);
        assert_eq!(stats.deliveries, 0);
    }

    /// Drops even sequences, duplicates sequence 1, delays sequence 3.
    #[derive(Debug)]
    struct ScriptedFaults;

    impl crate::link_faults::LinkFaultModel for ScriptedFaults {
        fn disposition(&mut self, _topic: &TopicName, sequence: u64) -> LinkDisposition {
            LinkDisposition {
                drop: sequence.is_multiple_of(2),
                duplicates: u32::from(sequence == 1),
                extra_delay: if sequence == 3 { 0.5 } else { 0.0 },
            }
        }
    }

    #[test]
    fn link_fault_model_drops_duplicates_and_delays_samples() {
        let bus = MessageBus::with_free_transport();
        bus.install_link_faults(Box::new(ScriptedFaults));
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<u32>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<u32>("listener", &t, QosProfile::reliable(16))
            .unwrap();
        for i in 0..4u32 {
            bus.publish(&t, i).unwrap();
        }
        let mut received = Vec::new();
        let mut delays = Vec::new();
        while let Some(sample) = bus.take::<u32>(&t, sub) {
            received.push(sample.message);
            delays.push(sample.transport_latency);
        }
        // 0 and 2 dropped, 1 duplicated, 3 delayed by 0.5 s.
        assert_eq!(received, vec![1, 1, 3]);
        assert_eq!(delays, vec![0.0, 0.0, 0.5]);
        let stats = bus.link_fault_stats();
        assert_eq!(stats.consulted, 4);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.duplicated, 1);
        assert_eq!(stats.delayed, 1);
        assert!(stats.total_events() >= 4);
    }

    #[test]
    fn bus_without_link_faults_reports_zero_fault_stats() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<u32>("talker", &t).unwrap();
        bus.publish(&t, 7u32).unwrap();
        assert_eq!(bus.link_fault_stats(), LinkFaultStats::default());
    }

    #[test]
    fn samples_flow_publisher_to_subscriber_in_order() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<u32>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<u32>("listener", &t, QosProfile::reliable(16))
            .unwrap();
        for i in 0..5u32 {
            bus.publish(&t, i).unwrap();
        }
        let mut received = Vec::new();
        while let Some(sample) = bus.take::<u32>(&t, sub) {
            received.push(sample.message);
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn keep_last_depth_evicts_oldest() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/scan");
        bus.register_publisher::<u64>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<u64>("listener", &t, QosProfile::reliable(3))
            .unwrap();
        for i in 0..10u64 {
            bus.publish(&t, i).unwrap();
        }
        assert_eq!(bus.queue_len(&t, sub), 3);
        assert_eq!(bus.subscription_evictions(&t, sub), 7);
        let newest: Vec<u64> =
            std::iter::from_fn(|| bus.take::<u64>(&t, sub).map(|s| s.message)).collect();
        assert_eq!(newest, vec![7, 8, 9]);
    }

    #[test]
    fn type_conflicts_are_rejected() {
        let bus = MessageBus::default();
        bus.register_node("a").unwrap();
        let t = topic("/mixed");
        bus.register_publisher::<u32>("a", &t).unwrap();
        let err = bus.register_publisher::<String>("a", &t).unwrap_err();
        assert!(matches!(err, MiddlewareError::TypeMismatch { .. }));
        let err = bus
            .register_subscription::<f64>("a", &t, QosProfile::default())
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_node_names_are_rejected() {
        let bus = MessageBus::default();
        bus.register_node("governor").unwrap();
        let err = bus.register_node("governor").unwrap_err();
        assert_eq!(
            err,
            MiddlewareError::NodeNameTaken {
                name: "governor".into()
            }
        );
        assert!(bus.register_node("Governor").is_err());
        assert!(bus.register_node("").is_err());
    }

    #[test]
    fn latched_topics_replay_to_late_subscribers() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        bus.register_node("late").unwrap();
        let t = topic("/policy");
        bus.register_publisher::<String>("talker", &t).unwrap();
        bus.publish(&t, String::from("v1")).unwrap();
        bus.publish(&t, String::from("v2")).unwrap();
        // Volatile late joiner sees nothing.
        let volatile = bus
            .register_subscription::<String>("late", &t, QosProfile::reliable(4))
            .unwrap();
        assert!(bus.take::<String>(&t, volatile).is_none());
        // TransientLocal late joiner receives the retained (latest) sample.
        let latched = bus
            .register_subscription::<String>("late", &t, QosProfile::latched(4))
            .unwrap();
        let sample = bus.take::<String>(&t, latched).expect("latched sample");
        assert_eq!(sample.message, "v2");
        assert_eq!(sample.sequence, 1);
    }

    #[test]
    fn publish_stamps_simulation_time_and_transport_latency() {
        let bus = MessageBus::default();
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/cloud");
        bus.register_publisher::<Vec<f64>>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<Vec<f64>>("listener", &t, QosProfile::sensor_data())
            .unwrap();
        bus.set_time(12.5);
        let payload = vec![0.0f64; 10_000]; // 80 kB
        bus.publish(&t, payload).unwrap();
        let sample = bus.take::<Vec<f64>>(&t, sub).unwrap();
        assert!((sample.publish_time - 12.5).abs() < 1e-12);
        assert!(sample.transport_latency > 0.0);
        assert!(sample.arrival_time() > 12.5);
        assert!(bus.total_transport_latency() > 0.0);
    }

    #[test]
    fn time_never_rewinds() {
        let bus = MessageBus::default();
        bus.set_time(10.0);
        bus.set_time(5.0);
        assert!((bus.now() - 10.0).abs() < 1e-12);
        bus.advance_time(-3.0);
        assert!((bus.now() - 10.0).abs() < 1e-12);
        bus.advance_time(2.0);
        assert!((bus.now() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn shutdown_stops_publishes_but_not_takes() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<u8>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<u8>("listener", &t, QosProfile::default())
            .unwrap();
        bus.publish(&t, 7u8).unwrap();
        bus.shutdown();
        assert!(bus.is_shutdown());
        assert_eq!(
            bus.publish(&t, 8u8).unwrap_err(),
            MiddlewareError::BusClosed
        );
        assert_eq!(bus.take::<u8>(&t, sub).unwrap().message, 7);
    }

    #[test]
    fn unregistering_a_subscription_stops_delivery() {
        let bus = MessageBus::with_free_transport();
        bus.register_node("talker").unwrap();
        bus.register_node("listener").unwrap();
        let t = topic("/chatter");
        bus.register_publisher::<u8>("talker", &t).unwrap();
        let sub = bus
            .register_subscription::<u8>("listener", &t, QosProfile::default())
            .unwrap();
        assert_eq!(bus.subscription_count(&t), 1);
        bus.unregister_subscription(&t, sub);
        assert_eq!(bus.subscription_count(&t), 0);
        let receipt = bus.publish(&t, 1u8).unwrap();
        assert_eq!(receipt.deliveries, 0);
        assert!(bus.take::<u8>(&t, sub).is_none());
    }

    #[test]
    fn introspection_reports_topics_and_connectivity() {
        let bus = MessageBus::default();
        bus.register_node("camera").unwrap();
        bus.register_node("mapper").unwrap();
        let t = topic("/sensors/points");
        bus.register_publisher::<Vec<f64>>("camera", &t).unwrap();
        bus.register_subscription::<Vec<f64>>("mapper", &t, QosProfile::sensor_data())
            .unwrap();
        assert_eq!(bus.topic_names(), vec![t.clone()]);
        assert_eq!(bus.publisher_count(&t), 1);
        assert_eq!(bus.subscription_count(&t), 1);
        assert!(bus.topic_type(&t).unwrap().contains("Vec"));
        let connections = bus.node_connections();
        assert!(connections["camera"].publishes.contains(&t));
        assert!(connections["mapper"].subscribes.contains(&t));
    }
}
