//! Property-based tests for the middleware's delivery semantics.

use proptest::prelude::*;
use roborun_middleware::{CommLatencyModel, MessageBus, Node, QosProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the queue depth and publish count, the queue never exceeds
    /// the depth, nothing is ever delivered out of order, and
    /// published = delivered + evicted for a single subscriber.
    #[test]
    fn keep_last_accounting_is_exact(depth in 1usize..20, publishes in 0usize..60) {
        let bus = MessageBus::with_free_transport();
        let talker = Node::new(&bus, "talker").unwrap();
        let listener = Node::new(&bus, "listener").unwrap();
        let publisher = talker.publisher::<u64>("/stream").unwrap();
        let subscription = listener
            .subscribe::<u64>("/stream", QosProfile::reliable(depth))
            .unwrap();

        for i in 0..publishes {
            publisher.publish(i as u64).unwrap();
            prop_assert!(subscription.len() <= depth);
        }

        let received = subscription.drain();
        // In-order, consecutive, and ending at the last published value.
        for pair in received.windows(2) {
            prop_assert_eq!(pair[1].message, pair[0].message + 1);
            prop_assert!(pair[1].sequence > pair[0].sequence);
        }
        if publishes > 0 {
            prop_assert_eq!(received.last().unwrap().message, publishes as u64 - 1);
        }
        let evicted = subscription.evictions() as usize;
        prop_assert_eq!(received.len() + evicted, publishes);
        prop_assert_eq!(received.len(), publishes.min(depth));
    }

    /// Every subscriber receives every sample (up to its own depth),
    /// independent of how many other subscribers exist.
    #[test]
    fn fanout_is_independent_per_subscriber(
        subscribers in 1usize..6,
        publishes in 1usize..30,
    ) {
        let bus = MessageBus::with_free_transport();
        let talker = Node::new(&bus, "talker").unwrap();
        let publisher = talker.publisher::<u32>("/fanout").unwrap();
        let subs: Vec<_> = (0..subscribers)
            .map(|i| {
                let node = Node::new(&bus, &format!("listener_{i}")).unwrap();
                node.subscribe::<u32>("/fanout", QosProfile::reliable(64)).unwrap()
            })
            .collect();
        for i in 0..publishes {
            publisher.publish(i as u32).unwrap();
        }
        for sub in &subs {
            let received = sub.drain();
            prop_assert_eq!(received.len(), publishes);
        }
    }

    /// Transport latency is monotone in payload size and never negative.
    #[test]
    fn transport_latency_is_monotone_in_size(
        small in 0usize..10_000,
        extra in 1usize..1_000_000,
    ) {
        let model = CommLatencyModel::default();
        let qos = QosProfile::default();
        let a = model.transfer_latency(small, &qos);
        let b = model.transfer_latency(small + extra, &qos);
        prop_assert!(a >= 0.0);
        prop_assert!(b > a);
    }

    /// Publish stamps are monotone in bus time and sequence numbers are
    /// strictly increasing per topic.
    #[test]
    fn stamps_follow_bus_time(steps in proptest::collection::vec(0.0f64..5.0, 1..40)) {
        let bus = MessageBus::with_free_transport();
        let node = Node::new(&bus, "solo").unwrap();
        let publisher = node.publisher::<u8>("/beat").unwrap();
        let subscription = node.subscribe::<u8>("/beat", QosProfile::reliable(128)).unwrap();
        for dt in &steps {
            bus.advance_time(*dt);
            publisher.publish(0).unwrap();
        }
        let samples = subscription.drain();
        prop_assert_eq!(samples.len(), steps.len());
        for pair in samples.windows(2) {
            prop_assert!(pair[1].publish_time >= pair[0].publish_time);
            prop_assert_eq!(pair[1].sequence, pair[0].sequence + 1);
        }
    }
}
