//! `experiments` — regenerates every table and figure of the RoboRun paper.
//!
//! ```bash
//! # everything, scaled-down (finishes in a few minutes):
//! cargo run --release -p roborun-bench --bin experiments -- all
//!
//! # a single figure:
//! cargo run --release -p roborun-bench --bin experiments -- fig7
//!
//! # the full paper-scale sweep (27 environments, 600–1200 m missions):
//! cargo run --release -p roborun-bench --bin experiments -- fig7 --full
//! ```
//!
//! Each experiment prints either an aligned table (for bar-chart figures
//! like Fig. 7) or a CSV series (for curve figures like Fig. 2/5/10/11)
//! that can be plotted with any external tool. EXPERIMENTS.md records the
//! mapping to the paper's figures and the measured outcomes.

use roborun_core::latency_model::LatencySample;
use roborun_core::{
    KnobRanges, KnobSettings, PipelineLatencyModel, RuntimeMode, SpatialProfile, TimeBudgeter,
};
use roborun_env::{CongestionMap, DifficultyConfig, Environment, EnvironmentGenerator};
use roborun_mission::breakdown::ZoneBreakdown;
use roborun_mission::report;
use roborun_mission::sweep::{run_sweep, SweepConfig};
use roborun_mission::{MissionConfig, MissionResult, MissionRunner, Scenario};
use roborun_sim::{ComputeLatencyModel, PipelineStage, StoppingModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let run_all = selected.is_empty() || selected.iter().any(|a| a == "all");
    let want = |name: &str| run_all || selected.iter().any(|a| a == name);

    println!(
        "RoboRun reproduction — experiment harness (mode: {})\n",
        if full { "full paper scale" } else { "quick" }
    );

    if want("table2") {
        table2();
    }
    if want("table1") {
        table1();
    }
    if want("fit") {
        fit();
    }
    if want("fig2a") {
        fig2a();
    }
    if want("fig2b") {
        fig2b();
    }
    if want("fig3") {
        fig3(full);
    }
    if want("fig4") {
        fig4(full);
    }
    // Figures 5, 9, 10 and 11 all analyse the representative mission.
    if want("fig5") || want("fig9") || want("fig10") || want("fig11") {
        let (env, oblivious, aware) = representative_mission(full);
        if want("fig9") {
            fig9(&env, &oblivious, &aware);
        }
        if want("fig5") {
            fig5(&oblivious, &aware);
        }
        if want("fig10") {
            fig10(&oblivious, &aware);
        }
        if want("fig11") {
            fig11(&oblivious, &aware);
        }
    }
    if want("fig7") || want("fig8") {
        let results = sweep(full);
        if want("fig7") {
            println!(
                "## Figure 7 — mission-level metrics (averaged over {} environments)\n",
                results.rows().len()
            );
            println!("{}", report::fig7_table(&results));
        }
        if want("fig8") {
            fig8(&results);
        }
    }
    if want("ablation") {
        ablation(full);
    }
    if want("ablation_knobs") {
        ablation_knobs(full);
    }
    if want("cotask") {
        cotask(full);
    }
    if want("node_graph") {
        node_graph(full);
    }
    if want("faults") {
        faults(full);
    }
    if want("fault_sweep") {
        fault_sweep();
    }
    if want("bench7") {
        bench7();
    }
    if want("bench8") {
        bench8();
    }
    if want("trace") {
        trace_export(full);
    }
    if want("bench9") {
        bench9();
    }
    if want("bench10") {
        bench10();
    }
    if want("trajectory") {
        trajectory();
    }
}

/// Raw-speed kernel campaign: hazard-biased RRT* sampling vs uniform on
/// the lane-heavy one-shot fixture, batched arena expansion at 4k/16k
/// samples, 4-wide vs 8-wide AABB broad-phase dispatch, the gridded
/// peer-query rerun, and a multicore mode (`ROBORUN_BENCH_THREADS`) for
/// the sweep / plan-ahead / mission-service rows. Emits `BENCH_8.json`.
fn bench8() {
    use roborun_env::{Obstacle, ObstacleField};
    use roborun_geom::{Aabb, Ray, SimdWidth, SplitMix64, Vec3};
    use roborun_mission::{MissionService, ServiceConfig};
    use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
    use roborun_planning::{
        CollisionChecker, HazardContext, PredictedHazards, RrtConfig, RrtStar, SamplingMix,
    };
    use std::time::Instant;

    println!("## Bench 8 — raw-speed kernels: biased sampling, batch expansion, 8-wide AABB\n");

    let cores = roborun_trace::host_cores();
    // The multicore bench mode: ROBORUN_BENCH_THREADS pins the worker
    // count of every threaded row below; unset picks the machine width.
    let bench_threads: Option<usize> = std::env::var("ROBORUN_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok());
    let threads = bench_threads.unwrap_or(cores);
    println!(
        "(host has {cores} core(s); thread mode: {})\n",
        bench_threads.map_or("auto".to_string(), |t| format!("pinned to {t}"))
    );

    // --- Hazard-biased sampling on the lane-heavy one-shot fixture ----
    // The predicted_costmap fixture: a wall at x = 20 with one gap at
    // y in [4, 9], and a predicted lane past it blocking the straight
    // exit. Gap regions derived from the lane guide proposals into the
    // southern dip the detour needs.
    let map = {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (4.0..=9.0).contains(&y) {
                continue;
            }
            for zi in 0..24 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
    };
    let lanes = vec![Aabb::new(
        Vec3::new(26.0, 2.0, 0.0),
        Vec3::new(29.0, 25.0, 12.0),
    )];
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(40.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 12.0));
    let clearance = 0.45 * 0.6;
    let mixes = [
        ("uniform", SamplingMix::default()),
        (
            "biased",
            SamplingMix {
                enabled: true,
                ..SamplingMix::default()
            },
        ),
    ];
    let run_plan = |seed: u64, mix: SamplingMix, max_samples: usize| {
        let planner = RrtStar::new(RrtConfig {
            seed,
            max_samples,
            sampling_mix: mix,
            ..RrtConfig::default()
        });
        let hazards = PredictedHazards::new(lanes.clone(), clearance, start, 1e9);
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
        let mut ctx = HazardContext::new(&mut checker, &hazards);
        planner.plan(&mut ctx, start, goal, &bounds)
    };
    // Samples to first solution: the search never stops early, so the
    // metric is the smallest max_samples rung that yields a path.
    let ladder = [25usize, 50, 100, 200, 400, 800, 1600, 3200, 6400];
    let seeds = 8u64;
    let mut sampling_rows = Vec::new();
    for (label, mix) in mixes {
        let mut to_solution = 0usize;
        for seed in 0..seeds {
            to_solution += ladder
                .iter()
                .copied()
                .find(|&n| run_plan(seed, mix, n).found())
                .unwrap_or(*ladder.last().unwrap());
        }
        let wall = Instant::now();
        let mut cost = 0.0;
        for seed in 0..seeds {
            cost += run_plan(seed, mix, 2_000).cost;
        }
        let ms = wall.elapsed().as_secs_f64() * 1e3 / seeds as f64;
        let mean_to_solution = to_solution as f64 / seeds as f64;
        let mean_cost = cost / seeds as f64;
        println!(
            "sampling  {label:<8} {mean_to_solution:>6.0} samples to solution  \
             {ms:>7.2} ms/plan @2000  mean cost {mean_cost:.2} m"
        );
        sampling_rows.push((label, mean_to_solution, ms, mean_cost));
    }
    let sample_reduction = sampling_rows[0].1 / sampling_rows[1].1;
    let cost_ratio = sampling_rows[1].3 / sampling_rows[0].3;
    println!(
        "sampling  biased draws {sample_reduction:.1}x fewer samples to solution \
         (cost ratio {cost_ratio:.3})\n"
    );

    // --- Batched arena expansion at 4k / 16k samples ------------------
    // The long-corridor gap-wall search of the kernel-scaling benches;
    // batch K pre-draws K targets per spatial-index flush. Results are
    // exact-identical at every K (asserted here, proven in the planning
    // tests); the win is locality and flush amortization.
    let long_map = {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -120..=120 {
            let y = yi as f64 * 0.5;
            if (6.0..=10.0).contains(&y) {
                continue;
            }
            for zi in 0..30 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
    };
    let long_goal = Vec3::new(140.0, 0.0, 5.0);
    let long_bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));
    let mut checker = CollisionChecker::new(long_map, 0.45, 0.5);
    let mut batch_rows = Vec::new();
    for &samples in &[4_000usize, 16_000] {
        let mut row = Vec::new();
        let mut reference = None;
        for &batch in &[1usize, 64] {
            let planner = RrtStar::new(RrtConfig {
                seed: 3,
                max_samples: samples,
                batch_size: batch,
                ..RrtConfig::default()
            });
            let wall = Instant::now();
            let result = planner.plan(&mut checker, start, long_goal, &long_bounds);
            let ms = wall.elapsed().as_secs_f64() * 1e3;
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_eq!(r, &result, "batch {batch} diverged at {samples} samples"),
            }
            println!("batch     {samples:>6} samples  K={batch:<3} {ms:>8.1} ms");
            row.push((batch, ms));
        }
        batch_rows.push((samples, row));
    }
    println!();

    // --- 4-wide vs 8-wide AABB broad-phase dispatch -------------------
    // Same world, same rays, both forced widths: identical hits (width
    // changes throughput, never results), throughput recorded per ray.
    let obstacles: Vec<Obstacle> = {
        let mut rng = SplitMix64::new(10_000);
        (0..10_000u32)
            .map(|id| {
                let center = Vec3::new(
                    rng.uniform(5.0, 185.0),
                    rng.uniform(-90.0, 90.0),
                    rng.uniform(0.0, 12.0),
                );
                let half = Vec3::new(
                    rng.uniform(0.4, 2.0),
                    rng.uniform(0.4, 2.0),
                    rng.uniform(0.4, 3.0),
                );
                Obstacle::new(id, Aabb::from_center_half_extents(center, half))
            })
            .collect()
    };
    let rays: Vec<Ray> = {
        let mut rng = SplitMix64::new(99);
        (0..512)
            .map(|_| {
                let origin = Vec3::new(0.0, rng.uniform(-10.0, 10.0), rng.uniform(2.0, 8.0));
                let yaw = rng.uniform(-0.9, 0.9);
                let pitch = rng.uniform(-0.3, 0.3);
                Ray::new(origin, Vec3::new(yaw.cos(), yaw.sin(), pitch.sin()))
            })
            .collect()
    };
    let mut width_rows = Vec::new();
    let mut checksums = Vec::new();
    for width in [SimdWidth::W4, SimdWidth::W8] {
        let field = ObstacleField::with_simd_width(obstacles.clone(), width);
        let rounds = 40usize;
        let wall = Instant::now();
        let mut checksum = 0.0f64;
        for _ in 0..rounds {
            for ray in &rays {
                if let Some(hit) = field.raycast(ray, 120.0) {
                    checksum += hit.distance;
                }
            }
        }
        let ns_per_ray = wall.elapsed().as_secs_f64() * 1e9 / (rounds * rays.len()) as f64;
        println!(
            "raycast   {} lanes  {ns_per_ray:>7.0} ns/ray over {} obstacles",
            width.lanes(),
            obstacles.len()
        );
        width_rows.push((width.lanes(), ns_per_ray));
        checksums.push(checksum.to_bits());
    }
    assert_eq!(checksums[0], checksums[1], "W4 and W8 raycasts diverged");
    println!();

    // --- Peer-hazard query scaling rerun (now grid-backed) ------------
    // The BENCH_7 scaling row that motivated the candidate grid: point
    // queries against K committed peer corridors. With >= 16 flat boxes
    // the grid makes the probe a hash lookup plus a few exact tests.
    let peer_rows = peer_hazard_query_rows();
    for (peers, boxes, ns_per_query, blocked) in &peer_rows {
        println!(
            "peer grid K={peers}  {boxes} boxes  {ns_per_query:.0} ns/query  ({blocked} blocked)"
        );
    }
    println!();

    // --- Multicore mode: sweep, plan-ahead, mission service -----------
    // All three threaded rows honour the pinned width. The plan-ahead
    // row keeps the modeled masked-latency accounting: wall-clock
    // parallelism changes throughput, never the simulated clock.
    let mut sweep_request = SweepConfig::quick(41);
    sweep_request.threads = Some(threads);
    sweep_request.difficulties.truncate(4);
    let wall = Instant::now();
    let sweep_rows = run_sweep(&sweep_request).rows().len();
    let sweep_seconds = wall.elapsed().as_secs_f64();
    println!("multicore sweep    threads={threads}  {sweep_rows} rows in {sweep_seconds:.2} s");

    let plan_ahead_cfg = MissionConfig {
        max_decisions: 600,
        max_mission_time: 1_500.0,
        plan_ahead: true,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    };
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.35,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(21);
    let wall = Instant::now();
    let result = MissionRunner::new(plan_ahead_cfg).run(&env);
    let plan_ahead_seconds = wall.elapsed().as_secs_f64();
    let masked = result.metrics.masked_planning_latency;
    println!(
        "multicore plan-ahead  {plan_ahead_seconds:.2} s wall, masked {masked:.3} s modeled \
         over {} decisions",
        result.metrics.decisions
    );

    let mut service_request = SweepConfig::quick(41);
    service_request.difficulties.truncate(4);
    let service_missions = 2 * service_request.difficulties.len();
    let shards = threads.max(1);
    let service = MissionService::start(ServiceConfig { shards });
    let wall = Instant::now();
    let id = service.submit(service_request).expect("valid request");
    let rows = service.collect(id);
    let service_seconds = wall.elapsed().as_secs_f64();
    service.shutdown();
    assert_eq!(rows.rows().len(), 4);
    println!(
        "multicore service  shards={shards}  {service_missions} missions in {service_seconds:.2} s\n"
    );

    // Machine-readable trajectory for CI and the roadmap.
    let mut w = roborun_trace::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("raw_speed_kernels");
    w.key("host_cores");
    w.uint(cores as u64);
    w.key("bench_threads");
    match bench_threads {
        Some(t) => w.uint(t as u64),
        None => w.null(),
    }
    w.key("biased_sampling");
    w.begin_object();
    for (label, to_solution, ms, cost) in &sampling_rows {
        w.key(label);
        w.begin_inline_object();
        w.key("samples_to_solution");
        w.float(*to_solution, 1);
        w.key("ms_per_plan_2000");
        w.float(*ms, 3);
        w.key("mean_cost_m");
        w.float(*cost, 3);
        w.end();
    }
    w.key("sample_reduction");
    w.float(sample_reduction, 2);
    w.key("cost_ratio");
    w.float(cost_ratio, 4);
    w.end();
    w.key("batch_expansion");
    w.begin_array();
    for (samples, row) in &batch_rows {
        w.begin_inline_object();
        w.key("samples");
        w.uint(*samples as u64);
        for (batch, ms) in row {
            w.key(&format!("k{batch}_ms"));
            w.float(*ms, 2);
        }
        w.end();
    }
    w.end();
    w.key("aabb_raycast");
    w.begin_array();
    for (lanes, ns) in &width_rows {
        w.begin_inline_object();
        w.key("lanes");
        w.uint(*lanes as u64);
        w.key("ns_per_ray");
        w.float(*ns, 1);
        w.end();
    }
    w.end();
    write_peer_hazard_rows(&mut w, &peer_rows);
    w.key("multicore");
    w.begin_inline_object();
    w.key("threads");
    w.uint(threads as u64);
    w.key("sweep_seconds");
    w.float(sweep_seconds, 3);
    w.key("plan_ahead_wall_seconds");
    w.float(plan_ahead_seconds, 3);
    w.key("plan_ahead_masked_modeled_s");
    w.float(masked, 3);
    w.key("service_shards");
    w.uint(shards as u64);
    w.key("service_seconds");
    w.float(service_seconds, 3);
    w.end();
    w.end();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_8.json");
    std::fs::write(path, w.finish()).expect("write BENCH_8.json");
    println!("wrote {path}\n");
}

/// Fleet-mission performance trajectory: mission-service throughput
/// versus shard count, shared-broad-phase amortization, and peer-hazard
/// query overhead. Emits machine-readable `BENCH_7.json` at the repo
/// root alongside the human-readable table.
fn bench7() {
    use roborun_mission::{MissionService, ServiceConfig, SharedStaticWorld};
    use std::time::Instant;

    println!("## Bench 7 — fleet missions, mission service, shared worlds\n");

    // Shard scaling is bounded by the physical core count; record it so
    // a flat curve on a small box reads as what it is.
    let cores = roborun_trace::host_cores();
    println!("(host has {cores} core(s) available)\n");

    // Mission-service throughput: the same 8-row request (2 missions per
    // row) collected through 1, 2 and 4 shards. Rows are kept comparable
    // in cost (moderate densities, short goals) so the shard scaling is
    // visible instead of being hidden behind one dominant row.
    let mut request = SweepConfig::quick(41);
    request.difficulties.clear();
    for &density in &[0.25, 0.35] {
        for &spread in &[40.0, 60.0] {
            for &goal in &[80.0, 110.0] {
                request.difficulties.push(DifficultyConfig {
                    obstacle_density: density,
                    obstacle_spread: spread,
                    goal_distance: goal,
                });
            }
        }
    }
    let missions = 2 * request.difficulties.len();
    let mut service_rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let service = MissionService::start(ServiceConfig { shards });
        let start = Instant::now();
        let id = service.submit(request.clone()).expect("valid request");
        let results = service.collect(id);
        let seconds = start.elapsed().as_secs_f64();
        service.shutdown();
        assert_eq!(results.rows().len(), request.difficulties.len());
        let throughput = missions as f64 / seconds;
        println!("service  shards={shards}  {missions} missions in {seconds:.2} s  ({throughput:.2} missions/s)");
        service_rows.push((shards, seconds, throughput));
    }

    // Shared-broad-phase amortization: survey a world once and clone the
    // checker per mission, versus rebuilding the survey every time.
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.3,
        obstacle_spread: 40.0,
        goal_distance: 100.0,
    })
    .generate(41);
    let clones = 16usize;
    let start = Instant::now();
    let world = SharedStaticWorld::survey(&env, 1.0, 0.6);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let mut shared = Vec::with_capacity(clones);
    for _ in 0..clones {
        shared.push(world.checker());
    }
    let clone_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(shared.iter().all(|c| world.shares_broad_phase_with(c)));
    let start = Instant::now();
    for _ in 0..clones {
        let _ = SharedStaticWorld::survey(&env, 1.0, 0.6);
    }
    let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;
    let amortized_speedup = rebuild_ms / (build_ms + clone_ms);
    println!(
        "\nbroad phase  build {build_ms:.1} ms + {clones} clones {clone_ms:.3} ms  \
         vs {clones} rebuilds {rebuild_ms:.1} ms  (speedup {amortized_speedup:.1}x)"
    );

    // Peer-hazard query overhead: point queries against K committed peer
    // corridors (64-waypoint trajectories, swept and inflated).
    let peer_rows = peer_hazard_query_rows();
    for (peers, boxes, ns_per_query, blocked) in &peer_rows {
        println!(
            "peer hazard  K={peers}  {boxes} boxes  {ns_per_query:.0} ns/query  ({blocked} blocked)"
        );
    }

    // Machine-readable trajectory for CI and the roadmap.
    let mut w = roborun_trace::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("fleet_missions");
    w.key("host_cores");
    w.uint(cores as u64);
    w.key("service_throughput");
    w.begin_array();
    for (shards, seconds, throughput) in &service_rows {
        w.begin_inline_object();
        w.key("shards");
        w.uint(*shards as u64);
        w.key("missions");
        w.uint(missions as u64);
        w.key("seconds");
        w.float(*seconds, 3);
        w.key("missions_per_sec");
        w.float(*throughput, 3);
        w.end();
    }
    w.end();
    w.key("shared_broad_phase");
    w.begin_inline_object();
    w.key("clones");
    w.uint(clones as u64);
    w.key("survey_build_ms");
    w.float(build_ms, 3);
    w.key("clone_total_ms");
    w.float(clone_ms, 4);
    w.key("rebuild_total_ms");
    w.float(rebuild_ms, 3);
    w.key("amortized_speedup");
    w.float(amortized_speedup, 2);
    w.end();
    write_peer_hazard_rows(&mut w, &peer_rows);
    w.end();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    std::fs::write(path, w.finish()).expect("write BENCH_7.json");
    println!("\nwrote {path}\n");
}

/// The peer-hazard scaling row shared by the BENCH_7/8/9 trajectories:
/// point queries against K committed peer corridors (64-waypoint
/// trajectories, swept and inflated). Returns
/// `(peers, boxes, ns_per_query, blocked)` rows.
fn peer_hazard_query_rows() -> Vec<(usize, usize, f64, usize)> {
    use roborun_geom::Vec3;
    use roborun_planning::PeerTrajectoryHazard;
    use std::time::Instant;
    let queries = 100_000usize;
    let mut rows = Vec::new();
    for peers in [1usize, 2, 4, 8] {
        let mut hazard = PeerTrajectoryHazard::new(0.46, 0.9);
        for id in 0..peers {
            let polyline: Vec<Vec3> = (0..64)
                .map(|i| {
                    let t = i as f64 * 2.0;
                    Vec3::new(
                        t,
                        (id as f64) * 12.0 + (t * 0.1).sin() * 4.0,
                        5.0 + t * 0.05,
                    )
                })
                .collect();
            hazard.set_peer(id as u64, &polyline);
        }
        let boxes = hazard.boxes().len();
        let start = Instant::now();
        let mut blocked = 0usize;
        for q in 0..queries {
            let t = (q % 997) as f64 * 0.13;
            let p = Vec3::new(t, (t * 0.37).sin() * 20.0, 5.0 + (t * 0.11).cos() * 3.0);
            if hazard.point_blocked(p) {
                blocked += 1;
            }
        }
        let ns_per_query = start.elapsed().as_secs_f64() * 1e9 / queries as f64;
        rows.push((peers, boxes, ns_per_query, blocked));
    }
    rows
}

/// Writes the shared `peer_hazard_query` BENCH section (the trajectory
/// diff keys the three files on it).
fn write_peer_hazard_rows(w: &mut roborun_trace::JsonWriter, rows: &[(usize, usize, f64, usize)]) {
    w.key("peer_hazard_query");
    w.begin_array();
    for (peers, boxes, ns, _) in rows {
        w.begin_inline_object();
        w.key("peers");
        w.uint(*peers as u64);
        w.key("boxes");
        w.uint(*boxes as u64);
        w.key("ns_per_query");
        w.float(*ns, 1);
        w.end();
    }
    w.end();
}

/// Chrome-trace export: arms the tracer, runs one representative static,
/// dynamic and fault mission, self-checks the export against the trace
/// schema and the >= 95% decision-stage-coverage contract, and writes
/// `out/trace_<scenario>.json` (loadable in Perfetto or
/// `chrome://tracing`). Wall-clock fields are left out of the artifact
/// so reruns of the same mission produce byte-identical files.
fn trace_export(full: bool) {
    use roborun_mission::{DynamicScenario, FaultScenario};
    use roborun_trace::{validate_chrome_trace, Trace};

    println!("## Trace — Chrome-trace export of representative missions\n");
    let out_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../out");
    std::fs::create_dir_all(out_dir).expect("create out/");

    fn run_traced(out_dir: &str, name: &str, run: impl FnOnce() -> MissionResult) {
        // Leftover events from earlier subcommands of the same process
        // would pollute the artifact; start from an empty sink.
        let _ = roborun_trace::drain();
        roborun_trace::arm();
        let result = run();
        roborun_trace::disarm();
        let trace = Trace::collect();
        let json = trace.to_chrome_json(name, false);
        let (events, async_pairs) =
            validate_chrome_trace(&json).unwrap_or_else(|e| panic!("{name} trace schema: {e}"));
        let coverage = trace.decision_stage_coverage();
        let min_coverage = coverage.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            !coverage.is_empty() && min_coverage >= 0.95,
            "{name}: stage spans cover {min_coverage:.3} of a decision (need >= 0.95)"
        );
        let path = format!("{out_dir}/trace_{name}.json");
        std::fs::write(&path, &json).expect("write trace json");
        println!(
            "### {name}: {} decisions, {events} events ({async_pairs} async pair(s)), \
             min stage coverage {min_coverage:.3}\n",
            result.metrics.decisions
        );
        println!("{}", trace.summary_table());
        println!("wrote {path}\n");
    }

    let max_decisions = if full { 4_000 } else { 1_500 };
    run_traced(out_dir, "static", || {
        let env = EnvironmentGenerator::new(DifficultyConfig {
            goal_distance: 200.0,
            ..DifficultyConfig::mid()
        })
        .generate(23);
        MissionRunner::new(MissionConfig {
            max_decisions,
            max_mission_time: 5_000.0,
            plan_ahead: true,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        })
        .run(&env)
    });
    run_traced(out_dir, "dynamic", || {
        let (env, world) = DynamicScenario::CrossingCorridor.world(41);
        let mut config = MissionConfig::new(RuntimeMode::SpatialAware);
        config.max_decisions = max_decisions.min(600);
        config.max_mission_time = 1_500.0;
        config.voxel_decay = Some(2);
        MissionRunner::new(config).run_dynamic(&env, &world)
    });
    run_traced(out_dir, "fault", || {
        let scenario = FaultScenario::PlannerBrownout;
        let env = scenario.environment(41);
        let mut config = MissionConfig::new(RuntimeMode::SpatialAware);
        config.max_decisions = max_decisions.min(600);
        config.max_mission_time = 1_500.0;
        config.voxel_decay = Some(2);
        config.degradation.enabled = true;
        config.fault_plan = scenario.fault_plan(41);
        MissionRunner::new(config).run(&env)
    });
}

/// Trace-layer cost trajectory: the disarmed gate and armed emission in
/// nanoseconds per call, whole-mission overhead armed versus disarmed
/// (with a metrics-equality check that tracing perturbed nothing), the
/// shared log-histogram's quantile accuracy against exact percentiles,
/// and the peer-hazard scaling row shared with BENCH_7/8. Emits
/// `BENCH_9.json`.
fn bench9() {
    use roborun_geom::{percentile, LogHistogram, SplitMix64};
    use roborun_trace::SpanKind;
    use std::hint::black_box;
    use std::time::Instant;

    println!("## Bench 9 — trace overhead and histogram accuracy\n");
    let cores = roborun_trace::host_cores();
    println!("(host has {cores} core(s) available)\n");

    // --- The disarmed gate: the entire cost tracing adds to a normal
    // (untraced) run is one relaxed load and branch per call site.
    let _ = roborun_trace::drain();
    roborun_trace::disarm();
    let rounds = 20_000_000u64;
    let wall = Instant::now();
    for i in 0..rounds {
        roborun_trace::collector::complete(
            black_box(SpanKind::Decision),
            black_box(i as f64),
            0.001,
            0,
            &[],
        );
    }
    let disarmed_ns = wall.elapsed().as_secs_f64() * 1e9 / rounds as f64;

    // --- Armed emission: thread-local ring push + amortised spill.
    roborun_trace::arm();
    let armed_rounds = 400_000u64;
    let wall = Instant::now();
    for i in 0..armed_rounds {
        roborun_trace::collector::complete(
            black_box(SpanKind::Decision),
            black_box(i as f64),
            0.001,
            0,
            &[("decision", i as f64)],
        );
    }
    let armed_ns = wall.elapsed().as_secs_f64() * 1e9 / armed_rounds as f64;
    roborun_trace::disarm();
    let dropped = roborun_trace::dropped();
    let retained = roborun_trace::drain().len();
    println!(
        "gate      disarmed {disarmed_ns:.2} ns/call   armed {armed_ns:.0} ns/event  \
         ({retained} retained, {dropped} dropped)"
    );

    // --- Whole-mission overhead: the same mission disarmed then armed.
    // Metrics equality doubles as the "enabled tracing perturbs nothing"
    // check at bench time.
    let env = EnvironmentGenerator::new(DifficultyConfig {
        goal_distance: 120.0,
        ..DifficultyConfig::mid()
    })
    .generate(23);
    let mission = || {
        MissionRunner::new(MissionConfig {
            max_decisions: 600,
            max_mission_time: 1_500.0,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        })
        .run(&env)
    };
    let _ = mission(); // warm caches before timing either mode
    let wall = Instant::now();
    let disarmed_result = mission();
    let disarmed_s = wall.elapsed().as_secs_f64();
    roborun_trace::arm();
    let wall = Instant::now();
    let armed_result = mission();
    let armed_s = wall.elapsed().as_secs_f64();
    roborun_trace::disarm();
    let mission_events = roborun_trace::drain().len();
    assert_eq!(
        disarmed_result.metrics, armed_result.metrics,
        "tracing perturbed the mission"
    );
    let overhead_pct = (armed_s / disarmed_s.max(1e-12) - 1.0) * 100.0;
    println!(
        "mission   disarmed {disarmed_s:.3} s   armed {armed_s:.3} s  \
         ({overhead_pct:+.1}%, {mission_events} events, identical metrics)"
    );

    // --- Histogram accuracy: a log-uniform latency-like sample spanning
    // four decades, histogram quantiles against exact percentiles.
    let mut rng = SplitMix64::new(7);
    let samples: Vec<f64> = (0..100_000)
        .map(|_| rng.uniform((1e-3f64).ln(), 10f64.ln()).exp())
        .collect();
    let hist: LogHistogram = samples.iter().copied().collect();
    let mut accuracy = Vec::new();
    for q in [0.5, 0.95, 0.99] {
        let exact = percentile(&samples, q).expect("non-empty sample");
        let approx = hist.quantile(q).expect("non-empty histogram");
        let rel_err = (approx - exact).abs() / exact;
        println!(
            "histogram p{:<4} exact {exact:.5} s   histogram {approx:.5} s   rel err {rel_err:.4}",
            q * 100.0
        );
        accuracy.push((q, exact, approx, rel_err));
    }
    println!();

    // --- The shared scaling row for the BENCH trajectory diff.
    let peer_rows = peer_hazard_query_rows();
    for (peers, boxes, ns_per_query, blocked) in &peer_rows {
        println!(
            "peer hazard  K={peers}  {boxes} boxes  {ns_per_query:.0} ns/query  ({blocked} blocked)"
        );
    }

    // Machine-readable trajectory for CI and the roadmap.
    let mut w = roborun_trace::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("trace_observability");
    w.key("host_cores");
    w.uint(cores as u64);
    w.key("trace_gate");
    w.begin_inline_object();
    w.key("disarmed_ns_per_call");
    w.float(disarmed_ns, 3);
    w.key("armed_ns_per_event");
    w.float(armed_ns, 1);
    w.key("events_retained");
    w.uint(retained as u64);
    w.key("events_dropped");
    w.uint(dropped);
    w.end();
    w.key("mission_overhead");
    w.begin_inline_object();
    w.key("disarmed_seconds");
    w.float(disarmed_s, 3);
    w.key("armed_seconds");
    w.float(armed_s, 3);
    w.key("overhead_pct");
    w.float(overhead_pct, 2);
    w.key("events");
    w.uint(mission_events as u64);
    w.end();
    w.key("histogram_accuracy");
    w.begin_array();
    for (q, exact, approx, rel_err) in &accuracy {
        w.begin_inline_object();
        w.key("q");
        w.float(*q, 2);
        w.key("exact_s");
        w.float(*exact, 5);
        w.key("histogram_s");
        w.float(*approx, 5);
        w.key("rel_err");
        w.float(*rel_err, 4);
        w.end();
    }
    w.end();
    write_peer_hazard_rows(&mut w, &peer_rows);
    w.end();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    std::fs::write(path, w.finish()).expect("write BENCH_9.json");
    println!("\nwrote {path}\n");
}

/// Cross-decision planner reuse campaign: the cold-vs-warm synchronous
/// replan ladder across map-delta sizes on the lane-heavy wall fixture,
/// informed-sampling samples-to-near-optimal, scratch-reuse allocation
/// counts, a mission-level CrossingCorridor row with `planner_reuse`
/// off vs on, and the peer-hazard scaling row shared with BENCH_7/8/9.
/// Emits `BENCH_10.json`.
fn bench10() {
    use roborun_geom::{percentile, Aabb, Vec3};
    use roborun_mission::DynamicScenario;
    use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
    use roborun_planning::{CollisionChecker, PlannerScratch, RrtConfig, RrtStar, WarmStart};
    use std::time::Instant;

    println!("## Bench 10 — cross-decision planner reuse: warm trees, informed sampling\n");
    let cores = roborun_trace::host_cores();
    println!("(host has {cores} core(s) available)\n");

    // The long-corridor gap-wall fixture shared with BENCH_8's batch
    // rows: a wall at x = 20 with one gap at y in [6, 10], goal 140 m
    // out, voxel 0.5. Cold searches pay a real cost to thread the gap
    // and cover the corridor; a warm tree already did both. Delta blocks
    // grow south of the corridor so small deltas leave most of the
    // retained tree valid.
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let voxel = 0.5;
    let wall_points = || {
        let mut points = Vec::new();
        for yi in -120..=120 {
            let y = yi as f64 * voxel;
            if (6.0..=10.0).contains(&y) {
                continue;
            }
            for zi in 0..30 {
                points.push(Vec3::new(20.0, y, zi as f64 * voxel));
            }
        }
        points
    };
    let export = |points: Vec<Vec3>| {
        let mut map = OccupancyMap::new(voxel);
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(voxel, 1e9, origin))
    };
    let base = export(wall_points());
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(140.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));
    // The decision-to-decision start: one epoch of progress into the
    // corridor, exactly what a synchronous replan sees mid-mission.
    let next_start = Vec3::new(4.0, 0.5, 5.0);
    let delta_points = |count: usize| {
        let mut points = wall_points();
        for i in 0..count {
            points.push(Vec3::new(
                60.0 + (i % 8) as f64 * voxel,
                -12.0 + ((i / 8) % 8) as f64 * voxel,
                2.0 + (i / 64) as f64 * voxel,
            ));
        }
        points
    };
    // The two synchronous-replan configurations the mission actually
    // runs: reuse off (the pre-reuse planner, which spends its whole
    // sample budget refining) versus reuse on (warm-started tree,
    // informed refinement, bounded post-solution budget).
    let max_samples = 6_000;
    let cold_cfg = |seed: u64| RrtConfig {
        seed,
        max_samples,
        ..RrtConfig::default()
    };
    let reuse_cfg = |seed: u64| RrtConfig {
        seed,
        max_samples,
        warm_start: true,
        informed_sampling: true,
        refine_samples: 512,
        ..RrtConfig::default()
    };
    let margin = 0.45;
    let check_step = 0.5;

    // --- Cold-vs-warm synchronous replan ladder across delta sizes ----
    // Per seed: grow a tree on the base export (untimed), patch the
    // checker to the delta'd export, then time the replan from the
    // advanced start — once warm (rebasing the retained tree against the
    // delta boxes) and once cold (same config, empty scratch).
    let seeds = 10u64;
    let ladder = [0usize, 8, 32, 128, 512];
    let mut ladder_rows = Vec::new();
    for &added in &ladder {
        let map2 = export(delta_points(added));
        let delta = map2.delta_from(&base).expect("same voxel size");
        let mut added_boxes = Vec::new();
        CollisionChecker::added_boxes_into(&delta, &mut added_boxes);
        let mut cold_ms = Vec::new();
        let mut warm_ms = Vec::new();
        let mut retained = 0usize;
        let mut pruned = 0usize;
        let mut warm_found = 0usize;
        let mut cost_ratio = 0.0f64;
        for seed in 0..seeds {
            // Warm: build the tree on the base export, patch, replan.
            let planner = RrtStar::new(reuse_cfg(seed));
            let mut scratch = PlannerScratch::new();
            let mut checker = CollisionChecker::new(base.clone(), margin, check_step);
            let first =
                planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, None);
            assert!(first.found(), "base fixture must be solvable");
            checker.update_map(map2.clone());
            let warm = WarmStart {
                added_boxes: &added_boxes,
                added_clearance: margin,
                hazard_boxes: &[],
                hazard_clearance: 0.0,
                sample_step: check_step,
            };
            let wall = Instant::now();
            let rewarmed = planner.plan_with_scratch(
                &mut checker,
                next_start,
                goal,
                &bounds,
                &mut scratch,
                Some(&warm),
            );
            warm_ms.push(wall.elapsed().as_secs_f64() * 1e3);
            retained += rewarmed.retained_nodes;
            pruned += rewarmed.pruned_nodes;
            warm_found += usize::from(rewarmed.found());
            // Cold: the reuse-off configuration on the same patched
            // checker — what every synchronous replan paid before.
            let cold_planner = RrtStar::new(cold_cfg(seed));
            let mut cold_scratch = PlannerScratch::new();
            let wall = Instant::now();
            let cold = cold_planner.plan_with_scratch(
                &mut checker,
                next_start,
                goal,
                &bounds,
                &mut cold_scratch,
                None,
            );
            cold_ms.push(wall.elapsed().as_secs_f64() * 1e3);
            assert!(cold.found(), "cold replan must be solvable");
            cost_ratio += rewarmed.cost / cold.cost;
        }
        let cold_median = percentile(&cold_ms, 0.5).expect("non-empty");
        let warm_median = percentile(&warm_ms, 0.5).expect("non-empty");
        let speedup = cold_median / warm_median.max(1e-9);
        let retained_mean = retained as f64 / seeds as f64;
        let pruned_mean = pruned as f64 / seeds as f64;
        let cost_ratio = cost_ratio / seeds as f64;
        println!(
            "replan    +{added:>3} voxels  cold {cold_median:>7.2} ms  warm {warm_median:>7.2} ms \
             ({speedup:>5.1}x)  retained {retained_mean:>6.1}  pruned {pruned_mean:>5.1}  \
             cost x{cost_ratio:.3}  found {warm_found}/{seeds}"
        );
        ladder_rows.push((
            added,
            cold_median,
            warm_median,
            speedup,
            retained_mean,
            pruned_mean,
            cost_ratio,
        ));
    }
    // The headline number the roadmap quotes: the median speedup over
    // the small-delta rungs (a handful of voxels changed per decision).
    let small: Vec<f64> = ladder_rows
        .iter()
        .filter(|(added, ..)| *added <= 32)
        .map(|&(_, _, _, speedup, _, _, _)| speedup)
        .collect();
    let small_delta_speedup = percentile(&small, 0.5).expect("non-empty ladder");
    println!("replan    small-delta (<= 32 voxels) median speedup {small_delta_speedup:.1}x\n");

    // --- Informed sampling: samples to a near-optimal solution --------
    // The spheroid only engages after the first solution, so the metric
    // is the smallest max_samples rung whose cost lands within 5% of the
    // best known cost for the seed (informed at the top rung).
    let informed_ladder = [100usize, 200, 400, 800, 1600, 3200, 6400];
    let run_informed = |seed: u64, informed: bool, max_samples: usize| {
        let planner = RrtStar::new(RrtConfig {
            seed,
            max_samples,
            informed_sampling: informed,
            ..RrtConfig::default()
        });
        let mut checker = CollisionChecker::new(base.clone(), margin, check_step);
        planner.plan(&mut checker, start, goal, &bounds)
    };
    let mut informed_rows = Vec::new();
    for informed in [false, true] {
        let mut to_near_optimal = 0usize;
        let mut rejections = 0usize;
        for seed in 0..seeds {
            let best = run_informed(seed, true, *informed_ladder.last().unwrap()).cost;
            assert!(best.is_finite(), "top rung must solve the fixture");
            to_near_optimal += informed_ladder
                .iter()
                .copied()
                .find(|&n| {
                    let result = run_informed(seed, informed, n);
                    result.found() && result.cost <= best * 1.05
                })
                .unwrap_or(*informed_ladder.last().unwrap());
            rejections += run_informed(seed, informed, 2_000).informed_rejections;
        }
        let mean = to_near_optimal as f64 / seeds as f64;
        let mean_rejections = rejections as f64 / seeds as f64;
        let label = if informed { "informed" } else { "uniform" };
        println!(
            "informed  {label:<8} {mean:>6.0} samples to within 5% of best \
             ({mean_rejections:.0} spheroid rejections @2000)"
        );
        informed_rows.push((label, mean, mean_rejections));
    }
    let informed_reduction = informed_rows[0].1 / informed_rows[1].1.max(1e-9);
    println!("informed  reaches near-optimal in {informed_reduction:.1}x fewer samples\n");

    // --- Scratch reuse: steady-state allocation -----------------------
    // Repeated plans against one scratch: every buffer reaches capacity
    // during warm-up, after which grow_events stays flat (the zero-
    // steady-state-allocation contract the proptests lock).
    let mut scratch = PlannerScratch::new();
    let mut checker = CollisionChecker::new(base.clone(), margin, check_step);
    let reps = 12u64;
    let mut warmup_grow = 0u64;
    for seed in 0..reps {
        let planner = RrtStar::new(reuse_cfg(seed));
        let _ = planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, None);
        if seed == 0 {
            warmup_grow = scratch.grow_events();
        }
    }
    let steady_grow = scratch.grow_events() - warmup_grow;
    let footprint = scratch.footprint();
    println!(
        "scratch   {reps} plans: {warmup_grow} grow event(s) on the first, \
         {steady_grow} over the remaining {}  (footprint {footprint} elems)\n",
        reps - 1
    );

    // --- Mission-level row: planner_reuse off vs on -------------------
    let mission_env = DynamicScenario::CrossingCorridor.world(41).0;
    let mission = |reuse: bool| {
        let cfg = MissionConfig {
            max_decisions: 600,
            max_mission_time: 1_500.0,
            planner_reuse: reuse,
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let wall = Instant::now();
        let result = MissionRunner::new(cfg).run(&mission_env);
        (wall.elapsed().as_secs_f64(), result.metrics)
    };
    let (off_seconds, off_metrics) = mission(false);
    let (on_seconds, on_metrics) = mission(true);
    assert!(off_metrics.reached_goal && on_metrics.reached_goal);
    println!(
        "mission   reuse off {off_seconds:.2} s ({} decisions)   reuse on {on_seconds:.2} s \
         ({} decisions, {} warm replans, {} nodes retained)\n",
        off_metrics.decisions,
        on_metrics.decisions,
        on_metrics.warm_replans,
        on_metrics.planner_nodes_retained
    );

    // --- The shared scaling row for the BENCH trajectory diff ---------
    let peer_rows = peer_hazard_query_rows();
    for (peers, boxes, ns_per_query, blocked) in &peer_rows {
        println!(
            "peer hazard  K={peers}  {boxes} boxes  {ns_per_query:.0} ns/query  ({blocked} blocked)"
        );
    }

    // Machine-readable trajectory for CI and the roadmap.
    let mut w = roborun_trace::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("planner_reuse");
    w.key("host_cores");
    w.uint(cores as u64);
    w.key("warm_replan_ladder");
    w.begin_array();
    for (added, cold_median, warm_median, speedup, retained_mean, pruned_mean, cost_ratio) in
        &ladder_rows
    {
        w.begin_inline_object();
        w.key("added_voxels");
        w.uint(*added as u64);
        w.key("cold_ms");
        w.float(*cold_median, 3);
        w.key("warm_ms");
        w.float(*warm_median, 3);
        w.key("speedup");
        w.float(*speedup, 2);
        w.key("retained_mean");
        w.float(*retained_mean, 1);
        w.key("pruned_mean");
        w.float(*pruned_mean, 1);
        w.key("cost_ratio");
        w.float(*cost_ratio, 4);
        w.end();
    }
    w.end();
    w.key("small_delta_speedup");
    w.float(small_delta_speedup, 2);
    w.key("informed_sampling");
    w.begin_object();
    for (label, mean, rejections) in &informed_rows {
        w.key(label);
        w.begin_inline_object();
        w.key("samples_to_near_optimal");
        w.float(*mean, 1);
        w.key("spheroid_rejections_at_2000");
        w.float(*rejections, 1);
        w.end();
    }
    w.key("sample_reduction");
    w.float(informed_reduction, 2);
    w.end();
    w.key("scratch_reuse");
    w.begin_inline_object();
    w.key("plans");
    w.uint(reps);
    w.key("warmup_grow_events");
    w.uint(warmup_grow);
    w.key("steady_grow_events");
    w.uint(steady_grow);
    w.key("footprint_elems");
    w.uint(footprint as u64);
    w.end();
    w.key("mission_reuse");
    w.begin_inline_object();
    w.key("off_seconds");
    w.float(off_seconds, 3);
    w.key("on_seconds");
    w.float(on_seconds, 3);
    w.key("off_decisions");
    w.uint(off_metrics.decisions as u64);
    w.key("on_decisions");
    w.uint(on_metrics.decisions as u64);
    w.key("warm_replans");
    w.uint(on_metrics.warm_replans as u64);
    w.key("nodes_retained");
    w.uint(on_metrics.planner_nodes_retained as u64);
    w.key("nodes_pruned");
    w.uint(on_metrics.planner_nodes_pruned as u64);
    w.end();
    write_peer_hazard_rows(&mut w, &peer_rows);
    w.end();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::write(path, w.finish()).expect("write BENCH_10.json");
    println!("\nwrote {path}\n");
}

/// BENCH-trajectory diff: discovers every committed `BENCH_<n>.json`
/// baseline at the repo root, treats the highest generation as current,
/// and compares every shared cost key (leaves whose name carries a
/// `ns`/`ms`/`s`/`seconds` unit segment, matched by JSON path) against
/// each earlier baseline, failing the run on a more-than-2x regression.
/// Throughputs and identities (`missions_per_sec`, `peers`, `host_cores`)
/// anchor the paths but are not compared. New bench generations join the
/// diff automatically — no per-generation edits here.
fn trajectory() {
    use roborun_trace::JsonValue;
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let mut generations: Vec<u64> = std::fs::read_dir(root)
        .expect("repo root readable")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let n = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            n.parse().ok()
        })
        .collect();
    generations.sort_unstable();
    let Some(&newest) = generations.last() else {
        println!("no BENCH_<n>.json baseline at the repo root — run the newest bench first\n");
        std::process::exit(1);
    };
    println!("## BENCH trajectory — shared cost keys, BENCH_{newest} vs every earlier baseline\n");
    let load = |n: u64| -> JsonValue {
        let text = std::fs::read_to_string(format!("{root}/BENCH_{n}.json"))
            .expect("baseline listed by read_dir");
        JsonValue::parse(&text).unwrap_or_else(|e| panic!("BENCH_{n}.json: {e}"))
    };
    let current_costs = cost_leaves(&load(newest));
    let mut regressions = Vec::new();
    for &n in generations.iter().rev().skip(1) {
        let name = format!("BENCH_{n}.json");
        let previous_costs = cost_leaves(&load(n));
        let mut compared = 0usize;
        for (path, new_value) in &current_costs {
            let Some((_, old_value)) = previous_costs.iter().find(|(p, _)| p == path) else {
                continue;
            };
            compared += 1;
            let ratio = new_value / old_value.max(1e-12);
            let verdict = if ratio > 2.0 { "REGRESSION" } else { "ok" };
            println!("{name}  {path}  {old_value:.1} -> {new_value:.1}  ({ratio:.2}x)  {verdict}");
            if ratio > 2.0 {
                regressions.push(format!("{name} {path} {ratio:.2}x"));
            }
        }
        println!("({compared} shared cost key(s) against {name})\n");
    }
    if !regressions.is_empty() {
        println!("trajectory regressions (> 2x): {}", regressions.join(", "));
        std::process::exit(1);
    }
    println!("no shared cost key regressed by more than 2x\n");
}

/// Flattens a parsed BENCH file into `(path, value)` cost leaves: number
/// leaves whose key name carries a time unit as an underscore-separated
/// segment (`ns_per_query`, `k64_ms`, `sweep_seconds`, `exact_s`), so
/// counts like `missions` or rates like `missions_per_sec` stay out.
fn cost_leaves(value: &roborun_trace::JsonValue) -> Vec<(String, f64)> {
    use roborun_trace::JsonValue;
    fn is_cost_key(key: &str) -> bool {
        key.split('_')
            .any(|seg| matches!(seg, "ns" | "ms" | "s" | "seconds"))
    }
    fn walk(value: &JsonValue, path: &str, out: &mut Vec<(String, f64)>) {
        match value {
            JsonValue::Object(members) => {
                for (key, child) in members {
                    walk(child, &format!("{path}/{key}"), out);
                }
            }
            JsonValue::Array(items) => {
                for (i, child) in items.iter().enumerate() {
                    walk(child, &format!("{path}/{i}"), out);
                }
            }
            JsonValue::Number(n) => {
                let key = path.rsplit('/').next().unwrap_or(path);
                if is_cost_key(key) {
                    out.push((path.to_string(), *n));
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(value, "", &mut out);
    out
}

/// The robustness evaluation: every deterministic fault scenario family,
/// fault-oblivious versus degradation-aware, as a CSV series.
fn fault_sweep() {
    use roborun_mission::sweep::run_fault_sweep;
    use roborun_mission::FaultSweepConfig;
    println!("## Fault sweep — fault-oblivious vs degradation-aware\n");
    let rows = run_fault_sweep(&FaultSweepConfig::quick(41));
    println!("{}", report::fault_csv(&rows));
    println!(
        "(the fault-oblivious baseline deadlocks or collides in every family;\n\
         the degradation-aware runtime completes or safe-stops, never colliding)\n"
    );
}

/// Ablation (not a paper figure): freeze each knob family at its static
/// Table II value while the rest keep adapting, and measure what each
/// family contributes to the mission-level gains.
fn ablation_knobs(full: bool) {
    use roborun_core::KnobAblation;
    println!("## Ablation — per-knob contribution (frozen knobs keep their Table II values)\n");
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 200.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(29);
    let variants: Vec<(String, KnobAblation)> = if full {
        KnobAblation::catalog()
    } else {
        KnobAblation::catalog().into_iter().take(4).collect()
    };
    let mut rows = Vec::new();
    for (name, ablation) in variants {
        let config = MissionConfig {
            ablation,
            max_decisions: if full { 6_000 } else { 2_500 },
            max_mission_time: if full { 8_000.0 } else { 4_000.0 },
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(config).run(&env);
        rows.push(vec![
            name,
            format!("{}", ablation.frozen_count()),
            format!("{:.1}", result.metrics.mission_time),
            format!("{:.2}", result.metrics.mean_velocity),
            format!("{:.0}%", result.metrics.mean_cpu_utilization * 100.0),
            format!("{:.2}", result.metrics.median_latency),
            format!(
                "{}",
                result.metrics.reached_goal && !result.metrics.collided
            ),
        ]);
    }
    println!(
        "{}",
        report::format_table(
            &[
                "frozen knobs",
                "count",
                "mission time (s)",
                "velocity (m/s)",
                "CPU",
                "median latency (s)",
                "success"
            ],
            &rows
        )
    );
    println!(
        "(freezing precision costs the most because precision drives the voxel count\n\
         cubically; freezing everything reproduces the static knob assignment while\n\
         keeping the dynamic deadline)\n"
    );
}

/// Extra experiment: what the freed-up CPU buys. Replays each design's CPU
/// profile through the cognitive co-task scheduler (semantic labeling,
/// gesture detection, object tracking).
fn cotask(full: bool) {
    use roborun_cognitive::{
        intervals_from_telemetry, CoTaskComparison, CognitiveTask, HeadroomScheduler,
        SchedulerConfig,
    };
    println!("## Co-task throughput — what the 36% CPU reduction buys\n");
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 200.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(17);
    let scheduler =
        HeadroomScheduler::new(SchedulerConfig::default(), CognitiveTask::standard_mix());
    let mut reports = Vec::new();
    for (label, mode) in [
        ("spatial-aware", RuntimeMode::SpatialAware),
        ("spatial-oblivious", RuntimeMode::SpatialOblivious),
    ] {
        let config = MissionConfig {
            max_decisions: if full { 8_000 } else { 4_000 },
            max_mission_time: if full { 10_000.0 } else { 5_000.0 },
            ..MissionConfig::new(mode)
        };
        let min_epoch = config.min_epoch;
        let result = MissionRunner::new(config).run(&env);
        let report = scheduler.run(&intervals_from_telemetry(&result.telemetry, min_epoch));
        println!(
            "### {label} (nav CPU {:.0}%, mission {:.0} s)\n{}",
            result.metrics.mean_cpu_utilization * 100.0,
            result.metrics.mission_time,
            report.to_table()
        );
        reports.push(report);
    }
    let comparison = CoTaskComparison::between(
        "spatial-aware",
        &reports[0],
        "spatial-oblivious",
        &reports[1],
    );
    println!(
        "attainment ratio (aware/oblivious): {:.2}x   throughput ratio: {:.2}x\n",
        comparison.attainment_ratio, comparison.throughput_ratio
    );
}

/// Extra experiment: the mission run as a middleware node graph, with the
/// communication term measured from real per-topic traffic.
fn node_graph(full: bool) {
    use roborun_mission::{NodePipeline, NodePipelineConfig};
    println!("## Node-graph pipeline — measured communication and topology\n");
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 200.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(11);
    for (label, mode) in [
        ("spatial-aware", RuntimeMode::SpatialAware),
        ("spatial-oblivious", RuntimeMode::SpatialOblivious),
    ] {
        let mut config = NodePipelineConfig::new(mode);
        config.mission.max_decisions = if full { 8_000 } else { 4_000 };
        config.mission.max_mission_time = if full { 10_000.0 } else { 5_000.0 };
        let result = NodePipeline::new(config).run(&env);
        let comm_mean: f64 = result.comm_per_decision.iter().sum::<f64>()
            / result.comm_per_decision.len().max(1) as f64;
        println!(
            "### {label}: mission {:.0} s, velocity {:.2} m/s, mean comm/decision {:.1} ms",
            result.mission.metrics.mission_time,
            result.mission.metrics.mean_velocity,
            comm_mean * 1e3
        );
        println!("{}", result.graph.to_table());
    }
}

/// Extra experiment: robustness under degraded sensing (fog, dropouts),
/// audited by the safety monitor.
fn faults(full: bool) {
    use roborun_core::SafetyReport;
    use roborun_sim::FaultConfig;
    println!("## Fault injection — degraded sensing, same governor\n");
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 200.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(21);
    let mut rows = Vec::new();
    for (label, faults) in [
        ("healthy", FaultConfig::healthy()),
        ("fog 12 m", FaultConfig::fog(12.0)),
        ("fog 6 m", FaultConfig::fog(6.0)),
        ("flaky sensors", FaultConfig::flaky_sensors(0.1, 0.3)),
    ] {
        let config = MissionConfig {
            faults,
            max_decisions: if full { 8_000 } else { 4_000 },
            max_mission_time: if full { 10_000.0 } else { 5_000.0 },
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(config).run(&env);
        let safety = SafetyReport::from_telemetry(&result.telemetry);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", result.metrics.mission_time),
            format!("{:.2}", result.metrics.mean_velocity),
            format!("{:.1}%", safety.velocity_violation_rate() * 100.0),
            format!("{}", result.metrics.reached_goal),
            format!("{}", result.metrics.collided),
        ]);
    }
    println!(
        "{}",
        report::format_table(
            &[
                "sensing",
                "mission time (s)",
                "velocity (m/s)",
                "budget violations",
                "reached goal",
                "collided"
            ],
            &rows
        )
    );
    println!(
        "(fog caps the profiled visibility, so the deadline equation shortens the budget\n\
         and the governor trades velocity for safety rather than colliding)\n"
    );
}

/// Ablation (not a paper figure): how much the waypoint-aware Algorithm 1
/// budget matters compared to using only the instantaneous Eq. 1 budget.
fn ablation(full: bool) {
    println!("## Ablation — Algorithm 1 (waypoint-aware budget) vs plain Eq. 1\n");
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 240.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(29);
    let mut rows = Vec::new();
    for (name, waypoint_budgeting) in [
        ("Algorithm 1 (paper)", true),
        ("Eq. 1 only (ablated)", false),
    ] {
        let config = MissionConfig {
            waypoint_budgeting,
            max_decisions: if full { 6_000 } else { 2_500 },
            ..MissionConfig::new(RuntimeMode::SpatialAware)
        };
        let result = MissionRunner::new(config).run(&env);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", result.metrics.mission_time),
            format!("{:.2}", result.metrics.mean_velocity),
            format!("{:.1}%", result.telemetry.deadline_hit_rate() * 100.0),
            format!(
                "{}",
                result.metrics.reached_goal && !result.metrics.collided
            ),
        ]);
    }
    println!(
        "{}",
        report::format_table(
            &[
                "budgeting",
                "mission time (s)",
                "velocity (m/s)",
                "deadline hit rate",
                "success"
            ],
            &rows
        )
    );
    println!(
        "(the ablated governor trusts the instantaneous visibility even when the planned\n\
         trajectory dives into congestion, so it tends to miss more deadlines)\n"
    );
}

// --------------------------------------------------------------------- tables

fn table2() {
    println!("## Table II — knob values (static baseline vs dynamic ranges)\n");
    let ranges = KnobRanges::table_ii();
    let s = KnobSettings::static_baseline();
    let rows = vec![
        vec![
            "point cloud precision (m)".to_string(),
            format!("{}", s.point_cloud_precision),
            format!("[{} .. {}]", ranges.precision_min, ranges.precision_max),
        ],
        vec![
            "octomap to planner precision (m)".to_string(),
            format!("{}", s.map_to_planner_precision),
            format!("[{} .. {}]", ranges.precision_min, ranges.precision_max),
        ],
        vec![
            "octomap volume (m^3)".to_string(),
            format!("{}", s.octomap_volume),
            format!("[0 .. {}]", ranges.octomap_volume_max),
        ],
        vec![
            "octomap to planner volume (m^3)".to_string(),
            format!("{}", s.map_to_planner_volume),
            format!("[0 .. {}]", ranges.map_to_planner_volume_max),
        ],
        vec![
            "planner volume (m^3)".to_string(),
            format!("{}", s.planner_volume),
            format!("[0 .. {}]", ranges.planner_volume_max),
        ],
    ];
    println!(
        "{}",
        report::format_table(&["knob", "static", "dynamic"], &rows)
    );
    println!(
        "precision lattice searched by the solver: {:?}\n",
        ranges.precision_lattice()
    );
}

fn table1() {
    println!("## Table I — variables collected by the profilers\n");
    let rows = vec![
        vec![
            "gap between obstacles".into(),
            "point cloud".into(),
            "precision".into(),
        ],
        vec![
            "closest obstacle, closest unknown".into(),
            "point cloud, octomap, smoother".into(),
            "precision, volume, deadline".into(),
        ],
        vec![
            "sensor, map volume".into(),
            "point cloud, octomap".into(),
            "volume".into(),
        ],
        vec![
            "velocity, position".into(),
            "sensors".into(),
            "deadline".into(),
        ],
        vec!["trajectory".into(), "smoother".into(), "deadline".into()],
    ];
    println!(
        "{}",
        report::format_table(&["variable profiled", "pipeline stage", "used for"], &rows)
    );
    // Show one concrete profile so the mapping to code is visible.
    let open = SpatialProfile::open_space(2.5, 40.0);
    let tight = SpatialProfile::congested(0.6, 0.8, 2.0);
    println!(
        "example profile (open sky):     gap_min {:.1} m, closest obstacle {:.1} m, visibility {:.1} m",
        open.gap_min, open.closest_obstacle, open.visibility
    );
    println!(
        "example profile (tight aisle):  gap_min {:.1} m, closest obstacle {:.1} m, visibility {:.1} m\n",
        tight.gap_min, tight.closest_obstacle, tight.visibility
    );
}

fn fit() {
    println!("## Eq. 2 and Eq. 4 model fits\n");
    // Eq. 2: fit the stopping model from synthetic calibration flights.
    let truth = StoppingModel::paper_default();
    let samples: Vec<(f64, f64)> = (1..=24)
        .map(|i| {
            let v = i as f64 * 0.33;
            (v, truth.stopping_distance(v))
        })
        .collect();
    let fitted = StoppingModel::fit(&samples).expect("stopping fit");
    println!(
        "stopping model d_stop(v) = {:.3} v^2 + {:.3} v + {:.3}   (MSE {:.2e}, paper reports 2% MSE)",
        fitted.a,
        fitted.b,
        fitted.c,
        fitted.mse(&samples)
    );

    // Eq. 4: fit each governed stage from a profiled precision/volume grid.
    let sim = ComputeLatencyModel::calibrated();
    for (name, coeffs) in [
        ("perception (octomap)", sim.perception),
        ("perception-to-planning", sim.perception_to_planning),
        ("planning", sim.planning),
    ] {
        let mut samples = Vec::new();
        for &p in &KnobRanges::table_ii().precision_lattice() {
            for v in [5_000.0, 20_000.0, 46_000.0, 80_000.0, 150_000.0, 400_000.0] {
                samples.push(LatencySample {
                    precision: p,
                    volume: v,
                    latency: coeffs.latency(p, v),
                });
            }
        }
        let (fitted, rel_rmse) = PipelineLatencyModel::fit_stage(&samples).expect("stage fit");
        println!(
            "{name:<24} q = [{:.3e}, {:.3e}, {:.3e}, 1.0]   relative RMSE {:.2}% (paper: <8% MSE)",
            fitted.q0,
            fitted.q1,
            fitted.q2,
            rel_rmse * 100.0
        );
    }
    println!();
}

// --------------------------------------------------------------------- fig 2

fn fig2a() {
    println!("## Figure 2a — processing latency vs volume for several precisions (CSV)\n");
    let sim = ComputeLatencyModel::calibrated();
    let precisions = [0.3, 0.6, 1.2, 2.4];
    let mut rows = Vec::new();
    for i in 0..=10 {
        let volume = i as f64 * 6_000.0;
        let mut row = vec![volume];
        for &p in &precisions {
            row.push(sim.stage_latency(PipelineStage::Perception, p, volume));
        }
        rows.push(row);
    }
    println!(
        "{}",
        report::format_csv(
            &[
                "volume_m3",
                "lat_p0.3_s",
                "lat_p0.6_s",
                "lat_p1.2_s",
                "lat_p2.4_s"
            ],
            &rows
        )
    );
    println!("(latency doubles with volume and grows ~8x when the voxel size halves)\n");
}

fn fig2b() {
    println!("## Figure 2b — decision deadline vs speed for several visibilities (CSV)\n");
    let budgeter = TimeBudgeter::default();
    let visibilities = [5.0, 10.0, 20.0, 40.0];
    let mut rows = Vec::new();
    for i in 1..=20 {
        let v = i as f64 * 0.5;
        let mut row = vec![v];
        for &d in &visibilities {
            row.push(budgeter.local_budget(v, d));
        }
        rows.push(row);
    }
    println!(
        "{}",
        report::format_csv(
            &[
                "velocity_mps",
                "ddl_vis5_s",
                "ddl_vis10_s",
                "ddl_vis20_s",
                "ddl_vis40_s"
            ],
            &rows
        )
    );
    println!("(the deadline shrinks with speed and grows with visibility)\n");
}

// ----------------------------------------------------- fig 3 / fig 4 missions

fn mission_pair(env: &Environment, max_decisions: usize) -> (MissionResult, MissionResult) {
    let oblivious = MissionRunner::new(MissionConfig {
        max_decisions,
        max_mission_time: 8_000.0,
        ..MissionConfig::new(RuntimeMode::SpatialOblivious)
    })
    .run(env);
    let aware = MissionRunner::new(MissionConfig {
        max_decisions,
        max_mission_time: 8_000.0,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    })
    .run(env);
    (oblivious, aware)
}

fn fig3(full: bool) {
    println!("## Figure 3 — high-precision mission (package delivery through dense clusters)\n");
    let env = if full {
        Scenario::PackageDelivery.environment(11)
    } else {
        Scenario::PackageDelivery.short_environment(11)
    };
    let (oblivious, aware) = mission_pair(&env, if full { 4_000 } else { 2_000 });
    for (name, result) in [("spatial-oblivious", &oblivious), ("spatial-aware", &aware)] {
        let records = result.telemetry.records();
        let mean = |f: &dyn Fn(&roborun_core::DecisionRecord) -> f64| {
            records.iter().map(f).sum::<f64>() / records.len().max(1) as f64
        };
        let distinct_precisions: std::collections::BTreeSet<u64> = records
            .iter()
            .map(|r| (r.knobs.point_cloud_precision * 100.0) as u64)
            .collect();
        println!(
            "{name:<20} mean precision {:.2} m | mean octomap volume {:>8.0} m^3 | mean latency {:>5.2} s | distinct precision levels used: {}",
            mean(&|r| r.knobs.point_cloud_precision),
            mean(&|r| r.knobs.octomap_volume),
            mean(&|r| r.latency()),
            distinct_precisions.len(),
        );
    }
    println!("\nper-decision series (spatial-aware) — precision/volume/latency (Fig. 3d/e/f):");
    print_series_sample(
        &aware,
        &["time_s", "precision_m", "octomap_volume_m3", "latency_s"],
        |r| {
            vec![
                r.time,
                r.knobs.point_cloud_precision,
                r.knobs.octomap_volume,
                r.latency(),
            ]
        },
    );
    println!("per-decision series (spatial-oblivious) — constant worst case (Fig. 3a/b/c):");
    print_series_sample(
        &oblivious,
        &["time_s", "precision_m", "octomap_volume_m3", "latency_s"],
        |r| {
            vec![
                r.time,
                r.knobs.point_cloud_precision,
                r.knobs.octomap_volume,
                r.latency(),
            ]
        },
    );
}

fn fig4(full: bool) {
    println!("## Figure 4 — high-velocity mission (search and rescue over open terrain)\n");
    let env = if full {
        Scenario::SearchAndRescue.environment(13)
    } else {
        Scenario::SearchAndRescue.short_environment(13)
    };
    let (oblivious, aware) = mission_pair(&env, if full { 5_000 } else { 2_500 });
    for (name, result) in [("spatial-oblivious", &oblivious), ("spatial-aware", &aware)] {
        let records = result.telemetry.records();
        let mean = |f: &dyn Fn(&roborun_core::DecisionRecord) -> f64| {
            records.iter().map(f).sum::<f64>() / records.len().max(1) as f64
        };
        println!(
            "{name:<20} mean velocity {:.2} m/s | mean visibility {:>5.1} m | mean deadline {:>5.2} s | mission time {:>7.1} s",
            mean(&|r| r.commanded_velocity),
            mean(&|r| r.visibility),
            mean(&|r| r.deadline),
            result.metrics.mission_time,
        );
    }
    println!("\nper-decision series (spatial-aware) — velocity/visibility/deadline (Fig. 4d/e/f):");
    print_series_sample(
        &aware,
        &["time_s", "velocity_mps", "visibility_m", "deadline_s"],
        |r| vec![r.time, r.commanded_velocity, r.visibility, r.deadline],
    );
    println!("per-decision series (spatial-oblivious) — constant worst case (Fig. 4a/b/c):");
    print_series_sample(
        &oblivious,
        &["time_s", "velocity_mps", "visibility_m", "deadline_s"],
        |r| vec![r.time, r.commanded_velocity, r.visibility, r.deadline],
    );
}

fn print_series_sample(
    result: &MissionResult,
    header: &[&str],
    row: impl Fn(&roborun_core::DecisionRecord) -> Vec<f64>,
) {
    let records = result.telemetry.records();
    let step = (records.len() / 12).max(1);
    let rows: Vec<Vec<f64>> = records.iter().step_by(step).map(row).collect();
    println!("{}", report::format_csv(header, &rows));
}

// -------------------------------------------- representative mission (V-C)

fn representative_mission(full: bool) -> (Environment, MissionResult, MissionResult) {
    let difficulty = if full {
        DifficultyConfig::mid()
    } else {
        DifficultyConfig {
            goal_distance: 240.0,
            ..DifficultyConfig::mid()
        }
    };
    let env = EnvironmentGenerator::new(difficulty).generate(23);
    let (oblivious, aware) = mission_pair(&env, if full { 6_000 } else { 2_500 });
    (env, oblivious, aware)
}

fn fig9(env: &Environment, oblivious: &MissionResult, aware: &MissionResult) {
    println!("## Figure 9 — representative mission map (congestion heat map + trajectories)\n");
    let map = CongestionMap::build(
        env,
        if env.mission_length() > 500.0 {
            60.0
        } else {
            30.0
        },
    );
    println!("congestion heat map ('#' dense, '+' moderate, '.' sparse):");
    for row in map.to_rows() {
        let line: String = row
            .iter()
            .map(|&v| {
                if v > 0.2 {
                    '#'
                } else if v > 0.05 {
                    '+'
                } else if v > 0.0 {
                    '.'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  |{line}|");
    }
    println!(
        "\ntrajectories: baseline visited {} decision points, RoboRun {} (start {} -> goal {})",
        oblivious.flown_path.len(),
        aware.flown_path.len(),
        env.start(),
        env.goal()
    );
    println!(
        "both reached goal: baseline {}, RoboRun {}\n",
        oblivious.metrics.reached_goal, aware.metrics.reached_goal
    );
}

fn fig5(oblivious: &MissionResult, aware: &MissionResult) {
    println!("## Figure 5 — latency and deadline: static worst case vs dynamic (CSV)\n");
    println!("spatial-aware (latency varies with space, deadline extends when visibility allows):");
    print_series_sample(aware, &["time_s", "latency_s", "deadline_s"], |r| {
        vec![r.time, r.latency(), r.deadline]
    });
    println!("spatial-oblivious (constant latency, constant worst-case deadline):");
    print_series_sample(oblivious, &["time_s", "latency_s", "deadline_s"], |r| {
        vec![r.time, r.latency(), r.deadline]
    });
    let aware_median = aware.telemetry.median_latency().unwrap_or(0.0);
    let oblivious_median = oblivious.telemetry.median_latency().unwrap_or(0.0);
    println!(
        "median latency: baseline {:.2} s vs RoboRun {:.2} s -> {:.1}x reduction (paper reports 11x)\n",
        oblivious_median,
        aware_median,
        oblivious_median / aware_median.max(1e-9)
    );
    println!("latency tail, baseline:");
    println!("{}", report::latency_tail_table(&oblivious.telemetry));
    println!("latency tail, RoboRun (critical path excludes plan-ahead masked time):");
    println!("{}", report::latency_tail_table(&aware.telemetry));
}

fn fig10(oblivious: &MissionResult, aware: &MissionResult) {
    println!("## Figure 10 — representative mission: time, velocity and precision over time\n");
    let rows = vec![
        vec![
            "mission time (s)".to_string(),
            format!("{:.1}", oblivious.metrics.mission_time),
            format!("{:.1}", aware.metrics.mission_time),
            format!(
                "{:.2}x",
                oblivious.metrics.mission_time / aware.metrics.mission_time.max(1e-9)
            ),
        ],
        vec![
            "mission energy (kJ)".to_string(),
            format!("{:.1}", oblivious.metrics.energy_kj),
            format!("{:.1}", aware.metrics.energy_kj),
            format!(
                "{:.2}x",
                oblivious.metrics.energy_kj / aware.metrics.energy_kj.max(1e-9)
            ),
        ],
        vec![
            "mean velocity (m/s)".to_string(),
            format!("{:.2}", oblivious.metrics.mean_velocity),
            format!("{:.2}", aware.metrics.mean_velocity),
            format!(
                "{:.2}x",
                aware.metrics.mean_velocity / oblivious.metrics.mean_velocity.max(1e-9)
            ),
        ],
    ];
    println!(
        "{}",
        report::format_table(&["metric", "baseline", "RoboRun", "ratio"], &rows)
    );
    println!("precision over time, spatial-aware (Fig. 10c) — varies in zones A/C, flat in B:");
    print_series_sample(aware, &["time_s", "precision_m", "zone"], |r| {
        vec![
            r.time,
            r.knobs.point_cloud_precision,
            match r.zone {
                Some('A') => 1.0,
                Some('B') => 2.0,
                Some('C') => 3.0,
                _ => 0.0,
            },
        ]
    });
    for (name, result) in [("baseline", oblivious), ("RoboRun", aware)] {
        let zones = ZoneBreakdown::from_telemetry(&result.telemetry);
        let summary: Vec<String> = zones
            .zones
            .iter()
            .map(|z| {
                format!(
                    "zone {}: {:.2} m/s, precision {:.1} m",
                    z.zone, z.mean_velocity, z.mean_precision
                )
            })
            .collect();
        println!("{name:<10} {}", summary.join(" | "));
    }
    println!();
}

fn fig11(oblivious: &MissionResult, aware: &MissionResult) {
    println!("## Figure 11 — end-to-end latency breakdown\n");
    for (name, result) in [
        ("spatial-aware (RoboRun)", aware),
        ("spatial-oblivious (baseline)", oblivious),
    ] {
        println!("{name} — per-decision breakdown CSV (Fig. 11a):");
        let records = result.telemetry.records();
        let step = (records.len() / 10).max(1);
        let rows: Vec<Vec<f64>> = records
            .iter()
            .step_by(step)
            .map(|r| {
                let b = &r.breakdown;
                vec![
                    r.time,
                    b.point_cloud,
                    b.perception,
                    b.perception_to_planning,
                    b.planning,
                    b.communication,
                    b.runtime_overhead,
                ]
            })
            .collect();
        println!(
            "{}",
            report::format_csv(
                &[
                    "time_s",
                    "point_cloud_s",
                    "octomap_s",
                    "oct_to_plan_s",
                    "planning_s",
                    "comm_s",
                    "runtime_s"
                ],
                &rows
            )
        );
        let zones = ZoneBreakdown::from_telemetry(&result.telemetry);
        println!("normalised stage shares (Fig. 11b):");
        for (stage, share) in &zones.stage_shares {
            if *share > 0.002 {
                println!("  {stage:<20} {:>5.1}%", share * 100.0);
            }
        }
        for z in &zones.zones {
            println!(
                "  zone {} latency spread {:.2} s (mean {:.2} s over {} decisions)",
                z.zone, z.latency_spread, z.mean_latency, z.decisions
            );
        }
        println!();
    }
}

// ----------------------------------------------------------- fig 7 / fig 8

fn sweep(full: bool) -> roborun_mission::SweepResults {
    if full {
        println!("running the full 27-environment sweep (this takes a while)...\n");
        run_sweep(&SweepConfig {
            seed: 7,
            aware: MissionConfig {
                max_decisions: 6_000,
                max_mission_time: 10_000.0,
                ..MissionConfig::new(RuntimeMode::SpatialAware)
            },
            oblivious: MissionConfig {
                max_decisions: 8_000,
                max_mission_time: 10_000.0,
                ..MissionConfig::new(RuntimeMode::SpatialOblivious)
            },
            ..SweepConfig::default()
        })
    } else {
        // Quick mode: the full 3x3 density/spread matrix at a reduced goal
        // distance (plus the three goal distances at mid density/spread so
        // the Fig. 8d sensitivity still has three levels).
        let mut difficulties = Vec::new();
        for &density in &[0.3, 0.45, 0.6] {
            for &spread in &[40.0, 80.0, 120.0] {
                difficulties.push(DifficultyConfig {
                    obstacle_density: density,
                    obstacle_spread: spread,
                    goal_distance: 200.0,
                });
            }
        }
        for &goal in &[150.0, 225.0, 300.0] {
            difficulties.push(DifficultyConfig {
                obstacle_density: 0.45,
                obstacle_spread: 80.0,
                goal_distance: goal,
            });
        }
        println!(
            "running the quick sweep ({} scaled environments)...\n",
            difficulties.len()
        );
        run_sweep(&SweepConfig {
            difficulties,
            seed: 7,
            aware: MissionConfig {
                max_decisions: 2_500,
                ..MissionConfig::new(RuntimeMode::SpatialAware)
            },
            oblivious: MissionConfig {
                max_decisions: 4_000,
                ..MissionConfig::new(RuntimeMode::SpatialOblivious)
            },
            ..SweepConfig::default()
        })
    }
}

fn fig8(results: &roborun_mission::SweepResults) {
    println!("## Figure 8 — sensitivity to environment difficulty\n");
    println!(
        "Fig. 8a evaluation knob values: density {:?}, spread {:?} m, goal distance {:?} m\n",
        [0.3, 0.45, 0.6],
        [40.0, 80.0, 120.0],
        [600.0, 900.0, 1200.0]
    );
    println!("Fig. 8b — obstacle density:");
    println!(
        "{}",
        report::fig8_table("density", &results.sensitivity(|d| d.obstacle_density))
    );
    println!("Fig. 8c — obstacle spread:");
    println!(
        "{}",
        report::fig8_table("spread (m)", &results.sensitivity(|d| d.obstacle_spread))
    );
    println!("Fig. 8d — goal distance:");
    println!(
        "{}",
        report::fig8_table(
            "goal distance (m)",
            &results.sensitivity(|d| d.goal_distance)
        )
    );
    let (a_density, o_density) = results.sensitivity_ratio(|d| d.obstacle_density);
    let (a_spread, o_spread) = results.sensitivity_ratio(|d| d.obstacle_spread);
    let (a_goal, o_goal) = results.sensitivity_ratio(|d| d.goal_distance);
    println!("flight-time ratios (highest / lowest knob value):");
    println!("  density:       RoboRun {a_density:.2}x vs baseline {o_density:.2}x   (paper: 1.5x vs 1.1x)");
    println!("  spread:        RoboRun {a_spread:.2}x vs baseline {o_spread:.2}x   (paper: 1.4x vs 1.1x)");
    println!(
        "  goal distance: RoboRun {a_goal:.2}x vs baseline {o_goal:.2}x   (paper: 1.3x vs 2.0x)"
    );
    println!();
}
