//! Criterion benchmarks for the middleware substrate: raw pub/sub
//! throughput, fan-out cost and executor spin overhead.
//!
//! These validate that the transport layer's real cost is negligible next
//! to the navigation kernels (the modeled "comm" term dominates it by
//! orders of magnitude), i.e. the middleware never becomes the bottleneck
//! of the reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roborun_middleware::{Executor, MessageBus, Node, QosProfile};

/// Publish/take round trips for a point-cloud-sized payload.
fn bench_pub_sub_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_round_trip");
    group.sample_size(40);
    for &points in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("points", points), &points, |b, &points| {
            let bus = MessageBus::default();
            let talker = Node::new(&bus, "talker").unwrap();
            let listener = Node::new(&bus, "listener").unwrap();
            let publisher = talker.publisher::<Vec<f64>>("/sensors/points").unwrap();
            let subscription = listener
                .subscribe::<Vec<f64>>("/sensors/points", QosProfile::sensor_data())
                .unwrap();
            let payload = vec![1.5f64; points];
            b.iter(|| {
                publisher.publish(payload.clone()).unwrap();
                std::hint::black_box(subscription.try_recv())
            });
        });
    }
    group.finish();
}

/// Fan-out cost: one publish delivered to an increasing number of
/// subscribers.
fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_fanout");
    group.sample_size(40);
    for &subscribers in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("subscribers", subscribers),
            &subscribers,
            |b, &subscribers| {
                let bus = MessageBus::default();
                let talker = Node::new(&bus, "talker").unwrap();
                let publisher = talker.publisher::<Vec<f64>>("/fanout").unwrap();
                let subs: Vec<_> = (0..subscribers)
                    .map(|i| {
                        let node = Node::new(&bus, &format!("listener_{i}")).unwrap();
                        node.subscribe::<Vec<f64>>("/fanout", QosProfile::reliable(4))
                            .unwrap()
                    })
                    .collect();
                let payload = vec![1.5f64; 1_000];
                b.iter(|| {
                    publisher.publish(payload.clone()).unwrap();
                    for sub in &subs {
                        std::hint::black_box(sub.try_recv());
                    }
                });
            },
        );
    }
    group.finish();
}

/// Executor spin cost with a producer/consumer pair and a timer.
fn bench_executor_spin(c: &mut Criterion) {
    let mut group = c.benchmark_group("middleware_executor");
    group.sample_size(40);
    group.bench_function("spin_once_pipeline", |b| {
        let bus = MessageBus::default();
        let source = Node::new(&bus, "source").unwrap();
        let sink = Node::new(&bus, "sink").unwrap();
        let publisher = source.publisher::<u64>("/ticks").unwrap();
        let subscription = sink
            .subscribe::<u64>("/ticks", QosProfile::reliable(32))
            .unwrap();
        let mut executor = Executor::new(&bus);
        let mut tick = 0u64;
        executor.add_task("producer", move |_| {
            let _ = publisher.publish(tick);
            tick += 1;
        });
        executor.add_task(
            "consumer",
            move |_| {
                while subscription.try_recv().is_some() {}
            },
        );
        executor.add_timer("heartbeat", 1.0, |_| {});
        b.iter(|| std::hint::black_box(executor.spin_once(0.1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pub_sub_round_trip,
    bench_fanout,
    bench_executor_spin
);
criterion_main!(benches);
