//! Kernel-scaling benchmarks (real wall-clock validation of Fig. 2a's
//! shape): the perception kernels' measured cost must grow with volume and
//! with inverse precision, which is the property the calibrated latency
//! model (and therefore the governor) relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roborun_core::RuntimeMode;
use roborun_dynamics::{Actor, DynamicWorld, MotionModel};
use roborun_env::{DifficultyConfig, EnvironmentGenerator, Obstacle, ObstacleField};
use roborun_geom::{Aabb, PointGridIndex, Ray, SplitMix64, Vec3};
use roborun_mission::cycle::{path_clear_of_predicted, predicted_blockage_distance};
use roborun_mission::{MissionConfig, MissionRunner};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{CollisionChecker, RrtConfig, RrtStar, Trajectory, TrajectoryPoint};

/// A synthetic dense scan: a wall of points at the given distance.
fn wall_cloud(distance: f64, points_per_side: usize) -> PointCloud {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut points = Vec::with_capacity(points_per_side * points_per_side);
    for iy in 0..points_per_side {
        for iz in 0..points_per_side {
            points.push(Vec3::new(
                distance,
                -10.0 + 20.0 * iy as f64 / points_per_side as f64,
                10.0 * iz as f64 / points_per_side as f64,
            ));
        }
    }
    PointCloud::new(origin, points)
}

fn bench_point_cloud_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 48);
    let mut group = c.benchmark_group("point_cloud_downsample");
    for &precision in &[0.3, 0.6, 1.2, 2.4, 4.8, 9.6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{precision}m")),
            &precision,
            |b, &p| b.iter(|| std::hint::black_box(cloud.downsampled(p)).len()),
        );
    }
    group.finish();
}

fn bench_octomap_insert_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 32);
    let mut group = c.benchmark_group("octomap_integrate_raytrace_step");
    for &step in &[0.3, 0.6, 1.2, 2.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{step}m")),
            &step,
            |b, &s| {
                b.iter(|| {
                    let mut map = OccupancyMap::new(0.3);
                    std::hint::black_box(map.integrate_cloud(&cloud, s))
                })
            },
        );
    }
    group.finish();
}

fn bench_octomap_insert_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("octomap_integrate_cloud_size");
    for &side in &[8usize, 16, 32, 48] {
        let cloud = wall_cloud(15.0, side);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pts", cloud.len())),
            &cloud,
            |b, cloud| {
                b.iter(|| {
                    let mut map = OccupancyMap::new(0.3);
                    std::hint::black_box(map.integrate_cloud(cloud, 0.6))
                })
            },
        );
    }
    group.finish();
}

/// DDA-batched `integrate_cloud` against the retained per-sample
/// reference, on a 10⁴-point cloud, across map-resolution / raytrace-step
/// pairs from the paper's power-of-two precision lattice. The batched
/// path hash-keys each traversed voxel once per run instead of once per
/// sample, so the win grows with the oversampling ratio (coarse map in
/// open space, fine raytracer): ~8 samples/voxel at 2.4 m / 0.3 m. At
/// step >= resolution the carve routes to the per-sample path, so the two
/// columns are within noise there (regression guard for the mission
/// loop's own regime).
fn bench_integrate_cloud_batched_vs_reference(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 100); // 10_000 points
    let mut group = c.benchmark_group("octomap_integrate_10k_points");
    group.sample_size(10);
    for &(resolution, step) in &[(0.3, 0.3), (0.6, 0.3), (1.2, 0.3), (2.4, 0.3)] {
        let label = format!("res{resolution}m_step{step}m");
        group.bench_with_input(
            BenchmarkId::new("batched", &label),
            &(resolution, step),
            |b, &(r, s)| {
                b.iter(|| {
                    let mut map = OccupancyMap::new(r);
                    std::hint::black_box(map.integrate_cloud(&cloud, s))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", &label),
            &(resolution, step),
            |b, &(r, s)| {
                b.iter(|| {
                    let mut map = OccupancyMap::new(r);
                    std::hint::black_box(map.integrate_cloud_reference(&cloud, s))
                })
            },
        );
    }
    group.finish();
}

/// Incremental broad-phase patching against a from-scratch rebuild, on a
/// single-delta map refresh over a ~7k-box export — the per-decision cost
/// the mission runner pays now that its collision checker lives across
/// replans.
fn bench_collision_patch_vs_rebuild(c: &mut Criterion) {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut base = OccupancyMap::new(0.3);
    // A dense multi-wall region: ~7k occupied voxels once integrated.
    let mut points = Vec::new();
    for &x in &[12.0, 18.0, 24.0] {
        for yi in -26..=26 {
            for zi in 0..30 {
                points.push(Vec3::new(x, yi as f64 * 0.3, zi as f64 * 0.3));
            }
        }
    }
    base.integrate_cloud(&PointCloud::new(origin, points), 0.3);
    let map1 = PlannerMap::export(&base, &ExportConfig::new(0.3, 1e9, origin));
    // One extra voxel inside the existing bounds: the canonical
    // single-delta refresh (new frontier observation near a known wall).
    let mut evolved = base.clone();
    evolved.integrate_cloud(
        &PointCloud::new(origin, vec![Vec3::new(18.0, 0.15, 9.15)]),
        0.3,
    );
    let map2 = PlannerMap::export(&evolved, &ExportConfig::new(0.3, 1e9, origin));
    let delta = map2.delta_from(&map1).expect("same voxel size");
    assert!(!delta.is_empty() && delta.len() <= 2, "delta: {delta:?}");

    let mut group = c.benchmark_group("collision_broadphase_single_delta");
    group.sample_size(10);
    group.bench_function(format!("patch/{}boxes", map2.len()), |b| {
        let mut checker = CollisionChecker::new(map1.clone(), 0.45, 0.3);
        checker.prebuild_broad_phase();
        b.iter(|| {
            // Patch forward and back: two single-delta updates per iter,
            // always exercising the incremental path.
            checker.update_map(map2.clone());
            checker.update_map(map1.clone());
            std::hint::black_box(checker.queries())
        })
    });
    group.bench_function(format!("rebuild/{}boxes", map2.len()), |b| {
        b.iter(|| {
            let mut a = CollisionChecker::new(map2.clone(), 0.45, 0.3);
            a.prebuild_broad_phase();
            let mut b2 = CollisionChecker::new(map1.clone(), 0.45, 0.3);
            b2.prebuild_broad_phase();
            std::hint::black_box((a.queries(), b2.queries()))
        })
    });
    group.finish();
}

/// Cross-mission shared-world amortization: N missions in one
/// environment either survey (build + prebuild the static broad phase)
/// independently, or survey once and hand each mission an `Arc`-shared
/// clone. The clone is a copy-on-write handle — `update_map` detaches —
/// so per-mission cost drops from a full broad-phase build to a
/// shallow copy (the `bench7` experiment reports the wall-clock ratio).
fn bench_shared_world_amortization(c: &mut Criterion) {
    use roborun_mission::SharedStaticWorld;
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.3,
        obstacle_spread: 40.0,
        goal_distance: 100.0,
    })
    .generate(41);
    let missions = 8usize;
    let mut group = c.benchmark_group("shared_world_amortization");
    group.sample_size(10);
    group.bench_function(format!("survey_once_clone/{missions}missions"), |b| {
        b.iter(|| {
            let world = SharedStaticWorld::survey(&env, 1.0, 0.6);
            let checkers: Vec<_> = (0..missions).map(|_| world.checker()).collect();
            assert!(checkers.iter().all(|c| world.shares_broad_phase_with(c)));
            std::hint::black_box(checkers).len()
        })
    });
    group.bench_function(format!("survey_per_mission/{missions}missions"), |b| {
        b.iter(|| {
            let checkers: Vec<_> = (0..missions)
                .map(|_| SharedStaticWorld::survey(&env, 1.0, 0.6).checker())
                .collect();
            std::hint::black_box(checkers).len()
        })
    });
    group.finish();
}

fn bench_export_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 48);
    let mut map = OccupancyMap::new(0.3);
    map.integrate_cloud(&cloud, 0.3);
    let mut group = c.benchmark_group("planner_map_export");
    for &precision in &[0.3, 0.6, 1.2, 2.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{precision}m")),
            &precision,
            |b, &p| {
                b.iter(|| {
                    std::hint::black_box(PlannerMap::export(
                        &map,
                        &ExportConfig::new(p, 1e9, Vec3::new(0.0, 0.0, 5.0)),
                    ))
                    .len()
                })
            },
        );
    }
    group.finish();
}

/// Random boxes spread over a mission-scale corridor.
fn random_obstacles(n: usize, seed: u64) -> Vec<Obstacle> {
    let mut rng = SplitMix64::new(seed);
    let span = 40.0 * (n as f64 / 100.0).cbrt().max(1.0);
    (0..n as u32)
        .map(|id| {
            let center = Vec3::new(
                rng.uniform(5.0, span),
                rng.uniform(-span * 0.5, span * 0.5),
                rng.uniform(0.0, 12.0),
            );
            let half = Vec3::new(
                rng.uniform(0.4, 2.0),
                rng.uniform(0.4, 2.0),
                rng.uniform(0.4, 3.0),
            );
            Obstacle::new(id, Aabb::from_center_half_extents(center, half))
        })
        .collect()
}

/// A random box world of `n` obstacles spread over a mission-scale corridor.
fn random_field(n: usize, seed: u64) -> ObstacleField {
    random_obstacles(n, seed).into_iter().collect()
}

/// Rays fanned out from near the corridor entrance, like a depth camera.
fn probe_rays(count: usize, seed: u64) -> Vec<Ray> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let origin = Vec3::new(0.0, rng.uniform(-10.0, 10.0), rng.uniform(2.0, 8.0));
            let yaw = rng.uniform(-0.9, 0.9);
            let pitch = rng.uniform(-0.3, 0.3);
            Ray::new(origin, Vec3::new(yaw.cos(), yaw.sin(), pitch.sin()))
        })
        .collect()
}

/// Obstacle-field raycast scaling: the grid-indexed DDA walk against the
/// retained linear scan, at 10^2..10^4 obstacles. The indexed cost is set
/// by the cells along the ray, not the world size, which is where the >=5x
/// speedup of this PR shows up.
fn bench_obstacle_raycast_scaling(c: &mut Criterion) {
    let rays = probe_rays(64, 99);
    let mut group = c.benchmark_group("obstacle_raycast");
    for &n in &[100usize, 1_000, 10_000] {
        let field = random_field(n, n as u64);
        group.bench_with_input(BenchmarkId::new("indexed", n), &field, |b, field| {
            b.iter(|| {
                let mut hits = 0usize;
                for ray in &rays {
                    hits += usize::from(std::hint::black_box(field.raycast(ray, 60.0)).is_some());
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &field, |b, field| {
            b.iter(|| {
                let mut hits = 0usize;
                for ray in &rays {
                    hits += usize::from(
                        std::hint::black_box(field.raycast_linear(ray, 60.0)).is_some(),
                    );
                }
                hits
            })
        });
    }
    group.finish();
}

/// Ground-truth nearest-distance scaling (the profiler/difficulty query).
fn bench_obstacle_nearest_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("obstacle_nearest_distance");
    for &n in &[100usize, 1_000, 10_000] {
        let field = random_field(n, n as u64);
        let mut rng = SplitMix64::new(7);
        let queries: Vec<Vec3> = (0..64)
            .map(|_| {
                Vec3::new(
                    rng.uniform(0.0, 80.0),
                    rng.uniform(-40.0, 40.0),
                    rng.uniform(0.0, 12.0),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", n), &field, |b, field| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| std::hint::black_box(field.distance_to_nearest(q)).unwrap_or(0.0))
                    .sum::<f64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &field, |b, field| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| {
                        std::hint::black_box(field.distance_to_nearest_linear(q)).unwrap_or(0.0)
                    })
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

/// Point-index nearest-neighbor scaling: the RRT* inner query at tree
/// sizes of 10^2..10^4 nodes.
fn bench_point_nearest_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_nearest_neighbor");
    for &n in &[100usize, 1_000, 10_000] {
        let mut rng = SplitMix64::new(n as u64);
        let points: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.uniform(-50.0, 50.0),
                    rng.uniform(-50.0, 50.0),
                    rng.uniform(0.0, 12.0),
                )
            })
            .collect();
        let mut index = PointGridIndex::new(6.0);
        for &p in &points {
            index.insert(p);
        }
        let queries: Vec<Vec3> = (0..64)
            .map(|_| {
                Vec3::new(
                    rng.uniform(-60.0, 60.0),
                    rng.uniform(-60.0, 60.0),
                    rng.uniform(0.0, 12.0),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", n), &index, |b, index| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| std::hint::black_box(index.nearest(q)).unwrap_or(0) as usize)
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &points, |b, points| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| {
                        std::hint::black_box(roborun_geom::index::nearest_linear(points, q))
                            .unwrap_or(0) as usize
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// Whole-search RRT* comparison on a 4000-sample search: the grid-indexed
/// tree against the O(n^2) linear reference (identical results, enforced by
/// the planning equivalence proptests).
fn bench_rrtstar_4000_samples(c: &mut Criterion) {
    // A wall with a single gap keeps the planner from shortcutting, so the
    // tree actually grows toward max_samples; mission-scale sampling bounds
    // keep the tree sparse relative to the rewire radius, as in real runs.
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut map = OccupancyMap::new(0.5);
    let mut points = Vec::new();
    for yi in -120..=120 {
        let y = yi as f64 * 0.5;
        if (6.0..=10.0).contains(&y) {
            continue;
        }
        for zi in 0..30 {
            points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
    let planner = RrtStar::new(RrtConfig {
        max_samples: 4_000,
        seed: 3,
        ..RrtConfig::default()
    });
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(140.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));

    // The checker is reused across iterations (planning only reads the
    // map), so the measurement isolates the search itself.
    let mut checker = CollisionChecker::new(pm, 0.45, 0.5);
    let mut group = c.benchmark_group("rrtstar_4000_samples");
    group.sample_size(10);
    group.bench_function("indexed", |b| {
        b.iter(|| std::hint::black_box(planner.plan(&mut checker, start, goal, &bounds)).tree_size)
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            std::hint::black_box(planner.plan_linear_reference(&mut checker, start, goal, &bounds))
                .tree_size
        })
    });
    group.finish();
}

/// The neighbor kernel isolated on the final 4000-sample tree: the exact
/// nearest/near query stream RRT* issues, indexed vs linear. This is the
/// O(n^2) -> ~O(n) component of the tree build; the whole-plan bench above
/// includes the (also accelerated, but shared) collision-checking cost.
fn bench_rrt_neighbor_kernel_4000(c: &mut Criterion) {
    let mut rng = SplitMix64::new(17);
    let bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));
    let mut index = PointGridIndex::new(12.0);
    let mut points = Vec::new();
    for _ in 0..4_000 {
        let p = rng.point_in_aabb(&bounds);
        index.insert(p);
        points.push(p);
    }
    let queries: Vec<Vec3> = (0..256).map(|_| rng.point_in_aabb(&bounds)).collect();
    let mut group = c.benchmark_group("rrt_neighbor_kernel_4000");
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += std::hint::black_box(index.nearest(q)).unwrap_or(0) as usize;
                acc += std::hint::black_box(index.within_radius(q, 12.0)).len();
            }
            acc
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += std::hint::black_box(roborun_geom::index::nearest_linear(&points, q))
                    .unwrap_or(0) as usize;
                acc += std::hint::black_box(roborun_geom::index::within_radius_linear(
                    &points, q, 12.0,
                ))
                .len();
            }
            acc
        })
    });
    group.finish();
}

/// Fixed vs shrinking rewire radius on the gap-wall search at 4000 and
/// 16000 samples. The γ(ln n / n)^{1/3} schedule only drops below the
/// fixed 12 m radius once the tree outgrows ~9000 nodes in these bounds,
/// so 4000 samples benches the no-op overhead of the schedule (identical
/// search) and 16000 the actual neighbour-work reduction (~12% fewer
/// collision queries, path cost within 0.4% — printed once below).
fn bench_rrtstar_rewire_schedule(c: &mut Criterion) {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut map = OccupancyMap::new(0.5);
    let mut points = Vec::new();
    for yi in -120..=120 {
        let y = yi as f64 * 0.5;
        if (6.0..=10.0).contains(&y) {
            continue;
        }
        for zi in 0..30 {
            points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(140.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));
    let mut checker = CollisionChecker::new(pm, 0.45, 0.5);

    let mut group = c.benchmark_group("rrtstar_rewire_schedule");
    group.sample_size(10);
    for &n in &[4_000usize, 16_000] {
        for &(label, shrinking) in &[("fixed", false), ("shrinking", true)] {
            let planner = RrtStar::new(RrtConfig {
                max_samples: n,
                seed: 3,
                shrinking_rewire: shrinking,
                ..RrtConfig::default()
            });
            let cost = planner.plan(&mut checker, start, goal, &bounds).cost;
            eprintln!("rrtstar_rewire_schedule/{label}/{n}: path cost {cost:.2} m");
            group.bench_with_input(BenchmarkId::new(label, n), &planner, |b, planner| {
                b.iter(|| {
                    std::hint::black_box(planner.plan(&mut checker, start, goal, &bounds)).tree_size
                })
            });
        }
    }
    group.finish();
}

/// The whole decision loop with plan-ahead off vs on, on a standard short
/// mission: what speculative overlap costs (snapshot clones, a worker
/// hand-off per predicted replan) and buys (masked planning latency, a
/// speculative-plan hit rate — printed once below; the headline numbers
/// live in the ROADMAP's "concurrent planner instances" entry).
fn bench_decision_overlap(c: &mut Criterion) {
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.35,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(21);
    let config = |plan_ahead: bool| MissionConfig {
        max_decisions: 600,
        max_mission_time: 1_500.0,
        plan_ahead,
        ..MissionConfig::new(RuntimeMode::SpatialAware)
    };
    let probe = MissionRunner::new(config(true)).run(&env);
    eprintln!(
        "decision_overlap: masked {:.3} s over {} decisions, {} attempts, {} hits (rate {:.0}%)",
        probe.metrics.masked_planning_latency,
        probe.metrics.decisions,
        probe.metrics.plan_ahead_attempts,
        probe.metrics.plan_ahead_hits,
        probe.metrics.plan_ahead_hit_rate().unwrap_or(0.0) * 100.0
    );
    let mut group = c.benchmark_group("decision_overlap");
    group.sample_size(10);
    for &(label, plan_ahead) in &[("plan_ahead_off", false), ("plan_ahead_on", true)] {
        let runner = MissionRunner::new(config(plan_ahead));
        group.bench_with_input(BenchmarkId::from_parameter(label), &runner, |b, runner| {
            b.iter(|| std::hint::black_box(runner.run(&env)).metrics.decisions)
        });
    }
    group.finish();
}

/// A dynamic world with `n` mixed actors over a mission-scale static
/// field, for the per-decision dynamic-world kernels.
fn bench_dynamic_world(n: usize, seed: u64) -> DynamicWorld {
    let mut rng = SplitMix64::new(seed);
    let field = random_field(200, seed ^ 0xF1E);
    let actors = (0..n as u32)
        .map(|i| {
            let x = rng.uniform(10.0, 120.0);
            let spawn = Vec3::new(x, rng.uniform(-20.0, 20.0), 7.0);
            let half = Vec3::new(1.0, 1.0, 7.0);
            match i % 3 {
                0 => Actor::new(
                    i,
                    spawn,
                    half,
                    MotionModel::Crosser {
                        velocity: Vec3::new(0.0, rng.uniform(0.8, 1.6), 0.0),
                        bounds: Aabb::new(Vec3::new(x, -25.0, 7.0), Vec3::new(x, 25.0, 7.0)),
                    },
                ),
                1 => Actor::new(
                    i,
                    spawn,
                    half,
                    MotionModel::WaypointPatrol {
                        waypoints: vec![
                            spawn,
                            spawn + Vec3::new(rng.uniform(10.0, 30.0), 0.0, 0.0),
                        ],
                        speed: rng.uniform(0.6, 1.2),
                    },
                ),
                _ => Actor::new(
                    i,
                    spawn,
                    half,
                    MotionModel::RandomWalk {
                        seed: rng.next_u64(),
                        speed: rng.uniform(0.5, 1.0),
                        dwell: 2.0,
                        bounds: Aabb::new(
                            spawn - Vec3::new(10.0, 10.0, 0.0),
                            spawn + Vec3::new(10.0, 10.0, 0.0),
                        ),
                    },
                ),
            }
        })
        .collect();
    DynamicWorld::new(field, actors)
}

/// The per-decision dynamic-world sensing kernel: compose the snapshot
/// field (static clone + one box per actor, broad-phase rebuilt) and the
/// predicted boxes, at 4/16/64 actors. This is what every decision of a
/// dynamic mission pays on top of a static one, before any query runs.
fn bench_dynamic_world_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_world_step");
    for &n in &[4usize, 16, 64] {
        let world = bench_dynamic_world(n, 42);
        // Advancing clock like a real mission, folded into a fixed
        // 370 s window: random-walk pose queries are O(t / dwell), so an
        // unbounded `t` would make each iteration slower than the last
        // and the measurement a moving target.
        group.bench_with_input(BenchmarkId::new("snapshot_field", n), &world, |b, world| {
            let mut tick = 0u64;
            b.iter(|| {
                tick += 1;
                let t = (tick % 1000) as f64 * 0.37;
                std::hint::black_box(world.snapshot_field(t)).len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("predicted_boxes", n),
            &world,
            |b, world| {
                let mut tick = 0u64;
                b.iter(|| {
                    tick += 1;
                    let t = (tick % 1000) as f64 * 0.37;
                    std::hint::black_box(world.predicted_boxes(t, 4.0)).len()
                })
            },
        );
    }
    group.finish();
}

/// The predicted-occupancy validation kernel: a 60-waypoint trajectory
/// re-checked against the predicted boxes of 4/16/64 actors (dense
/// polyline sampling, the per-decision cost of the trajectory
/// invalidation plus the speculation gate).
fn bench_predicted_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicted_validation");
    let trajectory = Trajectory::new(
        (0..60)
            .map(|i| TrajectoryPoint {
                time: i as f64,
                position: Vec3::new(i as f64 * 2.0, (i as f64 * 0.4).sin() * 6.0, 5.0),
                speed: 2.0,
            })
            .collect(),
    );
    let origin = Vec3::new(0.0, 0.0, 5.0);
    for &n in &[4usize, 16, 64] {
        let world = bench_dynamic_world(n, 7);
        let predicted = world.predicted_boxes(3.0, 4.0);
        group.bench_with_input(
            BenchmarkId::new("blockage_scan", n),
            &predicted,
            |b, predicted| {
                b.iter(|| {
                    std::hint::black_box(predicted_blockage_distance(
                        &trajectory,
                        0.0,
                        predicted,
                        0.46,
                        origin,
                        f64::INFINITY,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("path_clear", n),
            &predicted,
            |b, predicted| {
                b.iter(|| {
                    std::hint::black_box(path_clear_of_predicted(
                        trajectory.points().iter().map(|p| p.position),
                        predicted,
                        0.46,
                        origin,
                        f64::INFINITY,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The random-walk pose-query scaling fix: a cold `pose_at(t)` replays
/// `t / dwell` segments from zero, while the anchored
/// `pose_at_cached` resumes the fold from the previous query — O(1) per
/// step of a monotone (mission-shaped) query stream at *any* mission
/// time. The replay cost grows linearly with `t`; the anchored cost is
/// flat (this is why `dynamic_world_step` above had to fold its clock
/// into a fixed window before the cache existed).
fn bench_walk_pose_anchor(c: &mut Criterion) {
    use roborun_dynamics::WalkAnchor;
    let actor = Actor::new(
        0,
        Vec3::new(10.0, 0.0, 5.0),
        Vec3::splat(0.8),
        MotionModel::RandomWalk {
            seed: 99,
            speed: 1.2,
            dwell: 2.0,
            bounds: Aabb::new(Vec3::new(0.0, -15.0, 5.0), Vec3::new(60.0, 15.0, 5.0)),
        },
    );
    let mut group = c.benchmark_group("walk_pose_anchor");
    for &mission_time in &[1_000.0f64, 10_000.0, 100_000.0] {
        group.bench_with_input(
            BenchmarkId::new("replay", format!("{mission_time}s")),
            &mission_time,
            |b, &t0| {
                let mut tick = 0u64;
                b.iter(|| {
                    tick += 1;
                    std::hint::black_box(actor.pose_at(t0 + (tick % 64) as f64 * 0.25))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("anchored", format!("{mission_time}s")),
            &mission_time,
            |b, &t0| {
                let mut anchor = WalkAnchor::new();
                let mut tick = 0u64;
                b.iter(|| {
                    tick += 1;
                    std::hint::black_box(actor.pose_at_cached(t0 + tick as f64 * 0.25, &mut anchor))
                })
            },
        );
    }
    group.finish();
}

/// Fault-layer overhead on the healthy path. Two scales:
///
/// * `fault_frame_eval` — the per-decision cost of the fault layer
///   itself: evaluating an armed [`FaultPlan`]'s frame versus the
///   disarmed gate (an `Option::None` check) every healthy decision
///   pays. The disarmed gate must be sub-nanosecond noise.
/// * `degradation_healthy_mission` — a short fault-free mission with the
///   degradation runtime disarmed versus armed. With no faults injected
///   the watchdog never trips and the derating term stays exactly zero,
///   so the armed run must be indistinguishable from the baseline
///   (and is bit-identical in outcome — see
///   `mission/tests/fault_determinism.rs`).
fn bench_fault_plan_overhead(c: &mut Criterion) {
    use roborun_faults::{FaultPlan, FaultPlanConfig};
    use roborun_mission::FaultScenario;

    let mut group = c.benchmark_group("fault_frame_eval");
    let armed = FaultPlan::new(FaultScenario::PlannerBrownout.fault_plan(41));
    group.bench_function("armed", |b| {
        let mut decision = 0u64;
        b.iter(|| {
            decision += 1;
            std::hint::black_box(armed.frame(decision)).is_healthy()
        })
    });
    group.bench_function("disarmed_gate", |b| {
        // The exact expression both drivers evaluate when no plan is
        // armed: an Option map over the healthy-gated plan.
        let plan: Option<FaultPlan> = (!FaultPlanConfig::healthy().is_healthy())
            .then(|| FaultPlan::new(FaultPlanConfig::healthy()));
        let mut decision = 0u64;
        b.iter(|| {
            decision += 1;
            std::hint::black_box(plan.as_ref().map(|p| p.frame(decision)).unwrap_or_default())
                .is_healthy()
        })
    });
    group.finish();

    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.4,
        obstacle_spread: 40.0,
        goal_distance: 60.0,
    })
    .generate(21);
    let config = |armed: bool| {
        let mut cfg = MissionConfig::new(RuntimeMode::SpatialAware);
        cfg.max_decisions = 200;
        cfg.max_mission_time = 600.0;
        cfg.degradation.enabled = armed;
        cfg
    };
    let mut group = c.benchmark_group("degradation_healthy_mission");
    group.sample_size(10);
    for &(label, armed) in &[("disarmed", false), ("watchdog_armed", true)] {
        let runner = MissionRunner::new(config(armed));
        group.bench_with_input(BenchmarkId::from_parameter(label), &runner, |b, runner| {
            b.iter(|| std::hint::black_box(runner.run(&env)).metrics.decisions)
        });
    }
    group.finish();
}

/// Trace-layer overhead on the hot path. Two rows:
///
/// * `disarmed_gate` — the entire cost an untraced run pays per
///   instrumentation point: one relaxed atomic load and a branch. The
///   disabled-path contract of `roborun-trace` holds this at single-digit
///   nanoseconds per decision.
/// * `armed_emit` — the thread-local ring push an armed run pays per
///   event (the mutex-guarded sink spill is amortised across the ring
///   capacity).
fn bench_trace_gate(c: &mut Criterion) {
    use roborun_trace::SpanKind;
    let mut group = c.benchmark_group("trace_gate");
    roborun_trace::disarm();
    group.bench_function("disarmed_gate", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            roborun_trace::collector::complete(
                std::hint::black_box(SpanKind::Decision),
                std::hint::black_box(t as f64),
                0.001,
                0,
                &[],
            );
            t
        })
    });
    group.bench_function("armed_emit", |b| {
        roborun_trace::arm();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            roborun_trace::collector::complete(
                std::hint::black_box(SpanKind::Decision),
                std::hint::black_box(t as f64),
                0.001,
                0,
                &[],
            );
            t
        });
        roborun_trace::disarm();
        let _ = roborun_trace::drain();
    });
    group.finish();
}

/// The predicted-costmap planning kernel: a corridor crossed by
/// predicted lanes, planned (a) in one shot through the composed
/// [`HazardContext`] and (b) by the retained reject-loop reference —
/// static-only plans re-seeded until one clears the lanes posteriorly.
/// Prints the collision queries and plan attempts each path consumed.
fn bench_predicted_costmap(c: &mut Criterion) {
    use roborun_planning::{polyline_clear_of_boxes, HazardContext, Planner, PredictedHazards};
    // A wall with one gap forces genuine tree search (no direct
    // connection), so re-seeded reject-loop attempts produce *different*
    // candidate paths — the regime where the loop can converge at all.
    let map = {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (4.0..=9.0).contains(&y) {
                continue;
            }
            for zi in 0..24 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
    };
    // One predicted lane just past the gap: the natural straight exit is
    // soft-blocked and the plan must dip south after threading the wall.
    let lanes = vec![Aabb::new(
        Vec3::new(26.0, 2.0, 0.0),
        Vec3::new(29.0, 25.0, 12.0),
    )];
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(40.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 12.0));
    let clearance = 0.45 * 0.6;
    let planner = |seed: u64| {
        Planner::new(roborun_planning::PlannerConfig {
            rrt: RrtConfig {
                seed,
                ..RrtConfig::default()
            },
            ..roborun_planning::PlannerConfig::default()
        })
    };

    // One-off accounting printout (queries + attempts per strategy).
    {
        let hazards = PredictedHazards::new(lanes.clone(), clearance, start, 1e9);
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
        let mut context = HazardContext::new(&mut checker, &hazards);
        let one_shot = planner(1).plan_with_checker(&mut context, start, goal, &bounds, 3.0);
        let one_shot_queries = roborun_planning::HazardSource::queries(&context);
        let mut attempts = 0u64;
        let mut reject_queries = 0usize;
        for seed in 1.. {
            attempts += 1;
            let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let outcome = planner(seed).plan_with_checker(&mut checker, start, goal, &bounds, 3.0);
            reject_queries += checker.queries();
            if let Ok((t, _)) = outcome {
                if polyline_clear_of_boxes(
                    t.points().iter().map(|p| p.position),
                    &lanes,
                    clearance,
                    start,
                    1e9,
                ) {
                    break;
                }
            }
            if attempts > 24 {
                break;
            }
        }
        eprintln!(
            "predicted_costmap: one-shot {} queries / 1 attempt (found: {}); \
             reject-loop {reject_queries} queries / {attempts} attempts",
            one_shot_queries,
            one_shot.is_ok(),
        );
    }

    let mut group = c.benchmark_group("predicted_costmap");
    group.bench_function("one_shot_context", |b| {
        let hazards = PredictedHazards::new(lanes.clone(), clearance, start, 1e9);
        b.iter(|| {
            let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut context = HazardContext::new(&mut checker, &hazards);
            std::hint::black_box(planner(1).plan_with_checker(
                &mut context,
                start,
                goal,
                &bounds,
                3.0,
            ))
            .is_ok()
        })
    });
    group.bench_function("reject_loop", |b| {
        b.iter(|| {
            // Re-seeded static-only plans until one clears the lanes —
            // the per-decision convergence the mission's reject loop
            // spreads over successive decisions.
            let mut accepted = false;
            for seed in 1..=24u64 {
                let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
                if let Ok((t, _)) =
                    planner(seed).plan_with_checker(&mut checker, start, goal, &bounds, 3.0)
                {
                    if polyline_clear_of_boxes(
                        t.points().iter().map(|p| p.position),
                        &lanes,
                        clearance,
                        start,
                        1e9,
                    ) {
                        accepted = true;
                        break;
                    }
                }
            }
            std::hint::black_box(accepted)
        })
    });
    group.finish();
}

/// The sampling mix on the lane-heavy predicted-costmap fixture at an
/// identical 2000-sample budget: uniform vs hazard-biased proposals.
/// The mix's headline win is samples-to-solution (bench8 records the
/// ladder); this entry tracks the per-sample overhead of the region
/// draws so the proposal machinery itself stays cheap.
fn bench_rrtstar_sampling_mix(c: &mut Criterion) {
    use roborun_planning::{HazardContext, PredictedHazards, SamplingMix};
    let map = {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (4.0..=9.0).contains(&y) {
                continue;
            }
            for zi in 0..24 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
    };
    let lanes = vec![Aabb::new(
        Vec3::new(26.0, 2.0, 0.0),
        Vec3::new(29.0, 25.0, 12.0),
    )];
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(40.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 12.0));
    let hazards = PredictedHazards::new(lanes, 0.45 * 0.6, start, 1e9);
    let mut group = c.benchmark_group("rrtstar_sampling_mix_2000");
    group.sample_size(10);
    for (label, enabled) in [("uniform", false), ("biased", true)] {
        let planner = RrtStar::new(RrtConfig {
            seed: 1,
            max_samples: 2_000,
            sampling_mix: SamplingMix {
                enabled,
                ..SamplingMix::default()
            },
            ..RrtConfig::default()
        });
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut context = HazardContext::new(&mut checker, &hazards);
                std::hint::black_box(planner.plan(&mut context, start, goal, &bounds)).tree_size
            })
        });
    }
    group.finish();
}

/// Arena batch expansion on the whole-search fixture of
/// [`bench_rrtstar_4000_samples`]: `batch_size` pre-draws a round of
/// targets and flushes the spatial index once per round instead of once
/// per node. Results are bit-identical across K (enforced by the
/// batch-equivalence tests); only the wall clock moves.
fn bench_rrtstar_batch_expansion(c: &mut Criterion) {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut map = OccupancyMap::new(0.5);
    let mut points = Vec::new();
    for yi in -120..=120 {
        let y = yi as f64 * 0.5;
        if (6.0..=10.0).contains(&y) {
            continue;
        }
        for zi in 0..30 {
            points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(140.0, 0.0, 5.0);
    let bounds = Aabb::new(Vec3::new(-5.0, -75.0, 1.0), Vec3::new(155.0, 75.0, 28.0));
    let mut checker = CollisionChecker::new(pm, 0.45, 0.5);
    let mut group = c.benchmark_group("rrtstar_batch_expansion_4000");
    group.sample_size(10);
    for &k in &[1usize, 64] {
        let planner = RrtStar::new(RrtConfig {
            max_samples: 4_000,
            seed: 3,
            batch_size: k,
            ..RrtConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("K{k}")),
            &planner,
            |b, planner| {
                b.iter(|| {
                    std::hint::black_box(planner.plan(&mut checker, start, goal, &bounds)).tree_size
                })
            },
        );
    }
    group.finish();
}

/// The broad-phase batch width on a 10^4-obstacle raycast storm: the
/// 8-wide AABB packs against the 4-wide fallback, forced to each width
/// (the field auto-detects at runtime — W8 on AVX hosts). Same query
/// stream, bit-identical answers per lane.
fn bench_aabb_dispatch_width(c: &mut Criterion) {
    use roborun_geom::SimdWidth;
    let rays = probe_rays(512, 12_345);
    let mut group = c.benchmark_group("aabb_dispatch_width_10k");
    for &(label, width) in &[("w4", SimdWidth::W4), ("w8", SimdWidth::W8)] {
        let field = ObstacleField::with_simd_width(random_obstacles(10_000, 10_000), width);
        group.bench_with_input(BenchmarkId::from_parameter(label), &field, |b, field| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for ray in &rays {
                    acc += std::hint::black_box(field.free_distance(ray, 120.0));
                }
                acc
            })
        });
    }
    group.finish();
}

/// Peer-corridor point queries at K committed peers (64-waypoint
/// corridors each): the BENCH_7 scaling row that motivated the
/// candidate grid. Grid-backed, the cost per query is set by cell
/// occupancy, not the flat box count — the K rows sit on top of each
/// other instead of scaling linearly.
fn bench_peer_hazard_point_queries(c: &mut Criterion) {
    use roborun_planning::PeerTrajectoryHazard;
    let mut group = c.benchmark_group("peer_hazard_point_queries");
    for &peers in &[1usize, 4, 8] {
        let mut hazard = PeerTrajectoryHazard::new(0.46, 0.9);
        for id in 0..peers {
            let polyline: Vec<Vec3> = (0..64)
                .map(|i| {
                    let t = i as f64 * 2.0;
                    Vec3::new(
                        t,
                        (id as f64) * 12.0 + (t * 0.1).sin() * 4.0,
                        5.0 + t * 0.05,
                    )
                })
                .collect();
            hazard.set_peer(id as u64, &polyline);
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("K{peers}")),
            &hazard,
            |b, hazard| {
                b.iter(|| {
                    let mut blocked = 0usize;
                    for q in 0..1_000 {
                        let t = (q % 997) as f64 * 0.13;
                        let p = Vec3::new(t, (t * 0.37).sin() * 20.0, 5.0 + (t * 0.11).cos() * 3.0);
                        blocked += usize::from(std::hint::black_box(hazard.point_blocked(p)));
                    }
                    blocked
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_cloud_precision,
    bench_octomap_insert_precision,
    bench_octomap_insert_volume,
    bench_integrate_cloud_batched_vs_reference,
    bench_collision_patch_vs_rebuild,
    bench_shared_world_amortization,
    bench_export_precision,
    bench_obstacle_raycast_scaling,
    bench_obstacle_nearest_scaling,
    bench_point_nearest_scaling,
    bench_rrtstar_4000_samples,
    bench_rrt_neighbor_kernel_4000,
    bench_rrtstar_rewire_schedule,
    bench_decision_overlap,
    bench_dynamic_world_step,
    bench_predicted_validation,
    bench_walk_pose_anchor,
    bench_predicted_costmap,
    bench_fault_plan_overhead,
    bench_trace_gate,
    bench_rrtstar_sampling_mix,
    bench_rrtstar_batch_expansion,
    bench_aabb_dispatch_width,
    bench_peer_hazard_point_queries
);
criterion_main!(benches);
