//! Kernel-scaling benchmarks (real wall-clock validation of Fig. 2a's
//! shape): the perception kernels' measured cost must grow with volume and
//! with inverse precision, which is the property the calibrated latency
//! model (and therefore the governor) relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roborun_geom::Vec3;
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};

/// A synthetic dense scan: a wall of points at the given distance.
fn wall_cloud(distance: f64, points_per_side: usize) -> PointCloud {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut points = Vec::with_capacity(points_per_side * points_per_side);
    for iy in 0..points_per_side {
        for iz in 0..points_per_side {
            points.push(Vec3::new(
                distance,
                -10.0 + 20.0 * iy as f64 / points_per_side as f64,
                10.0 * iz as f64 / points_per_side as f64,
            ));
        }
    }
    PointCloud::new(origin, points)
}

fn bench_point_cloud_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 48);
    let mut group = c.benchmark_group("point_cloud_downsample");
    for &precision in &[0.3, 0.6, 1.2, 2.4, 4.8, 9.6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{precision}m")),
            &precision,
            |b, &p| b.iter(|| std::hint::black_box(cloud.downsampled(p)).len()),
        );
    }
    group.finish();
}

fn bench_octomap_insert_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 32);
    let mut group = c.benchmark_group("octomap_integrate_raytrace_step");
    for &step in &[0.3, 0.6, 1.2, 2.4] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{step}m")), &step, |b, &s| {
            b.iter(|| {
                let mut map = OccupancyMap::new(0.3);
                std::hint::black_box(map.integrate_cloud(&cloud, s))
            })
        });
    }
    group.finish();
}

fn bench_octomap_insert_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("octomap_integrate_cloud_size");
    for &side in &[8usize, 16, 32, 48] {
        let cloud = wall_cloud(15.0, side);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}pts", cloud.len())),
            &cloud,
            |b, cloud| {
                b.iter(|| {
                    let mut map = OccupancyMap::new(0.3);
                    std::hint::black_box(map.integrate_cloud(cloud, 0.6))
                })
            },
        );
    }
    group.finish();
}

fn bench_export_precision(c: &mut Criterion) {
    let cloud = wall_cloud(15.0, 48);
    let mut map = OccupancyMap::new(0.3);
    map.integrate_cloud(&cloud, 0.3);
    let mut group = c.benchmark_group("planner_map_export");
    for &precision in &[0.3, 0.6, 1.2, 2.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{precision}m")),
            &precision,
            |b, &p| {
                b.iter(|| {
                    std::hint::black_box(PlannerMap::export(
                        &map,
                        &ExportConfig::new(p, 1e9, Vec3::new(0.0, 0.0, 5.0)),
                    ))
                    .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_point_cloud_precision,
    bench_octomap_insert_precision,
    bench_octomap_insert_volume,
    bench_export_precision
);
criterion_main!(benches);
