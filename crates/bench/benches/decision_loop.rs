//! Decision-loop benchmarks: the cost of one governor decision (profiling +
//! budgeting + solving) and of one full perception update under the knob
//! settings each design uses — the per-decision work Fig. 11 breaks down.

use criterion::{criterion_group, criterion_main, Criterion};
use roborun_core::{
    Governor, GovernorConfig, KnobSettings, Profilers, RuntimeMode, SpatialProfile,
};
use roborun_env::{DifficultyConfig, EnvironmentGenerator};
use roborun_geom::{Pose, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_sim::CameraRig;

fn bench_governor_decision(c: &mut Criterion) {
    let governor = Governor::new(GovernorConfig::default());
    let open = SpatialProfile::open_space(2.5, 40.0);
    let tight = SpatialProfile::congested(0.6, 0.8, 2.0);
    c.bench_function("governor_decide_open_space", |b| {
        b.iter(|| std::hint::black_box(governor.decide(&open)))
    });
    c.bench_function("governor_decide_congested", |b| {
        b.iter(|| std::hint::black_box(governor.decide(&tight)))
    });
    let oblivious = Governor::new(GovernorConfig {
        mode: RuntimeMode::SpatialOblivious,
        ..GovernorConfig::default()
    });
    c.bench_function("governor_decide_oblivious", |b| {
        b.iter(|| std::hint::black_box(oblivious.decide(&tight)))
    });
}

fn bench_perception_update(c: &mut Criterion) {
    // One realistic scan from a generated environment.
    let env = EnvironmentGenerator::new(DifficultyConfig {
        goal_distance: 150.0,
        ..DifficultyConfig::mid()
    })
    .generate(4);
    let rig = CameraRig::hexa_rig();
    let pose = Pose::new(env.start() + Vec3::new(15.0, 0.0, 0.0), 0.0);
    let scan = rig.capture(env.field(), &pose);
    let cloud = PointCloud::new(pose.position, scan.points.clone());

    let aware_knobs = KnobSettings {
        point_cloud_precision: 2.4,
        map_to_planner_precision: 2.4,
        octomap_volume: 10_000.0,
        map_to_planner_volume: 20_000.0,
        planner_volume: 20_000.0,
    };
    let baseline_knobs = KnobSettings::static_baseline();

    let mut group = c.benchmark_group("perception_update");
    group.sample_size(30);
    for (name, knobs) in [
        ("roborun_relaxed", aware_knobs),
        ("baseline_static", baseline_knobs),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut map = OccupancyMap::new(0.3);
                let ds = cloud.downsampled(knobs.point_cloud_precision);
                let limited = ds.volume_limited(pose.position, knobs.octomap_volume);
                map.integrate_cloud(&limited, knobs.point_cloud_precision.max(0.5));
                let export = PlannerMap::export(
                    &map,
                    &ExportConfig::new(
                        knobs.map_to_planner_precision,
                        knobs.map_to_planner_volume,
                        pose.position,
                    ),
                );
                std::hint::black_box(export.len())
            })
        });
    }
    group.finish();
}

fn bench_profilers(c: &mut Criterion) {
    let env = EnvironmentGenerator::new(DifficultyConfig {
        goal_distance: 150.0,
        ..DifficultyConfig::mid()
    })
    .generate(4);
    let rig = CameraRig::hexa_rig();
    let pose = Pose::new(env.start() + Vec3::new(15.0, 0.0, 0.0), 0.0);
    let scan = rig.capture(env.field(), &pose);
    let cloud = PointCloud::new(pose.position, scan.points.clone());
    let mut map = OccupancyMap::new(0.3);
    map.integrate_cloud(&cloud, 0.5);
    let profilers = Profilers::default();
    c.bench_function("profilers_profile", |b| {
        b.iter(|| {
            std::hint::black_box(profilers.profile(&cloud, &map, None, pose.position, 2.0, Vec3::X))
        })
    });
}

criterion_group!(
    benches,
    bench_governor_decision,
    bench_perception_update,
    bench_profilers
);
criterion_main!(benches);
