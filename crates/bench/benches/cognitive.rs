//! Criterion benchmark for the cognitive co-task scheduler.
//!
//! The scheduler replays a whole mission's CPU profile in one call; this
//! bench confirms that the replay stays far below a single navigation
//! decision's cost even for long (thousands of decisions) missions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roborun_cognitive::{CognitiveTask, CpuInterval, HeadroomScheduler, SchedulerConfig};

fn bench_scheduler_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("cognitive_scheduler");
    group.sample_size(40);
    for &decisions in &[500usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("decisions", decisions),
            &decisions,
            |b, &decisions| {
                // A mildly varying utilization profile like a real mission's.
                let profile: Vec<CpuInterval> = (0..decisions)
                    .map(|i| {
                        let utilization = 0.3 + 0.4 * ((i % 20) as f64 / 20.0);
                        CpuInterval::new(0.5, utilization).expect("valid interval")
                    })
                    .collect();
                let scheduler = HeadroomScheduler::new(
                    SchedulerConfig::default(),
                    CognitiveTask::standard_mix(),
                );
                b.iter(|| std::hint::black_box(scheduler.run(&profile)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_replay);
criterion_main!(benches);
