//! Planner benchmarks: how the RRT* search cost scales with the planning
//! volume knob and the collision-check precision knob — the two handles the
//! governor uses on the planning stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use roborun_geom::{Aabb, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{CollisionChecker, RrtConfig, RrtStar};

/// A wall with one gap, exported for the planner.
fn gap_map() -> PlannerMap {
    let mut map = OccupancyMap::new(0.5);
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut points = Vec::new();
    for yi in -50..=50 {
        let y = yi as f64 * 0.5;
        if (5.0..=9.0).contains(&y) {
            continue;
        }
        for zi in 0..20 {
            points.push(Vec3::new(22.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
}

fn bounds() -> Aabb {
    Aabb::new(Vec3::new(-5.0, -30.0, 1.0), Vec3::new(50.0, 30.0, 11.0))
}

fn bench_rrt_volume_knob(c: &mut Criterion) {
    let map = gap_map();
    let mut group = c.benchmark_group("rrtstar_volume_budget");
    group.sample_size(20);
    for &volume in &[2_000.0, 20_000.0, 150_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{volume}m3")),
            &volume,
            |b, &v| {
                b.iter(|| {
                    let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.5);
                    let planner = RrtStar::new(RrtConfig {
                        max_explored_volume: v,
                        max_samples: 800,
                        seed: 9,
                        ..RrtConfig::default()
                    });
                    std::hint::black_box(planner.plan(
                        &mut checker,
                        Vec3::new(0.0, 0.0, 5.0),
                        Vec3::new(45.0, 0.0, 5.0),
                        &bounds(),
                    ))
                    .samples_drawn
                })
            },
        );
    }
    group.finish();
}

fn bench_collision_check_precision(c: &mut Criterion) {
    let map = gap_map();
    let mut group = c.benchmark_group("collision_check_step");
    for &step in &[0.3, 0.6, 1.2, 2.4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{step}m")),
            &step,
            |b, &s| {
                b.iter(|| {
                    let mut checker = CollisionChecker::new(map.clone(), 0.45, s);
                    let mut free = 0usize;
                    for y in -20..20 {
                        if checker.segment_free(
                            Vec3::new(0.0, y as f64, 5.0),
                            Vec3::new(45.0, y as f64, 5.0),
                        ) {
                            free += 1;
                        }
                    }
                    std::hint::black_box(free)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rrt_volume_knob,
    bench_collision_check_precision
);
criterion_main!(benches);
