//! End-to-end mission benchmark: one short mission per design. The
//! benchmark's *report* is simulation wall-clock; the mission-level metric
//! shapes of Fig. 7 are asserted by the integration tests and regenerated
//! by the `experiments` binary — this bench guards the cost of the
//! reproduction harness itself (how long a mission takes to simulate).

use criterion::{criterion_group, criterion_main, Criterion};
use roborun_core::RuntimeMode;
use roborun_env::{DifficultyConfig, EnvironmentGenerator};
use roborun_mission::{MissionConfig, MissionRunner};

fn bench_short_missions(c: &mut Criterion) {
    let env = EnvironmentGenerator::new(DifficultyConfig {
        obstacle_density: 0.4,
        obstacle_spread: 40.0,
        goal_distance: 120.0,
    })
    .generate(17);

    let mut group = c.benchmark_group("short_mission");
    group.sample_size(10);
    for mode in [RuntimeMode::SpatialAware, RuntimeMode::SpatialOblivious] {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let config = MissionConfig {
                    max_decisions: 1_200,
                    ..MissionConfig::new(mode)
                };
                let result = MissionRunner::new(config).run(&env);
                std::hint::black_box(result.metrics.decisions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_short_missions);
criterion_main!(benches);
