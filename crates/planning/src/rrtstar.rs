//! RRT* piece-wise planner with the planning volume operator.
//!
//! A from-scratch replacement for the OMPL RRT* planner the paper uses:
//! stochastic sampling inside a bounded exploration region, nearest-node
//! extension, cost-aware parent selection and rewiring (the * part), plus
//! the paper's **planning volume operator**: "RRT* sorts the points/paths
//! within the explored space and our volume monitor stops the search upon
//! exceeding the threshold" — implemented here by tracking the axis-aligned
//! volume of the explored tree and terminating growth when it exceeds the
//! governor's planner-volume knob.
//!
//! The tree's nearest/near queries run against a
//! [`roborun_geom::PointGridIndex`] that grows incrementally with the tree,
//! so a search over n samples costs ~O(n) instead of the O(n²) of the
//! retained linear scans. [`RrtStar::plan_linear_reference`] runs the same
//! search with linear neighbor scans; both paths share one generic core
//! and are specified to return bit-identical results (enforced by the
//! equivalence proptests in `tests/proptests.rs`).

use crate::hazard::HazardSource;
use roborun_geom::{Aabb, PointGridIndex, SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// RRT* configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrtConfig {
    /// Maximum number of samples drawn before giving up.
    pub max_samples: usize,
    /// Steering (edge) length in metres.
    pub steer_length: f64,
    /// Probability of sampling the goal directly (goal bias).
    pub goal_bias: f64,
    /// Radius used when searching for rewiring candidates.
    pub rewire_radius: f64,
    /// Distance at which the goal counts as reached.
    pub goal_tolerance: f64,
    /// Maximum explored volume (m³) — the planning volume knob.
    pub max_explored_volume: f64,
    /// Opt-in shrinking rewire radius: when `true`, the parent-selection /
    /// rewiring neighbourhood follows the asymptotically-optimal RRT*
    /// schedule `r(n) = min(γ·(ln n / n)^{1/3}, rewire_radius)` with `γ`
    /// derived from the sampling-bounds volume (`γ* = 2·((1 + 1/d)·μ(X)/
    /// ζ_d)^{1/d}`, `d = 3`). Small trees behave exactly like the fixed
    /// radius (the schedule starts above the cap); past a few hundred
    /// nodes the neighbourhood shrinks, cutting the O(K) rewire term that
    /// dominates large searches. Off by default: the fixed radius is the
    /// evaluated baseline and the schedule is a behaviour change.
    pub shrinking_rewire: bool,
    /// Random seed (explicit for reproducibility).
    pub seed: u64,
}

impl Default for RrtConfig {
    fn default() -> Self {
        RrtConfig {
            max_samples: 4000,
            steer_length: 6.0,
            goal_bias: 0.15,
            rewire_radius: 12.0,
            goal_tolerance: 2.0,
            max_explored_volume: 1.0e6,
            shrinking_rewire: false,
            seed: 1,
        }
    }
}

impl RrtConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_samples == 0 {
            return Err("max_samples must be at least 1".into());
        }
        if self.steer_length <= 0.0 {
            return Err(format!(
                "steer_length must be positive, got {}",
                self.steer_length
            ));
        }
        if !(0.0..=1.0).contains(&self.goal_bias) {
            return Err(format!(
                "goal_bias must be in [0,1], got {}",
                self.goal_bias
            ));
        }
        if self.rewire_radius <= 0.0 {
            return Err(format!(
                "rewire_radius must be positive, got {}",
                self.rewire_radius
            ));
        }
        if self.goal_tolerance <= 0.0 {
            return Err(format!(
                "goal_tolerance must be positive, got {}",
                self.goal_tolerance
            ));
        }
        if self.max_explored_volume < 0.0 {
            return Err(format!(
                "max_explored_volume must be non-negative, got {}",
                self.max_explored_volume
            ));
        }
        Ok(())
    }
}

/// Result of an RRT* search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrtResult {
    /// Waypoints from start to goal (inclusive); empty when no path found.
    pub path: Vec<Vec3>,
    /// Path cost (length in metres); infinite when no path was found.
    pub cost: f64,
    /// Number of samples drawn.
    pub samples_drawn: usize,
    /// Number of nodes in the final tree.
    pub tree_size: usize,
    /// Axis-aligned volume of the explored tree (m³).
    pub explored_volume: f64,
    /// `true` when the search stopped because the volume monitor tripped.
    pub volume_capped: bool,
}

impl RrtResult {
    /// `true` when a path to the goal was found.
    pub fn found(&self) -> bool {
        !self.path.is_empty()
    }
}

#[derive(Debug, Clone)]
struct Node {
    position: Vec3,
    parent: Option<usize>,
    cost: f64,
}

/// The RRT* planner.
#[derive(Debug, Clone)]
pub struct RrtStar {
    config: RrtConfig,
}

impl RrtStar {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: RrtConfig) -> Self {
        config.validate().expect("invalid RRT* configuration");
        RrtStar { config }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &RrtConfig {
        &self.config
    }

    /// Neighbourhood radius for a tree of `tree_size` nodes: the fixed
    /// `rewire_radius`, or — with [`RrtConfig::shrinking_rewire`] — the
    /// γ·(ln n / n)^{1/3} schedule capped at it.
    fn rewire_radius_for(&self, tree_size: usize, gamma: f64) -> f64 {
        if !self.config.shrinking_rewire {
            return self.config.rewire_radius;
        }
        let n = tree_size.max(2) as f64;
        (gamma * (n.ln() / n).cbrt()).min(self.config.rewire_radius)
    }

    /// Searches for a collision-free path from `start` to `goal` inside
    /// `sampling_bounds`, checking edges against `checker` — any
    /// [`HazardSource`], so the search sees predicted soft obstacles when
    /// handed the composed [`crate::HazardContext`] and only the static
    /// map when handed a bare [`crate::CollisionChecker`].
    ///
    /// Neighbor queries run against an incrementally grown grid index;
    /// the result is identical to [`RrtStar::plan_linear_reference`].
    pub fn plan<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
    ) -> RrtResult {
        // Cells at the rewire radius: a near() query touches at most 3^3
        // cells, and nearest() usually terminates in the first ring.
        let cell = self.config.rewire_radius.max(1e-3);
        let mut neighbors = GridNeighbors {
            index: PointGridIndex::new(cell),
        };
        self.plan_with(checker, start, goal, sampling_bounds, &mut neighbors)
    }

    /// The retained linear-scan reference: the same search with O(n)
    /// nearest/near scans per sample. Kept for the equivalence proptests
    /// and the kernel-scaling benches; prefer [`RrtStar::plan`].
    pub fn plan_linear_reference<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
    ) -> RrtResult {
        let mut neighbors = LinearNeighbors { points: Vec::new() };
        self.plan_with(checker, start, goal, sampling_bounds, &mut neighbors)
    }

    fn plan_with<N: NeighborSearch, H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
        neighbors: &mut N,
    ) -> RrtResult {
        let cfg = &self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        // γ of the shrinking-radius schedule: the standard RRT* lower
        // bound γ* = 2·((1 + 1/d)·μ(X)/ζ_d)^{1/d} for d = 3, with μ(X)
        // the sampling volume and ζ₃ = 4π/3 the unit-ball volume. Only
        // used when `shrinking_rewire` is on.
        let gamma = 2.0
            * ((1.0 + 1.0 / 3.0) * sampling_bounds.volume() / (4.0 * std::f64::consts::PI / 3.0))
                .cbrt();
        let mut nodes = vec![Node {
            position: start,
            parent: None,
            cost: 0.0,
        }];
        neighbors.insert(start);
        let mut explored = Aabb::new(start, start);
        let mut best_goal_node: Option<usize> = None;
        let mut samples_drawn = 0usize;
        let mut volume_capped = false;

        // Direct connection shortcut: open sky missions should not pay for
        // tree growth at all.
        if checker.segment_free(start, goal) {
            return RrtResult {
                path: vec![start, goal],
                cost: start.distance(goal),
                samples_drawn: 0,
                tree_size: 1,
                explored_volume: 0.0,
                volume_capped: false,
            };
        }

        for _ in 0..cfg.max_samples {
            samples_drawn += 1;
            // Volume monitor (planning volume operator).
            if explored.volume() > cfg.max_explored_volume {
                volume_capped = true;
                break;
            }
            let target = if rng.chance(cfg.goal_bias) {
                goal
            } else {
                rng.point_in_aabb(sampling_bounds)
            };
            // Nearest node.
            let nearest_idx = neighbors.nearest(target);
            let nearest_pos = nodes[nearest_idx].position;
            let new_pos = steer(nearest_pos, target, cfg.steer_length);
            if !checker.segment_free(nearest_pos, new_pos) {
                continue;
            }
            // Choose the best parent within the rewire radius (the γ
            // schedule when shrinking is enabled, the fixed knob
            // otherwise).
            let radius = self.rewire_radius_for(nodes.len(), gamma);
            let neighbours = neighbors.near(new_pos, radius);
            let mut best_parent = nearest_idx;
            let mut best_cost = nodes[nearest_idx].cost + nearest_pos.distance(new_pos);
            for &n in &neighbours {
                let candidate_cost = nodes[n].cost + nodes[n].position.distance(new_pos);
                if candidate_cost < best_cost && checker.segment_free(nodes[n].position, new_pos) {
                    best_parent = n;
                    best_cost = candidate_cost;
                }
            }
            let new_idx = nodes.len();
            nodes.push(Node {
                position: new_pos,
                parent: Some(best_parent),
                cost: best_cost,
            });
            neighbors.insert(new_pos);
            explored = Aabb::union(&explored, &Aabb::new(new_pos, new_pos));

            // Rewire neighbours through the new node when cheaper.
            for &n in &neighbours {
                let through_new = best_cost + new_pos.distance(nodes[n].position);
                if through_new + 1e-9 < nodes[n].cost
                    && checker.segment_free(new_pos, nodes[n].position)
                {
                    nodes[n].parent = Some(new_idx);
                    nodes[n].cost = through_new;
                }
            }

            // Goal connection.
            if new_pos.distance(goal) <= cfg.goal_tolerance
                || (new_pos.distance(goal) <= cfg.steer_length
                    && checker.segment_free(new_pos, goal))
            {
                let goal_cost = best_cost + new_pos.distance(goal);
                let better = match best_goal_node {
                    None => true,
                    Some(idx) => goal_cost < nodes[idx].cost + nodes[idx].position.distance(goal),
                };
                if better {
                    best_goal_node = Some(new_idx);
                }
            }
        }

        let explored_volume = explored.volume();
        match best_goal_node {
            Some(idx) => {
                let mut path = vec![goal];
                let mut cursor = Some(idx);
                while let Some(i) = cursor {
                    path.push(nodes[i].position);
                    cursor = nodes[i].parent;
                }
                path.reverse();
                let cost = path.windows(2).map(|w| w[0].distance(w[1])).sum();
                RrtResult {
                    path,
                    cost,
                    samples_drawn,
                    tree_size: nodes.len(),
                    explored_volume,
                    volume_capped,
                }
            }
            None => RrtResult {
                path: Vec::new(),
                cost: f64::INFINITY,
                samples_drawn,
                tree_size: nodes.len(),
                explored_volume,
                volume_capped,
            },
        }
    }
}

/// Neighbor queries over the growing tree. The two implementations must
/// agree exactly: nearest uses the squared-distance metric with ties to the
/// lowest index, near uses `distance <= radius` in ascending index order.
trait NeighborSearch {
    fn insert(&mut self, p: Vec3);
    fn nearest(&self, target: Vec3) -> usize;
    fn near(&self, p: Vec3, radius: f64) -> Vec<usize>;
}

/// Grid-accelerated neighbor queries (the default).
struct GridNeighbors {
    index: PointGridIndex,
}

impl NeighborSearch for GridNeighbors {
    fn insert(&mut self, p: Vec3) {
        self.index.insert(p);
    }

    fn nearest(&self, target: Vec3) -> usize {
        self.index.nearest(target).expect("tree is never empty") as usize
    }

    fn near(&self, p: Vec3, radius: f64) -> Vec<usize> {
        self.index
            .within_radius(p, radius)
            .into_iter()
            .map(|i| i as usize)
            .collect()
    }
}

/// Linear-scan neighbor queries (the retained reference).
struct LinearNeighbors {
    points: Vec<Vec3>,
}

impl NeighborSearch for LinearNeighbors {
    fn insert(&mut self, p: Vec3) {
        self.points.push(p);
    }

    fn nearest(&self, target: Vec3) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = p.distance_squared(target);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn near(&self, p: Vec3, radius: f64) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, q)| q.distance(p) <= radius)
            .map(|(i, _)| i)
            .collect()
    }
}

fn steer(from: Vec3, towards: Vec3, max_len: f64) -> Vec3 {
    let d = from.distance(towards);
    if d <= max_len {
        towards
    } else {
        from + (towards - from) * (max_len / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollisionChecker;
    use roborun_geom::Vec3;
    use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};

    fn open_checker() -> CollisionChecker {
        CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5)
    }

    fn wall_with_gap_checker() -> CollisionChecker {
        // A wall at x = 20 spanning y in [-30, 30] except a gap at y ∈ [6, 10].
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (6.0..=10.0).contains(&y) {
                continue;
            }
            for zi in 0..30 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
        CollisionChecker::new(pm, 0.45, 0.5)
    }

    fn corridor_bounds() -> Aabb {
        Aabb::new(Vec3::new(-5.0, -35.0, 1.0), Vec3::new(45.0, 35.0, 12.0))
    }

    #[test]
    fn default_config_is_valid() {
        assert!(RrtConfig::default().validate().is_ok());
        assert!(RrtConfig {
            max_samples: 0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            steer_length: 0.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            goal_bias: 1.5,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            rewire_radius: -1.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            goal_tolerance: 0.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            max_explored_volume: -1.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn open_space_uses_direct_connection() {
        let planner = RrtStar::new(RrtConfig::default());
        let mut checker = open_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
        assert!(result.found());
        assert_eq!(result.path.len(), 2);
        assert_eq!(result.samples_drawn, 0);
        assert!((result.cost - 40.0).abs() < 1e-9);
    }

    #[test]
    fn finds_path_through_gap() {
        let planner = RrtStar::new(RrtConfig {
            seed: 3,
            ..RrtConfig::default()
        });
        let mut checker = wall_with_gap_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
        assert!(result.found(), "no path found through the gap");
        // Path starts and ends correctly.
        assert!((result.path[0] - start).norm() < 1e-9);
        assert!((result.path.last().unwrap().distance(goal)) < 1e-9);
        // Path must be collision free at the checked resolution.
        let mut verify = wall_with_gap_checker();
        assert!(verify.path_free(&result.path));
        // Path is longer than the straight line (it must detour to the gap).
        assert!(result.cost >= 40.0);
        assert!(result.tree_size > 1);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let planner = RrtStar::new(RrtConfig {
            seed: 7,
            ..RrtConfig::default()
        });
        let mut c1 = wall_with_gap_checker();
        let mut c2 = wall_with_gap_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let r1 = planner.plan(&mut c1, start, goal, &corridor_bounds());
        let r2 = planner.plan(&mut c2, start, goal, &corridor_bounds());
        assert_eq!(r1.path, r2.path);
        assert_eq!(r1.samples_drawn, r2.samples_drawn);
    }

    #[test]
    fn volume_monitor_caps_exploration() {
        // Unreachable goal (fully blocked wall) with a tiny volume budget:
        // the search must terminate early via the volume monitor.
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -70..=70 {
            for zi in 0..30 {
                points.push(Vec3::new(20.0, yi as f64 * 0.5, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
        let mut checker = CollisionChecker::new(pm, 0.45, 0.5);
        let planner = RrtStar::new(RrtConfig {
            max_explored_volume: 500.0,
            max_samples: 100_000,
            seed: 5,
            ..RrtConfig::default()
        });
        let result = planner.plan(
            &mut checker,
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(40.0, 0.0, 5.0),
            &Aabb::new(Vec3::new(-5.0, -35.0, 1.0), Vec3::new(18.0, 35.0, 12.0)),
        );
        assert!(result.volume_capped, "volume monitor should have tripped");
        assert!(result.samples_drawn < 100_000);
        assert!(!result.found());
        assert_eq!(result.cost, f64::INFINITY);
    }

    #[test]
    fn larger_volume_budget_explores_more() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let run = |budget: f64| {
            let planner = RrtStar::new(RrtConfig {
                max_explored_volume: budget,
                max_samples: 600,
                seed: 11,
                ..RrtConfig::default()
            });
            let mut checker = wall_with_gap_checker();
            planner.plan(&mut checker, start, goal, &corridor_bounds())
        };
        let small = run(200.0);
        let large = run(1.0e7);
        assert!(large.explored_volume >= small.explored_volume);
        assert!(large.tree_size >= small.tree_size);
    }

    #[test]
    #[should_panic(expected = "invalid RRT*")]
    fn invalid_config_panics() {
        let _ = RrtStar::new(RrtConfig {
            steer_length: -1.0,
            ..RrtConfig::default()
        });
    }

    #[test]
    fn shrinking_rewire_is_off_by_default_and_bit_identical_when_off() {
        assert!(!RrtConfig::default().shrinking_rewire);
        let planner = RrtStar::new(RrtConfig {
            seed: 3,
            shrinking_rewire: false,
            ..RrtConfig::default()
        });
        let reference = RrtStar::new(RrtConfig {
            seed: 3,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut c1 = wall_with_gap_checker();
        let mut c2 = wall_with_gap_checker();
        let a = planner.plan(&mut c1, start, goal, &corridor_bounds());
        let b = reference.plan(&mut c2, start, goal, &corridor_bounds());
        assert_eq!(a, b);
        assert_eq!(c1.queries(), c2.queries());
    }

    #[test]
    fn shrinking_rewire_cuts_neighbor_work_without_regressing_path_cost() {
        // The γ(ln n / n)^{1/3} schedule must (a) shrink the rewire
        // neighbourhood once the tree outgrows the fixed radius — here
        // measured as collision-checker queries, which the neighbour loop
        // dominates — and (b) keep the found path within a 6% per-seed
        // (3% mean) cost tolerance of the fixed-radius baseline
        // (measured: ≤ 4% worst seed, ~1% mean on this scenario).
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut ratios = Vec::new();
        for seed in 0..6 {
            let run = |shrinking_rewire: bool| {
                let planner = RrtStar::new(RrtConfig {
                    max_samples: 2_000,
                    seed,
                    shrinking_rewire,
                    ..RrtConfig::default()
                });
                let mut checker = wall_with_gap_checker();
                let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
                (result, checker.queries())
            };
            let (fixed, fixed_queries) = run(false);
            let (shrunk, shrunk_queries) = run(true);
            assert!(fixed.found() && shrunk.found(), "seed {seed} found no path");
            // Same sample stream, same tree shape — only the
            // neighbourhood (and with it parent/rewire choices) differs.
            assert_eq!(fixed.tree_size, shrunk.tree_size, "seed {seed}");
            assert!(
                (shrunk_queries as f64) < 0.8 * fixed_queries as f64,
                "seed {seed}: shrinking did not cut neighbour work \
                 ({shrunk_queries} vs {fixed_queries} queries)"
            );
            let ratio = shrunk.cost / fixed.cost;
            assert!(ratio < 1.06, "seed {seed}: path cost regressed by {ratio}");
            ratios.push(ratio);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 1.03, "mean path-cost ratio {mean}");
    }

    #[test]
    fn shrinking_rewire_indexed_and_linear_reference_agree() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..4 {
            let planner = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                shrinking_rewire: true,
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let mut c2 = wall_with_gap_checker();
            let indexed = planner.plan(&mut c1, start, goal, &corridor_bounds());
            let linear = planner.plan_linear_reference(&mut c2, start, goal, &corridor_bounds());
            assert_eq!(indexed, linear, "seed {seed}");
            assert_eq!(c1.queries(), c2.queries(), "seed {seed}");
        }
    }

    #[test]
    fn indexed_and_linear_reference_plans_are_identical() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..8 {
            let planner = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let mut c2 = wall_with_gap_checker();
            let indexed = planner.plan(&mut c1, start, goal, &corridor_bounds());
            let linear = planner.plan_linear_reference(&mut c2, start, goal, &corridor_bounds());
            assert_eq!(indexed, linear, "seed {seed}");
            // Both paths consumed the collision checker identically too.
            assert_eq!(c1.queries(), c2.queries(), "seed {seed}");
        }
    }
}
