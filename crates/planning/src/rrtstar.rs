//! RRT* piece-wise planner with the planning volume operator.
//!
//! A from-scratch replacement for the OMPL RRT* planner the paper uses:
//! stochastic sampling inside a bounded exploration region, nearest-node
//! extension, cost-aware parent selection and rewiring (the * part), plus
//! the paper's **planning volume operator**: "RRT* sorts the points/paths
//! within the explored space and our volume monitor stops the search upon
//! exceeding the threshold" — implemented here by tracking the axis-aligned
//! volume of the explored tree and terminating growth when it exceeds the
//! governor's planner-volume knob.
//!
//! The tree's nearest/near queries run against a
//! [`roborun_geom::PointGridIndex`] that grows incrementally with the tree,
//! so a search over n samples costs ~O(n) instead of the O(n²) of the
//! retained linear scans. [`RrtStar::plan_linear_reference`] runs the same
//! search with linear neighbor scans; both paths share one generic core
//! and are specified to return bit-identical results (enforced by the
//! equivalence proptests in `tests/proptests.rs`).
//!
//! # The sampling mix
//!
//! Uniform sampling is the correctness baseline but wastes most of its
//! draws in lane-heavy scenes: a plan through a predicted crossing lane
//! only needs samples near the goal and in the *free flanks around the
//! lane*, yet uniform sampling spreads them over the whole corridor.
//! [`SamplingMix`] (off by default) splits the non-goal-biased draws
//! between a goal-region box, the gap regions flanking each hazard box
//! (derived per plan from [`HazardSource::bias_boxes`] — the
//! [`crate::HazardContext`]'s predicted box set), and the plain uniform
//! fallback. The bias is purely a *proposal* distribution: every edge
//! still passes the same validity checks, so the mix changes where the
//! tree grows, never what counts as free. With the mix off — or with no
//! hazard boxes composed — the sampler draws exactly the classic
//! `chance(goal_bias)` + `point_in_aabb(bounds)` stream, bit for bit.
//!
//! # The node arena and batched expansion
//!
//! Tree nodes live in a node arena: one upfront allocation holding
//! positions, parent links and costs in struct-of-arrays layout, sized
//! for the sample budget at plan start. Nodes are append-only, ids are
//! dense `u32`s in insertion order, and rewiring mutates only
//! parent/cost — positions never move, so neighbor indices remain valid
//! for the whole plan. On top of the arena,
//! [`RrtConfig::batch_size`] > 1 *batch-expands* the tree: K targets are
//! pre-drawn per round (the identical RNG stream — targets are the only
//! per-sample draws), processed sequentially against the spatial index
//! plus a linear patch-up over the round's fresh nodes, and flushed into
//! the index once per round instead of once per node. Every nearest/near
//! answer is exactly the answer the per-sample flush would have given
//! (the fresh patch-up uses the same metric and tie rules), so batched
//! results are bit-identical to `batch_size = 1` — enforced by the
//! batch-equivalence tests.
//!
//! # Warm-started replans: the rebase / prune / repair contract
//!
//! A replanning mission throws away a tree that is mostly still valid:
//! between two decisions the map changes by a handful of *added* voxels
//! (removed voxels only free space) and the start advances a few metres
//! along the committed path. [`RrtConfig::warm_start`] (off by default)
//! keeps the previous search tree alive in a caller-owned
//! [`PlannerScratch`] and, on the next [`RrtStar::plan_with_scratch`]
//! call with a [`WarmStart`] delta, recycles it in three steps:
//!
//! 1. **Rebase** — the retained node nearest the new start becomes the
//!    anchor; if it sits within `2 × steer_length` and the start→anchor
//!    edge is free under the *current* checker, the tree is re-rooted at
//!    the new start. Otherwise the plan cold-starts (bit-identical to a
//!    fresh search).
//! 2. **Prune** — every retained edge is sampled at the caller's
//!    collision step against the decision's *added* voxel boxes and the
//!    retargeted hazard boxes (the same delta-validation contract as
//!    `CollisionChecker::path_clear_of_added`); invalidated edges are
//!    cut, and subtrees no longer connected to the new root are dropped
//!    with them.
//! 3. **Repair** — a traversal from the anchor over the surviving edges
//!    reassigns parents and recomputes costs from the new root
//!    (cascading cost repair for every orphan-adjacent subtree; later
//!    rewiring restores asymptotic optimality incrementally).
//!
//! The search then continues with the normal sample budget; retained
//! nodes within goal tolerance seed the best-solution bound immediately,
//! so [`RrtConfig::informed_sampling`] and [`RrtConfig::refine_samples`]
//! engage from sample zero. Interaction with plan-ahead snapshots: the
//! mission layer records the export the retained tree was built against
//! and hands this planner only the *delta* between that snapshot and the
//! fresh export — exactly the speculation-validation contract — so a
//! worker's speculative plans (which run against their own scratch,
//! always cold) never share tree state with the synchronous path. With
//! `warm_start` off — or with no usable anchor — nothing is reused and
//! the RNG stream, collision-query stream and result bits are identical
//! to the cold planner.

use crate::hazard::HazardSource;
use roborun_geom::{Aabb, PointGridIndex, SplitMix64, Vec3};
use serde::{Deserialize, Serialize};

/// Sampling-mix configuration: how RRT* splits its non-goal-biased draws
/// between hazard-derived regions and the uniform baseline.
///
/// When `enabled` (and the hazard source exposes at least one bias box),
/// each non-goal-biased draw picks, with probability `goal_region_weight`,
/// a point in the box of half-extent `goal_region_radius` around the goal
/// (clipped to the sampling bounds); with probability `gap_weight`, a
/// point in one of the *gap regions* — for every hazard box (clipped to
/// the sampling bounds) and every axis, the two boxes sharing the hazard
/// box's cross-section that extend a few meters outward from the hazard
/// face, i.e. exactly the free passages where a path around that box
/// turns its corner; and otherwise a uniform point in the sampling
/// bounds. Gap
/// regions are chosen with *equal probability per region*, not by
/// volume: a volume-weighted pick would reproduce near-uniform density
/// over the gap union (most of which is open corridor), while the equal
/// split concentrates proposal density in the small regions — the tight
/// passages the detour actually has to thread.
///
/// Off by default; with it off (or with no hazard boxes composed) the
/// sampler is bit-identical to the classic uniform draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingMix {
    /// Master switch. `false` (the default) keeps the uniform sampler.
    pub enabled: bool,
    /// Probability mass of the goal-region draw, in [0, 1].
    pub goal_region_weight: f64,
    /// Probability mass of the gap-region draw, in [0, 1]
    /// (`goal_region_weight + gap_weight` must stay ≤ 1; the remainder
    /// is the uniform fallback).
    pub gap_weight: f64,
    /// Half-extent (metres) of the cubic goal region.
    pub goal_region_radius: f64,
}

impl Default for SamplingMix {
    fn default() -> Self {
        SamplingMix {
            enabled: false,
            goal_region_weight: 0.15,
            gap_weight: 0.55,
            goal_region_radius: 8.0,
        }
    }
}

impl SamplingMix {
    /// Validates the mix parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, w) in [
            ("goal_region_weight", self.goal_region_weight),
            ("gap_weight", self.gap_weight),
        ] {
            if !(0.0..=1.0).contains(&w) {
                return Err(format!("{name} must be in [0,1], got {w}"));
            }
        }
        if self.goal_region_weight + self.gap_weight > 1.0 {
            return Err(format!(
                "goal_region_weight + gap_weight must be at most 1, got {}",
                self.goal_region_weight + self.gap_weight
            ));
        }
        if self.goal_region_radius <= 0.0 {
            return Err(format!(
                "goal_region_radius must be positive, got {}",
                self.goal_region_radius
            ));
        }
        Ok(())
    }
}

/// RRT* configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrtConfig {
    /// Maximum number of samples drawn before giving up.
    pub max_samples: usize,
    /// Steering (edge) length in metres.
    pub steer_length: f64,
    /// Probability of sampling the goal directly (goal bias).
    pub goal_bias: f64,
    /// Radius used when searching for rewiring candidates.
    pub rewire_radius: f64,
    /// Distance at which the goal counts as reached.
    pub goal_tolerance: f64,
    /// Maximum explored volume (m³) — the planning volume knob.
    pub max_explored_volume: f64,
    /// Opt-in shrinking rewire radius: when `true`, the parent-selection /
    /// rewiring neighbourhood follows the asymptotically-optimal RRT*
    /// schedule `r(n) = min(γ·(ln n / n)^{1/3}, rewire_radius)` with `γ`
    /// derived from the sampling-bounds volume (`γ* = 2·((1 + 1/d)·μ(X)/
    /// ζ_d)^{1/d}`, `d = 3`). Small trees behave exactly like the fixed
    /// radius (the schedule starts above the cap); past a few hundred
    /// nodes the neighbourhood shrinks, cutting the O(K) rewire term that
    /// dominates large searches. Off by default: the fixed radius is the
    /// evaluated baseline and the schedule is a behaviour change.
    pub shrinking_rewire: bool,
    /// Hazard-biased sampling mix (see [`SamplingMix`]). Off by default:
    /// the uniform sampler is the evaluated baseline and stays
    /// bit-identical when the mix is off or no hazard boxes are exposed.
    pub sampling_mix: SamplingMix,
    /// Targets pre-drawn (and index flushes amortised) per expansion
    /// round. `1` (the default) is the classic per-sample loop; larger
    /// values batch K candidate extensions per lock of the spatial index
    /// — results are *exactly* those of `batch_size = 1` (see the module
    /// docs), so this is a pure throughput knob for 16k+-sample
    /// searches.
    pub batch_size: usize,
    /// Opt-in cross-plan tree recycling (see the module docs' rebase /
    /// prune / repair contract). Only takes effect on
    /// [`RrtStar::plan_with_scratch`] calls that pass a [`WarmStart`]
    /// delta and a scratch holding a retained tree; off (the default) the
    /// planner cold-starts every search, bit-identical to the pre-reuse
    /// planner.
    pub warm_start: bool,
    /// Opt-in informed sampling: once a solution exists, non-goal draws
    /// falling outside the prolate spheroid `|p−start| + |p−goal| ≤
    /// c_best` are redrawn (bounded retries, so a spheroid thinner than
    /// the proposal regions degrades gracefully to the plain mix). The
    /// rejection *composes* with the [`SamplingMix`] regions — a kept
    /// draw is one the mix proposed *and* the spheroid admits. Off by
    /// default: rejection consumes extra RNG draws, so this is a
    /// behaviour change wherever a solution is found before the budget
    /// runs out.
    pub informed_sampling: bool,
    /// Opt-in anytime cutoff: stop the search this many samples after
    /// the first solution is known (a warm-retained solution counts as
    /// known at sample zero). `0` (the default) keeps the classic
    /// run-to-budget behaviour. This is the knob that converts a
    /// recycled tree into replan *latency*: a warm tree that still
    /// reaches the goal pays only the refine budget instead of the full
    /// `max_samples`.
    pub refine_samples: usize,
    /// Random seed (explicit for reproducibility).
    pub seed: u64,
}

impl Default for RrtConfig {
    fn default() -> Self {
        RrtConfig {
            max_samples: 4000,
            steer_length: 6.0,
            goal_bias: 0.15,
            rewire_radius: 12.0,
            goal_tolerance: 2.0,
            max_explored_volume: 1.0e6,
            shrinking_rewire: false,
            sampling_mix: SamplingMix::default(),
            batch_size: 1,
            warm_start: false,
            informed_sampling: false,
            refine_samples: 0,
            seed: 1,
        }
    }
}

impl RrtConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_samples == 0 {
            return Err("max_samples must be at least 1".into());
        }
        if self.steer_length <= 0.0 {
            return Err(format!(
                "steer_length must be positive, got {}",
                self.steer_length
            ));
        }
        if !(0.0..=1.0).contains(&self.goal_bias) {
            return Err(format!(
                "goal_bias must be in [0,1], got {}",
                self.goal_bias
            ));
        }
        if self.rewire_radius <= 0.0 {
            return Err(format!(
                "rewire_radius must be positive, got {}",
                self.rewire_radius
            ));
        }
        if self.goal_tolerance <= 0.0 {
            return Err(format!(
                "goal_tolerance must be positive, got {}",
                self.goal_tolerance
            ));
        }
        if self.max_explored_volume < 0.0 {
            return Err(format!(
                "max_explored_volume must be non-negative, got {}",
                self.max_explored_volume
            ));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be at least 1".into());
        }
        self.sampling_mix.validate()
    }
}

/// Result of an RRT* search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RrtResult {
    /// Waypoints from start to goal (inclusive); empty when no path found.
    pub path: Vec<Vec3>,
    /// Path cost (length in metres); infinite when no path was found.
    pub cost: f64,
    /// Number of samples drawn.
    pub samples_drawn: usize,
    /// Number of nodes in the final tree.
    pub tree_size: usize,
    /// Axis-aligned volume of the explored tree (m³).
    pub explored_volume: f64,
    /// `true` when the search stopped because the volume monitor tripped.
    pub volume_capped: bool,
    /// Number of edges re-parented through a cheaper new node.
    pub rewires: usize,
    /// Number of batched search rounds the sampler executed.
    pub batch_rounds: usize,
    /// Nodes recycled from the previous plan's tree (including the new
    /// root); zero on a cold start.
    pub retained_nodes: usize,
    /// Previous-tree nodes dropped by the warm-start prune (edges cut by
    /// added voxels / hazards, plus subtrees disconnected from the new
    /// root); zero on a cold start.
    pub pruned_nodes: usize,
    /// `true` when this search continued a recycled tree instead of
    /// cold-starting.
    pub rebased: bool,
    /// Draws rejected by the informed-sampling spheroid (each costs one
    /// extra RNG draw; zero with [`RrtConfig::informed_sampling`] off).
    pub informed_rejections: usize,
}

impl RrtResult {
    /// `true` when a path to the goal was found.
    pub fn found(&self) -> bool {
        !self.path.is_empty()
    }
}

/// Parent sentinel of the tree root in [`NodeArena::parents`].
const NO_PARENT: u32 = u32::MAX;

/// Append-only tree storage in struct-of-arrays layout.
///
/// The arena contract: one upfront allocation sized for the sample
/// budget (no per-node reallocation on the hot path), dense `u32` ids in
/// insertion order that double as spatial-index ids, positions immutable
/// once pushed (so ids stored in the neighbor index never dangle), and
/// rewiring restricted to the `parents`/`costs` columns. The SoA split
/// keeps the nearest/near patch-up scans walking contiguous positions
/// without dragging parent links and costs through the cache.
#[derive(Debug, Clone)]
struct NodeArena {
    positions: Vec<Vec3>,
    parents: Vec<u32>,
    costs: Vec<f64>,
}

impl NodeArena {
    fn with_capacity(capacity: usize) -> Self {
        NodeArena {
            positions: Vec::with_capacity(capacity),
            parents: Vec::with_capacity(capacity),
            costs: Vec::with_capacity(capacity),
        }
    }

    fn clear(&mut self) {
        self.positions.clear();
        self.parents.clear();
        self.costs.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.positions.reserve(additional);
        self.parents.reserve(additional);
        self.costs.reserve(additional);
    }

    #[inline]
    fn len(&self) -> usize {
        self.positions.len()
    }

    #[inline]
    fn push(&mut self, position: Vec3, parent: u32, cost: f64) -> u32 {
        let id = self.positions.len() as u32;
        self.positions.push(position);
        self.parents.push(parent);
        self.costs.push(cost);
        id
    }

    #[inline]
    fn position(&self, id: u32) -> Vec3 {
        self.positions[id as usize]
    }

    #[inline]
    fn cost(&self, id: u32) -> f64 {
        self.costs[id as usize]
    }

    #[inline]
    fn parent(&self, id: u32) -> Option<u32> {
        let p = self.parents[id as usize];
        (p != NO_PARENT).then_some(p)
    }
}

/// Replaces one axis of `v` — the gap-region constructor's helper.
#[inline]
fn with_axis(v: Vec3, axis: usize, value: f64) -> Vec3 {
    match axis {
        0 => Vec3::new(value, v.y, v.z),
        1 => Vec3::new(v.x, value, v.z),
        _ => Vec3::new(v.x, v.y, value),
    }
}

/// How far a gap region extends away from the hazard face, in meters.
/// Without the clamp a flank spans to the sampling-bounds edge and is
/// mostly open corridor; the payoff volume — where a detour actually
/// turns the hazard's corner — hugs the face.
const GAP_REGION_DEPTH: f64 = 6.0;

/// Per-plan sampler state, derived once from the [`SamplingMix`] and the
/// hazard source's bias boxes (see the module docs). The gap-region boxes
/// themselves live in the caller's scratch buffer (hoisted out of the
/// per-plan allocation path) — [`Sampler::sample_target`] takes them as a
/// slice.
#[derive(Debug, Clone)]
enum Sampler {
    /// The classic draw: `chance(goal_bias)` then `point_in_aabb(bounds)`
    /// — the exact RNG stream of the pre-mix planner.
    Uniform,
    /// The hazard-biased mix. Invariants: `goal_w > 0` implies
    /// `goal_region` is real, `gap_w > 0` implies the caller's gap-region
    /// buffer is non-empty. Regions are picked with equal probability —
    /// small (tight-passage) regions deliberately get the same share of
    /// draws as wide-open flanks (see the [`SamplingMix`] docs).
    Mix {
        goal_region: Aabb,
        goal_w: f64,
        gap_w: f64,
    },
}

impl Sampler {
    /// Builds the sampler for one plan, filling `gap_regions` (a reused
    /// scratch buffer — cleared here) with the hazard flank boxes. Falls
    /// back to [`Sampler::Uniform`] when the mix is off, no hazard boxes
    /// are exposed, or no usable region survives clipping — the fallback
    /// draws the identical RNG stream to the pre-mix planner.
    fn for_plan(
        mix: &SamplingMix,
        goal: Vec3,
        bounds: &Aabb,
        hazard_boxes: &[Aabb],
        gap_regions: &mut Vec<Aabb>,
    ) -> Sampler {
        gap_regions.clear();
        if !mix.enabled || hazard_boxes.is_empty() {
            return Sampler::Uniform;
        }
        for hazard in hazard_boxes {
            let Some(clip) = hazard.intersection(bounds) else {
                continue;
            };
            for axis in 0..3 {
                // The two flanking boxes along this axis: the hazard
                // box's cross-section, extending [`GAP_REGION_DEPTH`]
                // meters outward from the hazard face (clamped to the
                // bounds edge). For a crossing lane these are exactly
                // the passage columns around the lane's ends.
                let flanks = [
                    (
                        (clip.min[axis] - GAP_REGION_DEPTH).max(bounds.min[axis]),
                        clip.min[axis],
                    ),
                    (
                        clip.max[axis],
                        (clip.max[axis] + GAP_REGION_DEPTH).min(bounds.max[axis]),
                    ),
                ];
                for (lo, hi) in flanks {
                    if hi - lo <= 1e-9 {
                        continue;
                    }
                    let region = Aabb {
                        min: with_axis(clip.min, axis, lo),
                        max: with_axis(clip.max, axis, hi),
                    };
                    if region.volume() > 1e-9 {
                        gap_regions.push(region);
                    }
                }
            }
        }
        let goal_region = Aabb::from_center_half_extents(goal, Vec3::splat(mix.goal_region_radius))
            .intersection(bounds);
        let goal_w = if goal_region.is_some() {
            mix.goal_region_weight
        } else {
            0.0
        };
        let gap_w = if gap_regions.is_empty() {
            0.0
        } else {
            mix.gap_weight
        };
        if goal_w <= 0.0 && gap_w <= 0.0 {
            return Sampler::Uniform;
        }
        Sampler::Mix {
            goal_region: goal_region.unwrap_or(*bounds),
            goal_w,
            gap_w,
        }
    }

    /// Draws one expansion target. `gap_regions` is the buffer
    /// [`Sampler::for_plan`] filled for this plan.
    fn sample_target(
        &self,
        rng: &mut SplitMix64,
        goal: Vec3,
        goal_bias: f64,
        bounds: &Aabb,
        gap_regions: &[Aabb],
    ) -> Vec3 {
        match self {
            Sampler::Uniform => {
                if rng.chance(goal_bias) {
                    goal
                } else {
                    rng.point_in_aabb(bounds)
                }
            }
            Sampler::Mix {
                goal_region,
                goal_w,
                gap_w,
            } => {
                if rng.chance(goal_bias) {
                    return goal;
                }
                let v = rng.next_f64();
                if v < *goal_w {
                    rng.point_in_aabb(goal_region)
                } else if v < goal_w + gap_w {
                    let pick = rng.next_f64() * gap_regions.len() as f64;
                    let idx = (pick as usize).min(gap_regions.len() - 1);
                    rng.point_in_aabb(&gap_regions[idx])
                } else {
                    rng.point_in_aabb(bounds)
                }
            }
        }
    }
}

/// Per-plan precomputed parameters: the γ* rewire constant (hoisted out
/// of the sampling loop — it depends only on the sampling-bounds volume)
/// and the derived sampler state.
#[derive(Debug, Clone)]
struct PlanParams {
    /// γ of the shrinking-radius schedule: the standard RRT* lower
    /// bound γ* = 2·((1 + 1/d)·μ(X)/ζ_d)^{1/d} for d = 3, with μ(X)
    /// the sampling volume and ζ₃ = 4π/3 the unit-ball volume. Only
    /// used when `shrinking_rewire` is on.
    gamma: f64,
    sampler: Sampler,
}

impl PlanParams {
    fn new(
        cfg: &RrtConfig,
        goal: Vec3,
        sampling_bounds: &Aabb,
        hazard_boxes: &[Aabb],
        gap_regions: &mut Vec<Aabb>,
    ) -> Self {
        let gamma = 2.0
            * ((1.0 + 1.0 / 3.0) * sampling_bounds.volume() / (4.0 * std::f64::consts::PI / 3.0))
                .cbrt();
        PlanParams {
            gamma,
            sampler: Sampler::for_plan(
                &cfg.sampling_mix,
                goal,
                sampling_bounds,
                hazard_boxes,
                gap_regions,
            ),
        }
    }
}

/// Rebase anchor radius as a multiple of the steer length: a retained
/// node further than this from the new start cannot be trusted as the
/// tree's new attachment point (the mission has drifted too far), so the
/// plan cold-starts instead.
const REBASE_RADIUS_FACTOR: f64 = 2.0;

/// Bounded informed-sampling redraws per target. When the spheroid clips
/// to (almost) nothing against the proposal regions, the last draw is
/// accepted anyway — the graceful fallback to the plain mix.
const INFORMED_MAX_REDRAWS: usize = 16;

/// The decision delta a warm-started plan prunes the retained tree
/// against — mirroring `CollisionChecker::path_clear_of_added`: only
/// *added* voxels can invalidate a previously valid edge (removed voxels
/// only free space), plus the retargeted hazard/peer boxes of the new
/// decision.
#[derive(Debug, Clone, Copy)]
pub struct WarmStart<'a> {
    /// Voxel boxes added since the retained tree's snapshot.
    pub added_boxes: &'a [Aabb],
    /// Clearance for the added-box prune (the checker's margin, so a
    /// pruned-clear edge is exactly one `segment_free` would accept).
    pub added_clearance: f64,
    /// The decision's retargeted predicted-hazard / peer-corridor boxes.
    pub hazard_boxes: &'a [Aabb],
    /// Clearance for the hazard-box prune (the hazard source's soft
    /// standoff).
    pub hazard_clearance: f64,
    /// Edge sampling step (the planning-precision collision step).
    pub sample_step: f64,
}

/// Caller-owned scratch for [`RrtStar::plan_with_scratch`]: every
/// allocation the search needs — the node arena, the spatial index, the
/// near-set / target / gap-region / linear-reference buffers, and the
/// warm-start rebase workspace — lives here and is `clear()`-reused
/// across plans, so a replanning mission allocates nothing per decision
/// once the buffers reach steady-state capacity. With
/// [`RrtConfig::warm_start`] on, the scratch additionally retains the
/// previous search tree for recycling (see the module docs).
#[derive(Debug, Clone)]
pub struct PlannerScratch {
    arena: NodeArena,
    grid: PointGridIndex,
    linear_points: Vec<Vec3>,
    near_buf: Vec<u32>,
    targets: Vec<Vec3>,
    gap_regions: Vec<Aabb>,
    /// `true` while `arena` holds a recyclable tree from the previous
    /// indexed plan (with `grid` indexing exactly its positions).
    has_tree: bool,
    /// Incremented whenever a search rebuilds the retained tree — the
    /// mission layer compares epochs to learn whether its map snapshot
    /// must advance (a direct-connection shortcut leaves both untouched).
    tree_epoch: u64,
    /// Plans after which some scratch buffer had to grow its capacity —
    /// zero in steady state, the bench's allocation-reuse headline.
    grow_events: u64,
    // Warm-start rebase workspace (all reused across replans).
    spare: NodeArena,
    edge_ok: Vec<bool>,
    adj_off: Vec<u32>,
    adj: Vec<u32>,
    csr_cursor: Vec<u32>,
    bfs_old_to_new: Vec<u32>,
    bfs_queue: Vec<u32>,
    warm_added: Vec<Aabb>,
    warm_hazard: Vec<Aabb>,
}

impl Default for PlannerScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl PlannerScratch {
    /// Creates an empty scratch. The spatial-index cell size is set (and
    /// reset when the planner's rewire radius changes) per plan.
    pub fn new() -> Self {
        PlannerScratch {
            arena: NodeArena::with_capacity(0),
            grid: PointGridIndex::new(1.0),
            linear_points: Vec::new(),
            near_buf: Vec::new(),
            targets: Vec::new(),
            gap_regions: Vec::new(),
            has_tree: false,
            tree_epoch: 0,
            grow_events: 0,
            spare: NodeArena::with_capacity(0),
            edge_ok: Vec::new(),
            adj_off: Vec::new(),
            adj: Vec::new(),
            csr_cursor: Vec::new(),
            bfs_old_to_new: Vec::new(),
            bfs_queue: Vec::new(),
            warm_added: Vec::new(),
            warm_hazard: Vec::new(),
        }
    }

    /// Epoch counter of the retained tree: bumped by every search that
    /// rebuilt the arena (cold or warm), untouched by direct-connection
    /// shortcuts. The mission layer uses this to decide whether its
    /// warm-start map snapshot must advance.
    pub fn tree_epoch(&self) -> u64 {
        self.tree_epoch
    }

    /// Plans after which some scratch buffer had to grow (zero once the
    /// buffers reach steady-state capacity).
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Number of nodes in the retained tree, or zero when no recyclable
    /// tree is held.
    pub fn retained_tree_size(&self) -> usize {
        if self.has_tree {
            self.arena.len()
        } else {
            0
        }
    }

    /// Drops the retained tree (the next warm-start attempt cold-starts).
    /// Buffers keep their capacity. Call when the map snapshot the tree
    /// was validated against is no longer available (e.g. the export
    /// voxel size changed, so no key-level delta exists).
    pub fn invalidate_tree(&mut self) {
        self.has_tree = false;
    }

    /// Recreates the spatial index when the cell size changed (which
    /// orphans any retained tree — ids would still match, but a stale
    /// cell size would silently degrade query performance).
    fn ensure_cell(&mut self, cell: f64) {
        if (self.grid.cell_size() - cell).abs() > 1e-12 {
            self.grid = PointGridIndex::new(cell);
            self.has_tree = false;
        }
    }

    /// Resets the arena and the active neighbor store for a cold search
    /// rooted at `start`.
    fn cold_reset(&mut self, start: Vec3, capacity: usize, linear: bool) {
        self.arena.clear();
        self.arena.reserve(capacity);
        self.arena.push(start, NO_PARENT, 0.0);
        if linear {
            self.linear_points.clear();
            self.linear_points.push(start);
        } else {
            self.grid.clear();
            self.grid.insert(start);
        }
    }

    /// Total buffer capacity (in elements) — compared across a plan to
    /// count growth events, and reported by the allocation benches.
    pub fn footprint(&self) -> usize {
        self.arena.positions.capacity()
            + self.spare.positions.capacity()
            + self.near_buf.capacity()
            + self.targets.capacity()
            + self.gap_regions.capacity()
            + self.linear_points.capacity()
            + self.adj.capacity()
            + self.bfs_queue.capacity()
            + self.warm_added.capacity()
            + self.warm_hazard.capacity()
    }
}

/// `true` when the segment `a → b` stays clear of every warm-start delta
/// box at its clearance — the edge-level mirror of
/// `CollisionChecker::path_clear_of_added` (same stepping rule).
fn edge_clear(a: Vec3, b: Vec3, warm: &WarmStart) -> bool {
    if warm.added_boxes.is_empty() && warm.hazard_boxes.is_empty() {
        return true;
    }
    let step = warm.sample_step.max(1e-3);
    let steps = (a.distance(b) / step).ceil().max(1.0) as usize;
    for i in 0..=steps {
        let t = i as f64 / steps as f64;
        let p = a + (b - a) * t;
        for bx in warm.added_boxes {
            if bx.distance_to_point(p) <= warm.added_clearance {
                return false;
            }
        }
        for bx in warm.hazard_boxes {
            if bx.distance_to_point(p) <= warm.hazard_clearance {
                return false;
            }
        }
    }
    true
}

/// Search-loop seed state: what a cold start or a successful rebase hands
/// the sampling loop.
struct SearchSeed {
    explored: Aabb,
    best_goal_node: Option<u32>,
    retained_nodes: usize,
    pruned_nodes: usize,
    rebased: bool,
}

/// The RRT* planner.
#[derive(Debug, Clone)]
pub struct RrtStar {
    config: RrtConfig,
}

impl RrtStar {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: RrtConfig) -> Self {
        config.validate().expect("invalid RRT* configuration");
        RrtStar { config }
    }

    /// The planner's configuration.
    pub fn config(&self) -> &RrtConfig {
        &self.config
    }

    /// Neighbourhood radius for a tree of `tree_size` nodes: the fixed
    /// `rewire_radius`, or — with [`RrtConfig::shrinking_rewire`] — the
    /// γ·(ln n / n)^{1/3} schedule capped at it.
    fn rewire_radius_for(&self, tree_size: usize, gamma: f64) -> f64 {
        if !self.config.shrinking_rewire {
            return self.config.rewire_radius;
        }
        let n = tree_size.max(2) as f64;
        (gamma * (n.ln() / n).cbrt()).min(self.config.rewire_radius)
    }

    /// Searches for a collision-free path from `start` to `goal` inside
    /// `sampling_bounds`, checking edges against `checker` — any
    /// [`HazardSource`], so the search sees predicted soft obstacles when
    /// handed the composed [`crate::HazardContext`] and only the static
    /// map when handed a bare [`crate::CollisionChecker`].
    ///
    /// Neighbor queries run against an incrementally grown grid index;
    /// the result is identical to [`RrtStar::plan_linear_reference`].
    pub fn plan<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
    ) -> RrtResult {
        let mut scratch = PlannerScratch::new();
        self.plan_with_scratch(checker, start, goal, sampling_bounds, &mut scratch, None)
    }

    /// [`RrtStar::plan`] against a caller-owned [`PlannerScratch`]: all
    /// search buffers are reused across calls (zero steady-state
    /// allocation), and with [`RrtConfig::warm_start`] on plus a
    /// [`WarmStart`] delta, the previous tree is recycled per the module
    /// docs' rebase / prune / repair contract. With `warm` `None` (or
    /// `warm_start` off, or no usable anchor) the search cold-starts,
    /// bit-identical to [`RrtStar::plan`].
    pub fn plan_with_scratch<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
        scratch: &mut PlannerScratch,
        warm: Option<&WarmStart>,
    ) -> RrtResult {
        self.plan_impl(checker, start, goal, sampling_bounds, scratch, warm, false)
    }

    /// The retained linear-scan reference: the same search with O(n)
    /// nearest/near scans per sample. Kept for the equivalence proptests
    /// and the kernel-scaling benches; prefer [`RrtStar::plan`].
    pub fn plan_linear_reference<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
    ) -> RrtResult {
        let mut scratch = PlannerScratch::new();
        self.plan_impl(
            checker,
            start,
            goal,
            sampling_bounds,
            &mut scratch,
            None,
            true,
        )
    }

    /// Shared entry: direct-connection shortcut, then warm rebase or cold
    /// reset, then the generic search loop over the scratch buffers.
    /// Linear mode is the equivalence-reference path; it never recycles a
    /// tree (and marks the scratch's tree unusable, since the grid no
    /// longer mirrors the arena).
    #[allow(clippy::too_many_arguments)]
    fn plan_impl<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
        scratch: &mut PlannerScratch,
        warm: Option<&WarmStart>,
        linear: bool,
    ) -> RrtResult {
        let cfg = &self.config;

        // Direct connection shortcut: open sky missions should not pay
        // for tree growth at all. Any retained tree (and its snapshot
        // epoch) stays untouched — deltas keep accumulating against it.
        if checker.segment_free(start, goal) {
            return RrtResult {
                path: vec![start, goal],
                cost: start.distance(goal),
                samples_drawn: 0,
                tree_size: 1,
                explored_volume: 0.0,
                volume_capped: false,
                rewires: 0,
                batch_rounds: 0,
                retained_nodes: 0,
                pruned_nodes: 0,
                rebased: false,
                informed_rejections: 0,
            };
        }

        let footprint_before = scratch.footprint();
        if !linear {
            // Cells at the rewire radius: a near() query touches at most
            // 3^3 cells, and nearest() usually terminates in the first
            // ring.
            scratch.ensure_cell(cfg.rewire_radius.max(1e-3));
        }
        let seed = match warm {
            Some(w) if cfg.warm_start && scratch.has_tree && !linear => {
                self.rebase(checker, start, goal, w, scratch)
            }
            _ => None,
        };
        let seed = seed.unwrap_or_else(|| {
            scratch.cold_reset(start, cfg.max_samples + 1, linear);
            SearchSeed {
                explored: Aabb::new(start, start),
                best_goal_node: None,
                retained_nodes: 0,
                pruned_nodes: 0,
                rebased: false,
            }
        });
        let PlannerScratch {
            arena,
            grid,
            linear_points,
            near_buf,
            targets,
            gap_regions,
            ..
        } = scratch;
        let params = PlanParams::new(
            cfg,
            goal,
            sampling_bounds,
            checker.bias_boxes(),
            gap_regions,
        );
        let result = if linear {
            let mut neighbors = LinearNeighbors {
                points: linear_points,
            };
            self.search(
                checker,
                start,
                goal,
                sampling_bounds,
                &mut neighbors,
                arena,
                near_buf,
                targets,
                gap_regions,
                &params,
                seed,
            )
        } else {
            let mut neighbors = GridNeighbors { index: grid };
            self.search(
                checker,
                start,
                goal,
                sampling_bounds,
                &mut neighbors,
                arena,
                near_buf,
                targets,
                gap_regions,
                &params,
                seed,
            )
        };
        scratch.has_tree = !linear;
        scratch.tree_epoch = scratch.tree_epoch.wrapping_add(1);
        if scratch.footprint() > footprint_before {
            scratch.grow_events += 1;
        }
        result
    }

    /// Warm-start rebase: re-roots the retained tree at the new start,
    /// prunes edges invalidated by the [`WarmStart`] delta, and repairs
    /// costs from the new root (see the module docs). Returns `None` —
    /// meaning cold-start — when no retained node lies within the rebase
    /// radius of the new start or the start→anchor edge is blocked under
    /// the current checker.
    fn rebase<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        warm: &WarmStart,
        scratch: &mut PlannerScratch,
    ) -> Option<SearchSeed> {
        let cfg = &self.config;
        let anchor = scratch.grid.nearest(start)?;
        let anchor_pos = scratch.arena.position(anchor);
        let anchor_dist = anchor_pos.distance(start);
        if anchor_dist > cfg.steer_length * REBASE_RADIUS_FACTOR {
            return None;
        }
        if anchor_dist > 1e-12 && !checker.segment_free(start, anchor_pos) {
            return None;
        }
        let old_len = scratch.arena.len();

        // 0. Bounding-volume prefilter: every edge point lies inside the
        // tree's AABB (edges connect tree nodes, and an AABB is convex),
        // so a delta/hazard box farther than its clearance from that AABB
        // can never cut an edge. Mission deltas are whatever the cameras
        // swept this epoch — most of it far from the tree — so this turns
        // the O(edges × boxes) prune into O(edges × nearby boxes).
        let mut tree_lo = start;
        let mut tree_hi = start;
        for id in 0..old_len as u32 {
            let p = scratch.arena.position(id);
            tree_lo = tree_lo.min(p);
            tree_hi = tree_hi.max(p);
        }
        let inflate = |pad: f64| {
            let pad = Vec3::new(pad, pad, pad);
            Aabb::new(tree_lo - pad, tree_hi + pad)
        };
        let mut warm_added = std::mem::take(&mut scratch.warm_added);
        let mut warm_hazard = std::mem::take(&mut scratch.warm_hazard);
        warm_added.clear();
        warm_hazard.clear();
        let added_reach = inflate(warm.added_clearance);
        warm_added.extend(
            warm.added_boxes
                .iter()
                .filter(|b| b.intersects(&added_reach)),
        );
        let hazard_reach = inflate(warm.hazard_clearance);
        warm_hazard.extend(
            warm.hazard_boxes
                .iter()
                .filter(|b| b.intersects(&hazard_reach)),
        );
        let near = WarmStart {
            added_boxes: &warm_added,
            hazard_boxes: &warm_hazard,
            ..*warm
        };

        let PlannerScratch {
            arena,
            grid,
            spare,
            edge_ok,
            adj_off,
            adj,
            csr_cursor,
            bfs_old_to_new,
            bfs_queue,
            ..
        } = scratch;

        // 1. Edge validity under the decision delta (the prune step).
        edge_ok.clear();
        edge_ok.resize(old_len, false);
        for id in 0..old_len as u32 {
            if let Some(p) = arena.parent(id) {
                edge_ok[id as usize] = edge_clear(arena.position(p), arena.position(id), &near);
            }
        }

        // 2. CSR adjacency over the surviving edges, undirected — the
        // re-rooting traversal below must walk parent links *backwards*
        // (segment validity is symmetric, so a reversed edge is as good
        // as a forward one).
        adj_off.clear();
        adj_off.resize(old_len + 1, 0);
        for id in 0..old_len {
            if edge_ok[id] {
                let p = arena.parents[id] as usize;
                adj_off[id] += 1;
                adj_off[p] += 1;
            }
        }
        let mut running = 0u32;
        for slot in adj_off.iter_mut() {
            let count = *slot;
            *slot = running;
            running += count;
        }
        csr_cursor.clear();
        csr_cursor.extend_from_slice(&adj_off[..old_len]);
        adj.clear();
        adj.resize(running as usize, 0);
        for id in 0..old_len {
            if edge_ok[id] {
                let p = arena.parents[id] as usize;
                adj[csr_cursor[id] as usize] = p as u32;
                csr_cursor[id] += 1;
                adj[csr_cursor[p] as usize] = id as u32;
                csr_cursor[p] += 1;
            }
        }

        // 3. Re-root + cost repair: one traversal from the anchor over
        // the surviving edges assigns each reached node its path cost
        // from the new root; unreached nodes (cut edges, orphaned
        // subtrees) are dropped.
        spare.clear();
        spare.reserve(old_len + 1 + cfg.max_samples);
        spare.push(start, NO_PARENT, 0.0);
        bfs_old_to_new.clear();
        bfs_old_to_new.resize(old_len, u32::MAX);
        let anchor_new = spare.push(anchor_pos, 0, anchor_dist);
        bfs_old_to_new[anchor as usize] = anchor_new;
        bfs_queue.clear();
        bfs_queue.push(anchor);
        let mut head = 0usize;
        while head < bfs_queue.len() {
            let cur = bfs_queue[head] as usize;
            head += 1;
            let cur_new = bfs_old_to_new[cur];
            let cur_pos = spare.position(cur_new);
            let cur_cost = spare.cost(cur_new);
            for k in adj_off[cur]..adj_off[cur + 1] {
                let nb = adj[k as usize];
                if bfs_old_to_new[nb as usize] != u32::MAX {
                    continue;
                }
                let pos = arena.position(nb);
                let id = spare.push(pos, cur_new, cur_cost + cur_pos.distance(pos));
                bfs_old_to_new[nb as usize] = id;
                bfs_queue.push(nb);
            }
        }
        std::mem::swap(arena, spare);

        // 4. Rebuild the spatial index over the rebased tree and rescan
        // for a retained goal connection (tolerance rule only — the
        // steer-and-check rule needs collision queries, which the search
        // loop will spend where they pay off).
        grid.clear();
        let mut explored = Aabb::new(start, start);
        let mut best_goal_node: Option<u32> = None;
        let mut best_total = f64::INFINITY;
        for id in 0..arena.len() as u32 {
            let pos = arena.position(id);
            grid.insert(pos);
            explored = Aabb::union(&explored, &Aabb::new(pos, pos));
            let d = pos.distance(goal);
            if d <= cfg.goal_tolerance {
                let total = arena.cost(id) + d;
                if total < best_total {
                    best_total = total;
                    best_goal_node = Some(id);
                }
            }
        }
        let retained = arena.len();
        scratch.warm_added = warm_added;
        scratch.warm_hazard = warm_hazard;
        Some(SearchSeed {
            explored,
            best_goal_node,
            retained_nodes: retained,
            // Old nodes dropped: the rebased tree re-uses `retained - 1`
            // of the `old_len` previous nodes (the new root is new).
            pruned_nodes: old_len + 1 - retained,
            rebased: true,
        })
    }

    /// One informed-aware target draw: the mix proposal, redrawn while it
    /// falls outside the best-solution spheroid (bounded retries — see
    /// [`INFORMED_MAX_REDRAWS`]). `informed` is `None` when the filter is
    /// inactive, keeping the draw bit-identical to the plain mix.
    #[allow(clippy::too_many_arguments)]
    fn draw_target(
        sampler: &Sampler,
        rng: &mut SplitMix64,
        start: Vec3,
        goal: Vec3,
        goal_bias: f64,
        bounds: &Aabb,
        gap_regions: &[Aabb],
        informed: Option<f64>,
        rejections: &mut usize,
    ) -> Vec3 {
        let mut t = sampler.sample_target(rng, goal, goal_bias, bounds, gap_regions);
        let Some(c_best) = informed else {
            return t;
        };
        for _ in 0..INFORMED_MAX_REDRAWS {
            if start.distance(t) + t.distance(goal) <= c_best {
                return t;
            }
            *rejections += 1;
            t = sampler.sample_target(rng, goal, goal_bias, bounds, gap_regions);
        }
        t
    }

    /// The generic search loop (grid-indexed and linear-reference paths
    /// share it bit-identically), continuing from `seed` — a cold root or
    /// a rebased warm tree.
    #[allow(clippy::too_many_arguments)]
    fn search<N: NeighborSearch, H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        sampling_bounds: &Aabb,
        neighbors: &mut N,
        arena: &mut NodeArena,
        near_buf: &mut Vec<u32>,
        targets: &mut Vec<Vec3>,
        gap_regions: &[Aabb],
        params: &PlanParams,
        seed: SearchSeed,
    ) -> RrtResult {
        let cfg = &self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        let mut explored = seed.explored;
        let mut best_goal_node = seed.best_goal_node;
        // A warm-retained solution counts as known at sample zero, so the
        // refine budget and the informed filter engage immediately.
        let mut solution_at: Option<usize> = best_goal_node.map(|_| 0);
        let mut samples_drawn = 0usize;
        let mut volume_capped = false;
        let mut rewires = 0usize;
        let mut batch_rounds = 0usize;
        let mut informed_rejections = 0usize;
        let c_min = start.distance(goal);

        let batch = cfg.batch_size.max(1);

        'search: while samples_drawn < cfg.max_samples {
            // Refine budget: once a solution exists, spend at most
            // `refine_samples` further samples polishing it (0 = search
            // the full budget, the pre-PR-10 behavior).
            if cfg.refine_samples > 0 {
                if let Some(at) = solution_at {
                    if samples_drawn.saturating_sub(at) >= cfg.refine_samples {
                        break 'search;
                    }
                }
            }
            batch_rounds += 1;
            // Informed set for this round: the prolate spheroid of the
            // *current* best solution (foci start/goal, major axis the
            // best cost). Inactive until a solution exists or when the
            // spheroid has no slack over the straight-line distance.
            let informed = if cfg.informed_sampling {
                best_goal_node
                    .map(|idx| arena.cost(idx) + arena.position(idx).distance(goal))
                    .filter(|c| *c > c_min + 1e-9)
            } else {
                None
            };
            // Pre-draw this round's targets. Targets are the only
            // per-sample RNG consumption, so drawing K up front consumes
            // the identical stream the per-sample loop would (targets
            // drawn past a volume-monitor break are discarded unused, so
            // they cannot influence the result).
            let take = batch.min(cfg.max_samples - samples_drawn);
            targets.clear();
            for _ in 0..take {
                targets.push(Self::draw_target(
                    &params.sampler,
                    &mut rng,
                    start,
                    goal,
                    cfg.goal_bias,
                    sampling_bounds,
                    gap_regions,
                    informed,
                    &mut informed_rejections,
                ));
            }
            // Nodes appended during this round are not yet in the
            // spatial index; every query below linearly patches them in,
            // which keeps answers exactly equal to per-sample flushing.
            let fresh_from = arena.len() as u32;
            for &target in targets.iter().take(take) {
                samples_drawn += 1;
                // Volume monitor (planning volume operator).
                if explored.volume() > cfg.max_explored_volume {
                    volume_capped = true;
                    break 'search;
                }
                // Nearest node: best indexed answer, then the fresh
                // nodes (higher ids, so strict `<` keeps the indexed
                // winner on ties — the full-scan tie rule).
                let mut nearest_idx = neighbors.nearest(target);
                let mut nearest_d2 = arena.position(nearest_idx).distance_squared(target);
                for id in fresh_from..arena.len() as u32 {
                    let d2 = arena.position(id).distance_squared(target);
                    if d2 < nearest_d2 {
                        nearest_idx = id;
                        nearest_d2 = d2;
                    }
                }
                let nearest_pos = arena.position(nearest_idx);
                let new_pos = steer(nearest_pos, target, cfg.steer_length);
                if !checker.segment_free(nearest_pos, new_pos) {
                    continue;
                }
                // Choose the best parent within the rewire radius (the γ
                // schedule when shrinking is enabled, the fixed knob
                // otherwise). The near set is the indexed answer plus
                // the fresh nodes passing the same `<= radius`
                // predicate, appended in id order (fresh ids are
                // higher), matching the full-scan ordering.
                let radius = self.rewire_radius_for(arena.len(), params.gamma);
                neighbors.near_into(new_pos, radius, near_buf);
                for id in fresh_from..arena.len() as u32 {
                    if arena.position(id).distance(new_pos) <= radius {
                        near_buf.push(id);
                    }
                }
                let mut best_parent = nearest_idx;
                let mut best_cost = arena.cost(nearest_idx) + nearest_pos.distance(new_pos);
                for &n in near_buf.iter() {
                    let candidate_cost = arena.cost(n) + arena.position(n).distance(new_pos);
                    if candidate_cost < best_cost
                        && checker.segment_free(arena.position(n), new_pos)
                    {
                        best_parent = n;
                        best_cost = candidate_cost;
                    }
                }
                let new_idx = arena.push(new_pos, best_parent, best_cost);
                explored = Aabb::union(&explored, &Aabb::new(new_pos, new_pos));

                // Rewire neighbours through the new node when cheaper.
                for &n in near_buf.iter() {
                    let through_new = best_cost + new_pos.distance(arena.position(n));
                    if through_new + 1e-9 < arena.cost(n)
                        && checker.segment_free(new_pos, arena.position(n))
                    {
                        arena.parents[n as usize] = new_idx;
                        arena.costs[n as usize] = through_new;
                        rewires += 1;
                    }
                }

                // Goal connection.
                if new_pos.distance(goal) <= cfg.goal_tolerance
                    || (new_pos.distance(goal) <= cfg.steer_length
                        && checker.segment_free(new_pos, goal))
                {
                    let goal_cost = best_cost + new_pos.distance(goal);
                    let better = match best_goal_node {
                        None => true,
                        Some(idx) => {
                            goal_cost < arena.cost(idx) + arena.position(idx).distance(goal)
                        }
                    };
                    if better {
                        best_goal_node = Some(new_idx);
                        if solution_at.is_none() {
                            solution_at = Some(samples_drawn);
                        }
                    }
                }
            }
            // Flush the round's fresh nodes into the spatial index.
            for id in fresh_from..arena.len() as u32 {
                neighbors.insert(arena.position(id));
            }
        }

        let explored_volume = explored.volume();
        match best_goal_node {
            Some(idx) => {
                let mut path = vec![goal];
                let mut cursor = Some(idx);
                while let Some(i) = cursor {
                    path.push(arena.position(i));
                    cursor = arena.parent(i);
                }
                path.reverse();
                let cost = path.windows(2).map(|w| w[0].distance(w[1])).sum();
                RrtResult {
                    path,
                    cost,
                    samples_drawn,
                    tree_size: arena.len(),
                    explored_volume,
                    volume_capped,
                    rewires,
                    batch_rounds,
                    retained_nodes: seed.retained_nodes,
                    pruned_nodes: seed.pruned_nodes,
                    rebased: seed.rebased,
                    informed_rejections,
                }
            }
            None => RrtResult {
                path: Vec::new(),
                cost: f64::INFINITY,
                samples_drawn,
                tree_size: arena.len(),
                explored_volume,
                volume_capped,
                rewires,
                batch_rounds,
                retained_nodes: seed.retained_nodes,
                pruned_nodes: seed.pruned_nodes,
                rebased: seed.rebased,
                informed_rejections,
            },
        }
    }
}

/// Neighbor queries over the *flushed* prefix of the growing tree (ids
/// below each round's `fresh_from`; the search loop patches fresh nodes
/// in linearly). The two implementations must agree exactly: nearest
/// uses the squared-distance metric with ties to the lowest index,
/// `near_into` refills its output with `distance <= radius` matches in
/// ascending index order (the `_into` shape lets the search reuse one
/// scratch buffer instead of allocating per sample).
trait NeighborSearch {
    fn insert(&mut self, p: Vec3);
    fn nearest(&self, target: Vec3) -> u32;
    fn near_into(&self, p: Vec3, radius: f64, out: &mut Vec<u32>);
}

/// Grid-accelerated neighbor queries (the default). Borrows the
/// scratch-owned index so warm starts can retain it across plans.
struct GridNeighbors<'a> {
    index: &'a mut PointGridIndex,
}

impl NeighborSearch for GridNeighbors<'_> {
    fn insert(&mut self, p: Vec3) {
        self.index.insert(p);
    }

    fn nearest(&self, target: Vec3) -> u32 {
        self.index.nearest(target).expect("tree is never empty")
    }

    fn near_into(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) {
        self.index.within_radius_into(p, radius, out);
    }
}

/// Linear-scan neighbor queries (the retained reference). Borrows the
/// scratch polyline buffer; reused (cleared) across calls.
struct LinearNeighbors<'a> {
    points: &'a mut Vec<Vec3>,
}

impl NeighborSearch for LinearNeighbors<'_> {
    fn insert(&mut self, p: Vec3) {
        self.points.push(p);
    }

    fn nearest(&self, target: Vec3) -> u32 {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = p.distance_squared(target);
            if d < best_d {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    fn near_into(&self, p: Vec3, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            self.points
                .iter()
                .enumerate()
                .filter(|(_, q)| q.distance(p) <= radius)
                .map(|(i, _)| i as u32),
        );
    }
}

fn steer(from: Vec3, towards: Vec3, max_len: f64) -> Vec3 {
    let d = from.distance(towards);
    if d <= max_len {
        towards
    } else {
        from + (towards - from) * (max_len / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollisionChecker;
    use roborun_geom::Vec3;
    use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};

    fn open_checker() -> CollisionChecker {
        CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5)
    }

    fn wall_with_gap_checker() -> CollisionChecker {
        // A wall at x = 20 spanning y in [-30, 30] except a gap at y ∈ [6, 10].
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (6.0..=10.0).contains(&y) {
                continue;
            }
            for zi in 0..30 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
        CollisionChecker::new(pm, 0.45, 0.5)
    }

    fn corridor_bounds() -> Aabb {
        Aabb::new(Vec3::new(-5.0, -35.0, 1.0), Vec3::new(45.0, 35.0, 12.0))
    }

    #[test]
    fn default_config_is_valid() {
        assert!(RrtConfig::default().validate().is_ok());
        assert!(RrtConfig {
            max_samples: 0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            steer_length: 0.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            goal_bias: 1.5,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            rewire_radius: -1.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            goal_tolerance: 0.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            max_explored_volume: -1.0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn open_space_uses_direct_connection() {
        let planner = RrtStar::new(RrtConfig::default());
        let mut checker = open_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
        assert!(result.found());
        assert_eq!(result.path.len(), 2);
        assert_eq!(result.samples_drawn, 0);
        assert!((result.cost - 40.0).abs() < 1e-9);
    }

    #[test]
    fn finds_path_through_gap() {
        let planner = RrtStar::new(RrtConfig {
            seed: 3,
            ..RrtConfig::default()
        });
        let mut checker = wall_with_gap_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
        assert!(result.found(), "no path found through the gap");
        // Path starts and ends correctly.
        assert!((result.path[0] - start).norm() < 1e-9);
        assert!((result.path.last().unwrap().distance(goal)) < 1e-9);
        // Path must be collision free at the checked resolution.
        let mut verify = wall_with_gap_checker();
        assert!(verify.path_free(&result.path));
        // Path is longer than the straight line (it must detour to the gap).
        assert!(result.cost >= 40.0);
        assert!(result.tree_size > 1);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let planner = RrtStar::new(RrtConfig {
            seed: 7,
            ..RrtConfig::default()
        });
        let mut c1 = wall_with_gap_checker();
        let mut c2 = wall_with_gap_checker();
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let r1 = planner.plan(&mut c1, start, goal, &corridor_bounds());
        let r2 = planner.plan(&mut c2, start, goal, &corridor_bounds());
        assert_eq!(r1.path, r2.path);
        assert_eq!(r1.samples_drawn, r2.samples_drawn);
    }

    #[test]
    fn volume_monitor_caps_exploration() {
        // Unreachable goal (fully blocked wall) with a tiny volume budget:
        // the search must terminate early via the volume monitor.
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -70..=70 {
            for zi in 0..30 {
                points.push(Vec3::new(20.0, yi as f64 * 0.5, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
        let mut checker = CollisionChecker::new(pm, 0.45, 0.5);
        let planner = RrtStar::new(RrtConfig {
            max_explored_volume: 500.0,
            max_samples: 100_000,
            seed: 5,
            ..RrtConfig::default()
        });
        let result = planner.plan(
            &mut checker,
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(40.0, 0.0, 5.0),
            &Aabb::new(Vec3::new(-5.0, -35.0, 1.0), Vec3::new(18.0, 35.0, 12.0)),
        );
        assert!(result.volume_capped, "volume monitor should have tripped");
        assert!(result.samples_drawn < 100_000);
        assert!(!result.found());
        assert_eq!(result.cost, f64::INFINITY);
    }

    #[test]
    fn larger_volume_budget_explores_more() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let run = |budget: f64| {
            let planner = RrtStar::new(RrtConfig {
                max_explored_volume: budget,
                max_samples: 600,
                seed: 11,
                ..RrtConfig::default()
            });
            let mut checker = wall_with_gap_checker();
            planner.plan(&mut checker, start, goal, &corridor_bounds())
        };
        let small = run(200.0);
        let large = run(1.0e7);
        assert!(large.explored_volume >= small.explored_volume);
        assert!(large.tree_size >= small.tree_size);
    }

    #[test]
    #[should_panic(expected = "invalid RRT*")]
    fn invalid_config_panics() {
        let _ = RrtStar::new(RrtConfig {
            steer_length: -1.0,
            ..RrtConfig::default()
        });
    }

    #[test]
    fn shrinking_rewire_is_off_by_default_and_bit_identical_when_off() {
        assert!(!RrtConfig::default().shrinking_rewire);
        let planner = RrtStar::new(RrtConfig {
            seed: 3,
            shrinking_rewire: false,
            ..RrtConfig::default()
        });
        let reference = RrtStar::new(RrtConfig {
            seed: 3,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut c1 = wall_with_gap_checker();
        let mut c2 = wall_with_gap_checker();
        let a = planner.plan(&mut c1, start, goal, &corridor_bounds());
        let b = reference.plan(&mut c2, start, goal, &corridor_bounds());
        assert_eq!(a, b);
        assert_eq!(c1.queries(), c2.queries());
    }

    #[test]
    fn shrinking_rewire_cuts_neighbor_work_without_regressing_path_cost() {
        // The γ(ln n / n)^{1/3} schedule must (a) shrink the rewire
        // neighbourhood once the tree outgrows the fixed radius — here
        // measured as collision-checker queries, which the neighbour loop
        // dominates — and (b) keep the found path within a 6% per-seed
        // (3% mean) cost tolerance of the fixed-radius baseline
        // (measured: ≤ 4% worst seed, ~1% mean on this scenario).
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut ratios = Vec::new();
        for seed in 0..6 {
            let run = |shrinking_rewire: bool| {
                let planner = RrtStar::new(RrtConfig {
                    max_samples: 2_000,
                    seed,
                    shrinking_rewire,
                    ..RrtConfig::default()
                });
                let mut checker = wall_with_gap_checker();
                let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
                (result, checker.queries())
            };
            let (fixed, fixed_queries) = run(false);
            let (shrunk, shrunk_queries) = run(true);
            assert!(fixed.found() && shrunk.found(), "seed {seed} found no path");
            // Same sample stream, same tree shape — only the
            // neighbourhood (and with it parent/rewire choices) differs.
            assert_eq!(fixed.tree_size, shrunk.tree_size, "seed {seed}");
            assert!(
                (shrunk_queries as f64) < 0.8 * fixed_queries as f64,
                "seed {seed}: shrinking did not cut neighbour work \
                 ({shrunk_queries} vs {fixed_queries} queries)"
            );
            let ratio = shrunk.cost / fixed.cost;
            assert!(ratio < 1.06, "seed {seed}: path cost regressed by {ratio}");
            ratios.push(ratio);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean < 1.03, "mean path-cost ratio {mean}");
    }

    #[test]
    fn shrinking_rewire_indexed_and_linear_reference_agree() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..4 {
            let planner = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                shrinking_rewire: true,
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let mut c2 = wall_with_gap_checker();
            let indexed = planner.plan(&mut c1, start, goal, &corridor_bounds());
            let linear = planner.plan_linear_reference(&mut c2, start, goal, &corridor_bounds());
            assert_eq!(indexed, linear, "seed {seed}");
            assert_eq!(c1.queries(), c2.queries(), "seed {seed}");
        }
    }

    #[test]
    fn indexed_and_linear_reference_plans_are_identical() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..8 {
            let planner = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let mut c2 = wall_with_gap_checker();
            let indexed = planner.plan(&mut c1, start, goal, &corridor_bounds());
            let linear = planner.plan_linear_reference(&mut c2, start, goal, &corridor_bounds());
            assert_eq!(indexed, linear, "seed {seed}");
            // Both paths consumed the collision checker identically too.
            assert_eq!(c1.queries(), c2.queries(), "seed {seed}");
        }
    }

    #[test]
    fn batch_size_is_validated() {
        assert!(RrtConfig {
            batch_size: 0,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
        assert!(RrtConfig {
            batch_size: 64,
            ..RrtConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn sampling_mix_is_validated() {
        let bad_weight = SamplingMix {
            goal_region_weight: 1.2,
            ..SamplingMix::default()
        };
        assert!(bad_weight.validate().is_err());
        let bad_sum = SamplingMix {
            goal_region_weight: 0.7,
            gap_weight: 0.7,
            ..SamplingMix::default()
        };
        assert!(bad_sum.validate().is_err());
        let bad_radius = SamplingMix {
            goal_region_radius: 0.0,
            ..SamplingMix::default()
        };
        assert!(bad_radius.validate().is_err());
        assert!(SamplingMix::default().validate().is_ok());
        assert!(RrtConfig {
            sampling_mix: bad_sum,
            ..RrtConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn batched_expansion_is_bit_identical_to_single_sample() {
        // The batch loop pre-draws K targets per spatial-index flush;
        // targets are the only per-sample RNG consumption, so every
        // batch size must reproduce the K=1 search exactly — same path
        // bits, same sample count, same collision-query stream.
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..6 {
            let reference = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                batch_size: 1,
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let baseline = reference.plan(&mut c1, start, goal, &corridor_bounds());
            for batch in [7usize, 64, 4096] {
                let batched = RrtStar::new(RrtConfig {
                    seed,
                    max_samples: 800,
                    batch_size: batch,
                    ..RrtConfig::default()
                });
                let mut c2 = wall_with_gap_checker();
                let result = batched.plan(&mut c2, start, goal, &corridor_bounds());
                // The round counter is the one field that legitimately
                // depends on the batch size; everything else must match.
                let normalized = RrtResult {
                    batch_rounds: baseline.batch_rounds,
                    ..result.clone()
                };
                assert_eq!(baseline, normalized, "seed {seed} batch {batch}");
                assert_eq!(c1.queries(), c2.queries(), "seed {seed} batch {batch}");
            }
        }
    }

    #[test]
    fn enabled_mix_without_hazards_is_bit_identical_to_uniform() {
        // A bare collision checker composes no hazard boxes, so the mix
        // must fall back to the uniform sampler with an untouched RNG
        // stream — the bit-identity contract mission configs rely on
        // when they enable the flag globally.
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        for seed in 0..6 {
            let uniform = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                ..RrtConfig::default()
            });
            let mixed = RrtStar::new(RrtConfig {
                seed,
                max_samples: 800,
                sampling_mix: SamplingMix {
                    enabled: true,
                    ..SamplingMix::default()
                },
                ..RrtConfig::default()
            });
            let mut c1 = wall_with_gap_checker();
            let mut c2 = wall_with_gap_checker();
            let a = uniform.plan(&mut c1, start, goal, &corridor_bounds());
            let b = mixed.plan(&mut c2, start, goal, &corridor_bounds());
            assert_eq!(a, b, "seed {seed}");
            assert_eq!(c1.queries(), c2.queries(), "seed {seed}");
        }
    }

    #[test]
    fn warm_start_defaults_off_and_scratch_reuse_is_bit_identical() {
        let cfg = RrtConfig::default();
        assert!(!cfg.warm_start);
        assert!(!cfg.informed_sampling);
        assert_eq!(cfg.refine_samples, 0);

        let planner = RrtStar::new(RrtConfig {
            seed: 9,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut c1 = wall_with_gap_checker();
        let fresh = planner.plan(&mut c1, start, goal, &corridor_bounds());

        // Reused scratch (after a prior unrelated plan) must not perturb
        // the stream; and a WarmStart handed in with `warm_start` off is
        // ignored.
        let mut scratch = PlannerScratch::new();
        let mut c0 = wall_with_gap_checker();
        let _ = planner.plan_with_scratch(
            &mut c0,
            Vec3::new(2.0, -3.0, 5.0),
            goal,
            &corridor_bounds(),
            &mut scratch,
            None,
        );
        let warm = WarmStart {
            added_boxes: &[],
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        let mut c2 = wall_with_gap_checker();
        let reused = planner.plan_with_scratch(
            &mut c2,
            start,
            goal,
            &corridor_bounds(),
            &mut scratch,
            Some(&warm),
        );
        assert_eq!(fresh, reused);
        assert_eq!(c1.queries(), c2.queries());
        assert!(!reused.rebased);
        assert_eq!(reused.retained_nodes, 0);
    }

    fn warm_planner(seed: u64) -> RrtStar {
        RrtStar::new(RrtConfig {
            seed,
            warm_start: true,
            informed_sampling: true,
            refine_samples: 128,
            ..RrtConfig::default()
        })
    }

    #[test]
    fn warm_start_empty_delta_retains_full_tree() {
        let planner = warm_planner(3);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut checker = wall_with_gap_checker();
        let mut scratch = PlannerScratch::new();
        let cold = planner.plan_with_scratch(
            &mut checker,
            start,
            goal,
            &corridor_bounds(),
            &mut scratch,
            None,
        );
        assert!(cold.found());
        assert!(!cold.rebased);
        let epoch_cold = scratch.tree_epoch();

        let warm = WarmStart {
            added_boxes: &[],
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        let rewarmed = planner.plan_with_scratch(
            &mut checker,
            start,
            goal,
            &corridor_bounds(),
            &mut scratch,
            Some(&warm),
        );
        assert!(rewarmed.found());
        assert!(rewarmed.rebased);
        // Nothing to prune: every previous node (plus the new root) is
        // retained.
        assert_eq!(rewarmed.pruned_nodes, 0);
        assert_eq!(rewarmed.retained_nodes, cold.tree_size + 1);
        assert!(scratch.tree_epoch() > epoch_cold);

        // Invariants of the rebased tree itself, before any search mixes
        // in fresh nodes (the search's lazy rewires legitimately leave
        // descendant costs stale, so check straight after `rebase`).
        let seed = planner
            .rebase(&mut checker, start, goal, &warm, &mut scratch)
            .expect("empty delta must rebase");
        assert!(seed.rebased);
        assert_eq!(seed.pruned_nodes, 0);
        assert_arena_costs_consistent(&scratch.arena);
        let mut verify = wall_with_gap_checker();
        for id in 0..scratch.arena.len() as u32 {
            if let Some(p) = scratch.arena.parent(id) {
                assert!(
                    verify.segment_free(scratch.arena.position(p), scratch.arena.position(id)),
                    "edge {p}->{id} collides after rebase"
                );
            }
        }
    }

    fn assert_arena_costs_consistent(arena: &NodeArena) {
        for id in 0..arena.len() as u32 {
            match arena.parent(id) {
                None => assert_eq!(arena.cost(id), 0.0, "root cost"),
                Some(p) => {
                    let expect = arena.cost(p) + arena.position(p).distance(arena.position(id));
                    assert!(
                        (arena.cost(id) - expect).abs() < 1e-9,
                        "cost of node {id} inconsistent with parent {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn warm_start_cold_starts_when_anchor_out_of_range() {
        let planner = warm_planner(5);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut checker = wall_with_gap_checker();
        let mut scratch = PlannerScratch::new();
        let _ = planner.plan_with_scratch(
            &mut checker,
            Vec3::new(0.0, 0.0, 5.0),
            goal,
            &corridor_bounds(),
            &mut scratch,
            None,
        );
        // Teleport far outside the explored tree: no retained node within
        // the rebase radius, so the plan must cold-start (and say so).
        let warm = WarmStart {
            added_boxes: &[],
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        let far = Vec3::new(-200.0, 0.0, 5.0);
        let result = planner.plan_with_scratch(
            &mut checker,
            far,
            goal,
            &corridor_bounds(),
            &mut scratch,
            Some(&warm),
        );
        assert!(!result.rebased);
        assert_eq!(result.retained_nodes, 0);
    }

    #[test]
    fn warm_start_prunes_edges_cut_by_added_boxes() {
        let planner = warm_planner(7);
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut checker = wall_with_gap_checker();
        let mut scratch = PlannerScratch::new();
        let cold = planner.plan_with_scratch(
            &mut checker,
            start,
            goal,
            &corridor_bounds(),
            &mut scratch,
            None,
        );
        assert!(cold.found());
        // Slam a fat box over the old gap: edges through it must go.
        let blocker = Aabb::new(Vec3::new(18.0, 4.0, 0.0), Vec3::new(22.0, 12.0, 12.0));
        let warm = WarmStart {
            added_boxes: std::slice::from_ref(&blocker),
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        // Rebase directly (no search afterwards) so the retained tree can
        // be inspected: pruning must have bitten, every surviving edge
        // must clear the added box, and repaired costs must be exact.
        let seed = planner
            .rebase(&mut checker, start, goal, &warm, &mut scratch)
            .expect("anchor at the unchanged start must be usable");
        assert!(seed.rebased);
        assert!(seed.pruned_nodes > 0, "blocked edges must be pruned");
        assert_arena_costs_consistent(&scratch.arena);
        for id in 0..scratch.arena.len() as u32 {
            if let Some(p) = scratch.arena.parent(id) {
                assert!(
                    edge_clear(scratch.arena.position(p), scratch.arena.position(id), &warm),
                    "retained edge {p}->{id} intersects an added box"
                );
            }
        }
    }

    #[test]
    fn refine_budget_stops_search_after_first_solution() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let full = RrtStar::new(RrtConfig {
            seed: 3,
            max_samples: 4000,
            ..RrtConfig::default()
        });
        let refined = RrtStar::new(RrtConfig {
            seed: 3,
            max_samples: 4000,
            refine_samples: 64,
            ..RrtConfig::default()
        });
        let mut c1 = wall_with_gap_checker();
        let mut c2 = wall_with_gap_checker();
        let a = full.plan(&mut c1, start, goal, &corridor_bounds());
        let b = refined.plan(&mut c2, start, goal, &corridor_bounds());
        assert!(a.found() && b.found());
        assert!(
            b.samples_drawn < a.samples_drawn,
            "refine budget should stop early ({} vs {})",
            b.samples_drawn,
            a.samples_drawn
        );
    }

    #[test]
    fn informed_sampling_rejects_outside_spheroid_only_after_solution() {
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let planner = RrtStar::new(RrtConfig {
            seed: 3,
            informed_sampling: true,
            ..RrtConfig::default()
        });
        let mut checker = wall_with_gap_checker();
        let result = planner.plan(&mut checker, start, goal, &corridor_bounds());
        assert!(result.found());
        assert!(
            result.informed_rejections > 0,
            "late-phase draws should hit the spheroid filter"
        );
        // And with the flag off the counter stays zero.
        let off = RrtStar::new(RrtConfig {
            seed: 3,
            ..RrtConfig::default()
        });
        let mut c2 = wall_with_gap_checker();
        assert_eq!(
            off.plan(&mut c2, start, goal, &corridor_bounds())
                .informed_rejections,
            0
        );
    }

    #[test]
    fn scratch_reaches_steady_state_allocation() {
        let planner = RrtStar::new(RrtConfig {
            seed: 11,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let mut scratch = PlannerScratch::new();
        for _ in 0..2 {
            let mut checker = wall_with_gap_checker();
            let _ = planner.plan_with_scratch(
                &mut checker,
                start,
                goal,
                &corridor_bounds(),
                &mut scratch,
                None,
            );
        }
        let settled = scratch.grow_events();
        for _ in 0..3 {
            let mut checker = wall_with_gap_checker();
            let _ = planner.plan_with_scratch(
                &mut checker,
                start,
                goal,
                &corridor_bounds(),
                &mut scratch,
                None,
            );
        }
        assert_eq!(
            scratch.grow_events(),
            settled,
            "repeated identical plans must not grow any scratch buffer"
        );
    }
}
