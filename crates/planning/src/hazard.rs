//! Hazard-source composition: one validity context for every collision
//! consumer.
//!
//! Before this module existed, "is this point/path safe?" was answered by
//! three different code paths: the static [`CollisionChecker`] over the
//! exported planner map (used by the RRT* search), and two hand-rolled
//! sampling loops in the mission crate that walked trajectory polylines
//! against the *predicted* moving-obstacle boxes after the fact. The
//! planner therefore only ever saw the static map; predicted dynamic
//! occupancy could merely veto finished plans, so the planner converged on
//! a crossing lane by repeated rejection. This module unifies the stack:
//!
//! * [`HazardSource`] — the query interface every consumer plans and
//!   validates against (point and segment validity plus a work counter).
//!   The static [`CollisionChecker`] is one source; the composed
//!   [`HazardContext`] is another.
//! * [`PredictedHazards`] — the *soft* source: time-free axis-aligned
//!   boxes (conservative predicted occupancy of moving obstacles over a
//!   lookahead horizon) with **their own clearance margin**, an origin and
//!   a relevance range. Points farther than `max_range` from the origin
//!   are never blocked: the MAV cannot reach them within the prediction
//!   horizon, and the boxes say nothing about the world beyond it.
//! * [`PeerTrajectoryHazard`] — the *fleet* source: every other drone's
//!   committed trajectory, swept into per-segment boxes (see its type
//!   docs for the two-margin clearance semantics). A fleet driver merges
//!   its flattened boxes into the decision's predicted set, so peers
//!   reach the planner through the same composition below without a new
//!   query path.
//! * [`HazardContext`] — the composition: a point or segment is free iff
//!   the static checker frees it **and** it clears the predicted set.
//!   With an empty predicted set the context is bit-identical to the bare
//!   checker (same booleans, same query count), which is what keeps
//!   static missions byte-for-byte unchanged.
//!
//! # The contract (who composes, who patches, margin semantics)
//!
//! *Composition* happens once per decision, in the mission cycle: the
//! long-lived static checker (patched from the [`PlannerMapDelta`]
//! between exports — see [`CollisionChecker::update_map`]) is composed
//! with the decision's [`PredictedHazards`]. *Patching* mirrors the
//! static side on the predicted side:
//! [`PredictedHazards::retarget`] diffs the new per-actor box list
//! against the previous one and patches only the changed entries (and,
//! when built, their grid cells) — the predicted analogue of the
//! key-level `PlannerMapDelta` patch.
//!
//! *Margins* stay separate by design. The static checker's margin is the
//! MAV body clearance around **observed** voxels, fixed at construction
//! (it shapes the broad-phase). The predicted clearance is the softer
//! standoff from a box an actor *may* reach — the mission cycle uses
//! `planning_margin * 0.6`, the same clearance its posterior trajectory
//! validation uses, so a plan accepted by the composed context is never
//! immediately re-flagged by the very prediction it was planned against.
//!
//! Polyline *sampling* also lives here, once: the posterior checks
//! ([`polyline_clear_of_boxes`], [`first_polyline_conflict`]) and the
//! grid-accelerated [`PredictedHazards`] walks share one driver and one
//! per-point predicate, so the planner-side and validation-side notions
//! of "clear" cannot drift.
//!
//! [`PlannerMapDelta`]: roborun_perception::PlannerMapDelta

use crate::CollisionChecker;
use roborun_geom::{Aabb, FxHashMap, Vec3, VoxelKey};

/// Minimum spacing between interpolated samples on predicted-hazard
/// polyline walks (metres): a crossing actor must not slip between two
/// widely spaced waypoints, but sampling finer than a quarter metre buys
/// nothing against metre-scale boxes.
const MIN_SAMPLE_STEP: f64 = 0.25;

/// Box count at which [`PredictedHazards`] builds its candidate grid.
/// Below it a linear scan over the boxes wins (the grid's hash probe
/// costs as much as a handful of exact distance tests).
const GRID_BUILD_THRESHOLD: usize = 16;

/// Cell size of the predicted-hazard candidate grid (metres) — coarse,
/// because predicted boxes are metres wide and few cells should be
/// touched per insertion.
const GRID_CELL: f64 = 6.0;

/// A source of collision/validity answers the planner and the validators
/// query. Implemented by the static [`CollisionChecker`] and by the
/// composed [`HazardContext`]; the RRT* search and
/// [`crate::Planner::plan_with_checker`] are generic over it.
pub trait HazardSource {
    /// `true` when the point is free of every hazard the source knows.
    fn point_free(&mut self, p: Vec3) -> bool;
    /// `true` when the straight segment from `a` to `b` is free, sampled
    /// at the source's own discipline.
    fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool;
    /// Number of point queries answered so far (work metric).
    fn queries(&self) -> usize;
    /// Axis-aligned soft-hazard boxes a sampler may bias around, or the
    /// empty slice when the source has no region structure to expose
    /// (the default — the static [`CollisionChecker`] sees only voxels).
    /// Purely advisory: validity still comes from the query methods, so
    /// a stale or empty answer can never make a plan unsafe, only less
    /// focused. The composed [`HazardContext`] exposes its predicted box
    /// set, which is what drives the RRT* gap-biased sampling mix (see
    /// [`crate::rrtstar::SamplingMix`]).
    fn bias_boxes(&self) -> &[Aabb] {
        &[]
    }
}

impl HazardSource for CollisionChecker {
    fn point_free(&mut self, p: Vec3) -> bool {
        CollisionChecker::point_free(self, p)
    }

    fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        CollisionChecker::segment_free(self, a, b)
    }

    fn queries(&self) -> usize {
        CollisionChecker::queries(self)
    }
}

// ---------------------------------------------------------------------------
// The shared polyline walk + per-point predicate
// ---------------------------------------------------------------------------

/// Walks a polyline, visiting every vertex plus interpolated samples at
/// most `step` apart along each segment, until `visit` returns `false`.
/// Returns `true` when every visited sample passed. The single sampling
/// driver behind every predicted-hazard path check.
fn walk_polyline(
    points: impl IntoIterator<Item = Vec3>,
    step: f64,
    mut visit: impl FnMut(Vec3) -> bool,
) -> bool {
    let mut prev: Option<Vec3> = None;
    for p in points {
        match prev {
            None => {
                if !visit(p) {
                    return false;
                }
            }
            Some(a) => {
                let length = a.distance(p);
                let segments = (length / step).ceil().max(1.0) as usize;
                for i in 1..=segments {
                    if !visit(a.lerp(p, i as f64 / segments as f64)) {
                        return false;
                    }
                }
            }
        }
        prev = Some(p);
    }
    true
}

/// The single per-point predicate: `p` is blocked when it lies within
/// `max_range` of `origin` **and** within `clearance` of any box.
#[inline]
fn point_blocked_linear(
    boxes: &[Aabb],
    clearance: f64,
    origin: Vec3,
    max_range: f64,
    p: Vec3,
) -> bool {
    if boxes.is_empty() || p.distance(origin) > max_range {
        return false;
    }
    boxes.iter().any(|b| b.distance_to_point(p) <= clearance)
}

/// `true` when the polyline through `points` stays clear of every box by
/// more than `clearance` within `max_range` of `origin` — the posterior
/// check a finished plan (or an arrived speculation) must pass. Sampled
/// densely (at most `max(clearance, 0.25)` m apart) so a crossing actor
/// cannot slip between two waypoints.
pub fn polyline_clear_of_boxes(
    points: impl IntoIterator<Item = Vec3>,
    boxes: &[Aabb],
    clearance: f64,
    origin: Vec3,
    max_range: f64,
) -> bool {
    if boxes.is_empty() {
        return true;
    }
    walk_polyline(points, clearance.max(MIN_SAMPLE_STEP), |p| {
        !point_blocked_linear(boxes, clearance, origin, max_range, p)
    })
}

/// The first sample of the polyline through `points` that is blocked by
/// a box (within `clearance`, inside `max_range` of `origin`), or `None`
/// when the whole polyline is clear. Same sampling discipline as
/// [`polyline_clear_of_boxes`].
pub fn first_polyline_conflict(
    points: impl IntoIterator<Item = Vec3>,
    boxes: &[Aabb],
    clearance: f64,
    origin: Vec3,
    max_range: f64,
) -> Option<Vec3> {
    if boxes.is_empty() {
        return None;
    }
    let mut conflict: Option<Vec3> = None;
    walk_polyline(points, clearance.max(MIN_SAMPLE_STEP), |p| {
        if point_blocked_linear(boxes, clearance, origin, max_range, p) {
            conflict = Some(p);
            false
        } else {
            true
        }
    });
    conflict
}

// ---------------------------------------------------------------------------
// PredictedHazards
// ---------------------------------------------------------------------------

/// The candidate grid over the predicted boxes: every cell of the
/// `GRID_CELL` lattice overlapped by a box's clearance-inflated bounds
/// lists that box's index, so a point query touches one hash probe plus
/// exact distance tests instead of every box. Exact by the same argument
/// as the collision checker's broad-phase: a point within `clearance` of
/// a box lies inside its inflated bounds, hence inside a registered cell.
#[derive(Debug, Clone, PartialEq)]
struct SoftGrid {
    candidates: FxHashMap<VoxelKey, Vec<u32>>,
}

impl SoftGrid {
    fn cell_range(b: &Aabb, clearance: f64) -> (VoxelKey, VoxelKey) {
        let inflated = b.inflate(clearance);
        (
            VoxelKey::from_point(inflated.min, GRID_CELL),
            VoxelKey::from_point(inflated.max, GRID_CELL),
        )
    }

    fn build(boxes: &[Aabb], clearance: f64) -> Self {
        let mut grid = SoftGrid {
            candidates: FxHashMap::default(),
        };
        for (i, b) in boxes.iter().enumerate() {
            grid.insert_box(i as u32, b, clearance);
        }
        grid
    }

    fn insert_box(&mut self, index: u32, b: &Aabb, clearance: f64) {
        let (lo, hi) = SoftGrid::cell_range(b, clearance);
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                for z in lo.z..=hi.z {
                    self.candidates
                        .entry(VoxelKey { x, y, z })
                        .or_default()
                        .push(index);
                }
            }
        }
    }

    fn remove_box(&mut self, index: u32, b: &Aabb, clearance: f64) {
        let (lo, hi) = SoftGrid::cell_range(b, clearance);
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                for z in lo.z..=hi.z {
                    let cell = VoxelKey { x, y, z };
                    if let Some(ids) = self.candidates.get_mut(&cell) {
                        ids.retain(|&i| i != index);
                        if ids.is_empty() {
                            self.candidates.remove(&cell);
                        }
                    }
                }
            }
        }
    }

    /// Exact `any box within clearance` via the candidate cell.
    fn blocked(&self, boxes: &[Aabb], clearance: f64, p: Vec3) -> bool {
        let key = VoxelKey::from_point(p, GRID_CELL);
        let Some(ids) = self.candidates.get(&key) else {
            return false;
        };
        ids.iter()
            .any(|&i| boxes[i as usize].distance_to_point(p) <= clearance)
    }
}

/// The predicted (soft) hazard source: conservative moving-obstacle boxes
/// over a lookahead horizon, with their own clearance margin and a
/// relevance range around an origin (see the module docs for the
/// contract). Built once per mission and *retargeted* every decision —
/// an incremental patch mirroring the static checker's map delta.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedHazards {
    boxes: Vec<Aabb>,
    clearance: f64,
    origin: Vec3,
    max_range: f64,
    grid: Option<SoftGrid>,
}

impl PredictedHazards {
    /// A source with no boxes: nothing is ever blocked.
    pub fn empty() -> Self {
        PredictedHazards {
            boxes: Vec::new(),
            clearance: 0.0,
            origin: Vec3::ZERO,
            max_range: 0.0,
            grid: None,
        }
    }

    /// Creates a source over `boxes` with the given clearance margin,
    /// origin and relevance range. The candidate grid is built when the
    /// box count reaches the amortisation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `clearance < 0` or `max_range < 0`.
    pub fn new(boxes: Vec<Aabb>, clearance: f64, origin: Vec3, max_range: f64) -> Self {
        assert!(
            clearance >= 0.0,
            "clearance must be non-negative, got {clearance}"
        );
        assert!(
            max_range >= 0.0,
            "max range must be non-negative, got {max_range}"
        );
        let grid =
            (boxes.len() >= GRID_BUILD_THRESHOLD).then(|| SoftGrid::build(&boxes, clearance));
        PredictedHazards {
            boxes,
            clearance,
            origin,
            max_range,
            grid,
        }
    }

    /// `true` when the source holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The predicted boxes.
    pub fn boxes(&self) -> &[Aabb] {
        &self.boxes
    }

    /// The clearance margin (metres).
    pub fn clearance(&self) -> f64 {
        self.clearance
    }

    /// The relevance-range origin (the MAV position of the decision).
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// The relevance range (metres).
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// A copy of this source re-anchored at a new origin and relevance
    /// range — same boxes, same clearance. Used to hand a speculation
    /// worker the decision's hazards anchored at the position the
    /// speculative plan will actually start from.
    pub fn reanchored(&self, origin: Vec3, max_range: f64) -> PredictedHazards {
        PredictedHazards::new(self.boxes.clone(), self.clearance, origin, max_range)
    }

    /// Re-points the source at a fresh decision: new per-actor boxes, new
    /// origin and range. The box list is *diffed* against the previous
    /// one — unchanged entries (bitwise-equal bounds) are left alone, and
    /// the candidate grid, when built, is patched only for the entries
    /// that moved (the predicted analogue of the static checker's
    /// [`PlannerMapDelta`](roborun_perception::PlannerMapDelta) patch).
    /// A change in box *count* rebuilds from scratch, exactly like a
    /// voxel-size change drops the static broad-phase.
    pub fn retarget(&mut self, new_boxes: &[Aabb], origin: Vec3, max_range: f64) {
        assert!(
            max_range >= 0.0,
            "max range must be non-negative, got {max_range}"
        );
        self.origin = origin;
        self.max_range = max_range;
        if new_boxes.len() != self.boxes.len() {
            self.boxes = new_boxes.to_vec();
            self.grid = (self.boxes.len() >= GRID_BUILD_THRESHOLD)
                .then(|| SoftGrid::build(&self.boxes, self.clearance));
            return;
        }
        for (i, b) in new_boxes.iter().enumerate() {
            if self.boxes[i] == *b {
                continue;
            }
            if let Some(grid) = self.grid.as_mut() {
                grid.remove_box(i as u32, &self.boxes[i], self.clearance);
                grid.insert_box(i as u32, b, self.clearance);
            }
            self.boxes[i] = *b;
        }
    }

    /// `true` when `p` is within the relevance range **and** within the
    /// clearance of any box — exactly the shared linear predicate,
    /// answered through the candidate grid when built.
    pub fn point_blocked(&self, p: Vec3) -> bool {
        if self.boxes.is_empty() || p.distance(self.origin) > self.max_range {
            return false;
        }
        match &self.grid {
            Some(grid) => grid.blocked(&self.boxes, self.clearance, p),
            None => self
                .boxes
                .iter()
                .any(|b| b.distance_to_point(p) <= self.clearance),
        }
    }

    /// `true` when any box lies within `dist` of `p`, ignoring the
    /// relevance range — the *in danger* point test (is the MAV's own
    /// position inside the predicted occupancy?), which uses the full
    /// planning margin rather than the softer path clearance.
    pub fn any_within(&self, p: Vec3, dist: f64) -> bool {
        self.boxes.iter().any(|b| b.distance_to_point(p) <= dist)
    }

    /// [`polyline_clear_of_boxes`] over this source's boxes, clearance,
    /// origin and range (grid-accelerated when built).
    pub fn path_clear(&self, points: impl IntoIterator<Item = Vec3>) -> bool {
        if self.boxes.is_empty() {
            return true;
        }
        walk_polyline(points, self.clearance.max(MIN_SAMPLE_STEP), |p| {
            !self.point_blocked(p)
        })
    }

    /// [`first_polyline_conflict`] over this source's boxes, clearance,
    /// origin and range (grid-accelerated when built).
    pub fn first_conflict(&self, points: impl IntoIterator<Item = Vec3>) -> Option<Vec3> {
        if self.boxes.is_empty() {
            return None;
        }
        let mut conflict: Option<Vec3> = None;
        walk_polyline(points, self.clearance.max(MIN_SAMPLE_STEP), |p| {
            if self.point_blocked(p) {
                conflict = Some(p);
                false
            } else {
                true
            }
        });
        conflict
    }

    /// Forces the candidate grid to exist regardless of the box count.
    /// Exposed for the equivalence tests, which must exercise the grid
    /// path on small adversarial sets too.
    #[doc(hidden)]
    pub fn force_grid(&mut self) {
        if self.grid.is_none() {
            self.grid = Some(SoftGrid::build(&self.boxes, self.clearance));
        }
    }

    /// Canonical view of the candidate grid cells (sorted), or `None`
    /// while unbuilt — for the retarget-vs-rebuild conformance tests.
    #[doc(hidden)]
    pub fn grid_cells(&self) -> Option<Vec<(VoxelKey, Vec<u32>)>> {
        self.grid.as_ref().map(|grid| {
            let mut cells: Vec<(VoxelKey, Vec<u32>)> = grid
                .candidates
                .iter()
                .map(|(cell, ids)| {
                    let mut ids = ids.clone();
                    ids.sort_unstable();
                    (*cell, ids)
                })
                .collect();
            cells.sort_unstable_by_key(|(cell, _)| *cell);
            cells
        })
    }
}

// ---------------------------------------------------------------------------
// PeerTrajectoryHazard
// ---------------------------------------------------------------------------

/// Swept axis-aligned boxes covering the polyline through `points`: one
/// box per segment (the segment's bounding box), each inflated by
/// `inflation` metres. A single point yields one inflated point-box. The
/// shared sweep both fleet drivers and [`PeerTrajectoryHazard`] use to
/// turn a peer drone's committed trajectory into hazard boxes.
pub fn swept_polyline_boxes(points: &[Vec3], inflation: f64) -> Vec<Aabb> {
    match points {
        [] => Vec::new(),
        [only] => vec![Aabb::new(*only, *only).inflate(inflation)],
        _ => points
            .windows(2)
            .map(|w| Aabb::new(w[0], w[1]).inflate(inflation))
            .collect(),
    }
}

/// One peer drone's committed trajectory, kept as the polyline it was
/// published from plus the swept boxes derived from it.
#[derive(Debug, Clone, PartialEq)]
struct PeerTrack {
    polyline: Vec<Vec3>,
    boxes: Vec<Aabb>,
}

/// The *peer* hazard source of a multi-drone fleet: every other drone's
/// committed trajectory (current position plus the remainder of the
/// trajectory it is following), swept into per-segment axis-aligned
/// boxes and queried exactly like predicted moving-obstacle occupancy.
///
/// # Clearance semantics
///
/// Two margins stack, mirroring the static/predicted split of the module
/// docs:
///
/// * **`inflation`** is the *hard* body allowance baked into the stored
///   boxes — a fleet uses the sum of both drones' body radii, so a point
///   on a stored box face is exactly at centre-to-centre contact
///   distance from some point of the peer's committed polyline.
/// * **`clearance`** is the *soft* standoff applied at query time
///   (`distance_to_point(p) <= clearance`), the same role
///   [`PredictedHazards`] gives its clearance; the mission cycle uses
///   the same `planning_margin * 0.6` its posterior validation uses.
///
/// A sample is therefore rejected only while it sits within
/// `inflation + clearance` of the peer polyline, which keeps any two
/// drones that both honour their peer sources strictly farther apart
/// than body contact.
///
/// Unlike [`PredictedHazards`] there is no origin/relevance range: a
/// committed trajectory is a *promise* over the peer's whole remaining
/// flight, local by construction (a receding-horizon plan spans tens of
/// metres), so range-gating it would only let a converging corridor slip
/// through.
///
/// # Retargeting
///
/// [`PeerTrajectoryHazard::set_peer`] is the per-decision retarget and
/// mirrors [`PredictedHazards::retarget`]: a re-published polyline that
/// is bitwise identical to the stored one is skipped outright (the
/// common case — peers re-publish every decision, but a trajectory only
/// changes on the peer's replan cadence); only a changed polyline pays
/// the re-sweep. Tracks iterate in ascending peer-id order, so the
/// flattened box view — and everything planned against it — is
/// deterministic in the set of peers alone.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerTrajectoryHazard {
    /// Peer tracks in ascending id order (determinism: the flat box view
    /// must not depend on hash or insertion order).
    tracks: std::collections::BTreeMap<u64, PeerTrack>,
    /// Flattened boxes of every track, rebuilt when any track changes.
    flat: Vec<Aabb>,
    /// Candidate grid over `flat` at the query clearance — the same
    /// [`SoftGrid`] the predicted source builds, created whenever the
    /// flat view reaches [`GRID_BUILD_THRESHOLD`] boxes so fleet point
    /// queries cost one hash probe plus a few exact distance tests
    /// instead of a scan over every peer box (K peers × boxes-per-track
    /// made the scan linear in fleet size). Exact for clearance-radius
    /// queries by the candidate-cell argument on [`SoftGrid::blocked`];
    /// rebuilt wholesale on any track change (track edits are rare —
    /// per-decision point queries are the hot path).
    grid: Option<SoftGrid>,
    clearance: f64,
    inflation: f64,
    queries: usize,
}

impl PeerTrajectoryHazard {
    /// Creates an empty source with the given query-time clearance and
    /// baked-in box inflation (see the type docs for the semantics).
    ///
    /// # Panics
    ///
    /// Panics if `clearance < 0` or `inflation < 0`.
    pub fn new(clearance: f64, inflation: f64) -> Self {
        assert!(
            clearance >= 0.0,
            "clearance must be non-negative, got {clearance}"
        );
        assert!(
            inflation >= 0.0,
            "inflation must be non-negative, got {inflation}"
        );
        PeerTrajectoryHazard {
            tracks: std::collections::BTreeMap::new(),
            flat: Vec::new(),
            grid: None,
            clearance,
            inflation,
            queries: 0,
        }
    }

    /// `true` when no peer has a committed trajectory registered.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Number of peers currently registered.
    pub fn peer_count(&self) -> usize {
        self.tracks.len()
    }

    /// The query-time clearance (metres).
    pub fn clearance(&self) -> f64 {
        self.clearance
    }

    /// Publishes (or re-publishes) one peer's committed trajectory. An
    /// empty polyline removes the peer, a polyline bitwise-equal to the
    /// stored one is a no-op, anything else re-sweeps that track only.
    pub fn set_peer(&mut self, id: u64, polyline: &[Vec3]) {
        if polyline.is_empty() {
            self.remove_peer(id);
            return;
        }
        if self.tracks.get(&id).is_some_and(|t| t.polyline == polyline) {
            return;
        }
        let boxes = swept_polyline_boxes(polyline, self.inflation);
        self.tracks.insert(
            id,
            PeerTrack {
                polyline: polyline.to_vec(),
                boxes,
            },
        );
        self.rebuild_flat();
    }

    /// Removes one peer's track (a landed or lost peer).
    pub fn remove_peer(&mut self, id: u64) {
        if self.tracks.remove(&id).is_some() {
            self.rebuild_flat();
        }
    }

    fn rebuild_flat(&mut self) {
        self.flat.clear();
        for track in self.tracks.values() {
            self.flat.extend_from_slice(&track.boxes);
        }
        self.grid = (self.flat.len() >= GRID_BUILD_THRESHOLD)
            .then(|| SoftGrid::build(&self.flat, self.clearance));
    }

    /// The flattened swept boxes of every peer, in ascending peer-id
    /// order — already inflated by the body allowance, **not** by the
    /// query clearance. This is the view a driver merges into its
    /// decision's predicted-hazard set so the planner routes around
    /// peers through the existing [`HazardContext`] composition.
    pub fn boxes(&self) -> &[Aabb] {
        &self.flat
    }

    /// `true` when `p` sits within the query clearance of any peer box
    /// (the peer analogue of [`PredictedHazards::point_blocked`],
    /// without the relevance-range gate — see the type docs).
    pub fn point_blocked(&self, p: Vec3) -> bool {
        match &self.grid {
            Some(grid) => grid.blocked(&self.flat, self.clearance, p),
            None => self
                .flat
                .iter()
                .any(|b| b.distance_to_point(p) <= self.clearance),
        }
    }

    /// `true` when any peer box lies within `dist` of `p` — the *in
    /// danger* test (is this drone already inside a peer corridor?).
    pub fn any_within(&self, p: Vec3, dist: f64) -> bool {
        self.flat.iter().any(|b| b.distance_to_point(p) <= dist)
    }

    /// [`polyline_clear_of_boxes`]-style walk over the peer boxes at the
    /// source's own clearance (no range gate).
    pub fn path_clear(&self, points: impl IntoIterator<Item = Vec3>) -> bool {
        if self.flat.is_empty() {
            return true;
        }
        walk_polyline(points, self.clearance.max(MIN_SAMPLE_STEP), |p| {
            !self.point_blocked(p)
        })
    }
}

impl HazardSource for PeerTrajectoryHazard {
    fn point_free(&mut self, p: Vec3) -> bool {
        self.queries += 1;
        !self.point_blocked(p)
    }

    fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return HazardSource::point_free(self, a);
        }
        let step = self.clearance.max(MIN_SAMPLE_STEP);
        // The guarded walker form: at least one step, both endpoints
        // sampled even when the ratio degenerates.
        let steps = (length / step).ceil().max(1.0) as usize;
        for i in 0..=steps {
            if !HazardSource::point_free(self, a.lerp(b, i as f64 / steps as f64)) {
                return false;
            }
        }
        true
    }

    fn queries(&self) -> usize {
        self.queries
    }
}

// ---------------------------------------------------------------------------
// HazardContext
// ---------------------------------------------------------------------------

/// The composed hazard source: the static [`CollisionChecker`] over the
/// exported map **and** the decision's [`PredictedHazards`]. A point or
/// segment is free iff both sources free it; the static source is always
/// queried first (it is the cheaper reject in cluttered space, and it
/// keeps the static query count identical to a bare-checker run when the
/// predicted set is empty).
///
/// Planning through the composed context is what turns the predicted
/// boxes into a *costmap the planner sees*: RRT* edges that cross a
/// predicted lane fail their validity check during the search, so the
/// plan routes around the lane in one shot instead of converging on it
/// by posterior rejection.
pub struct HazardContext<'a> {
    checker: &'a mut CollisionChecker,
    predicted: &'a PredictedHazards,
    predicted_queries: usize,
}

impl<'a> HazardContext<'a> {
    /// Composes the two sources for one planning invocation.
    pub fn new(checker: &'a mut CollisionChecker, predicted: &'a PredictedHazards) -> Self {
        HazardContext {
            checker,
            predicted,
            predicted_queries: 0,
        }
    }

    /// Samples the predicted source along `a → b` at the static
    /// checker's own step, mirroring
    /// [`CollisionChecker::segment_free`]'s discipline so no lane can
    /// slip between two samples the static side would have taken.
    fn predicted_segment_clear(&mut self, a: Vec3, b: Vec3) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            self.predicted_queries += 1;
            return !self.predicted.point_blocked(a);
        }
        let step = self
            .checker
            .check_step()
            .min(self.predicted.clearance().max(MIN_SAMPLE_STEP));
        // Guarded like every other hazard walker: at least one step, so
        // both endpoints are sampled even when the ratio degenerates.
        let steps = (length / step).ceil().max(1.0) as usize;
        for i in 0..=steps {
            self.predicted_queries += 1;
            if self
                .predicted
                .point_blocked(a.lerp(b, i as f64 / steps as f64))
            {
                return false;
            }
        }
        true
    }
}

impl HazardSource for HazardContext<'_> {
    fn point_free(&mut self, p: Vec3) -> bool {
        if !CollisionChecker::point_free(self.checker, p) {
            return false;
        }
        if self.predicted.is_empty() {
            return true;
        }
        self.predicted_queries += 1;
        !self.predicted.point_blocked(p)
    }

    fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        if !CollisionChecker::segment_free(self.checker, a, b) {
            return false;
        }
        if self.predicted.is_empty() {
            return true;
        }
        self.predicted_segment_clear(a, b)
    }

    fn queries(&self) -> usize {
        CollisionChecker::queries(self.checker) + self.predicted_queries
    }

    fn bias_boxes(&self) -> &[Aabb] {
        self.predicted.boxes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_geom::SplitMix64;
    use roborun_perception::PlannerMap;

    fn lane() -> Aabb {
        Aabb::new(Vec3::new(10.0, -12.0, 0.0), Vec3::new(12.0, 12.0, 10.0))
    }

    #[test]
    fn empty_hazards_block_nothing() {
        let h = PredictedHazards::empty();
        assert!(h.is_empty());
        assert!(!h.point_blocked(Vec3::ZERO));
        assert!(h.path_clear([Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)]));
        assert_eq!(
            h.first_conflict([Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)]),
            None
        );
        assert!(!h.any_within(Vec3::ZERO, 1e9));
    }

    #[test]
    fn point_blocked_respects_clearance_and_range() {
        let h = PredictedHazards::new(vec![lane()], 0.5, Vec3::new(0.0, 0.0, 5.0), 15.0);
        // Inside the box and in range.
        assert!(h.point_blocked(Vec3::new(11.0, 0.0, 5.0)));
        // Within clearance of the face.
        assert!(h.point_blocked(Vec3::new(9.6, 0.0, 5.0)));
        // Beyond clearance.
        assert!(!h.point_blocked(Vec3::new(9.0, 0.0, 5.0)));
        // Inside the box but out of range from the origin.
        assert!(!h.point_blocked(Vec3::new(11.0, 11.0, 5.0)));
        // The in-danger test ignores the range.
        assert!(h.any_within(Vec3::new(11.0, 11.0, 5.0), 0.0));
    }

    #[test]
    fn grid_and_linear_answers_agree() {
        let mut rng = SplitMix64::new(77);
        let mut boxes = Vec::new();
        for _ in 0..40 {
            let c = Vec3::new(
                rng.uniform(-40.0, 40.0),
                rng.uniform(-40.0, 40.0),
                rng.uniform(0.0, 12.0),
            );
            let half = Vec3::new(
                rng.uniform(0.3, 3.0),
                rng.uniform(0.3, 3.0),
                rng.uniform(0.3, 5.0),
            );
            boxes.push(Aabb::from_center_half_extents(c, half));
        }
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let gridded = PredictedHazards::new(boxes.clone(), 0.45, origin, 60.0);
        assert!(
            gridded.grid_cells().is_some(),
            "40 boxes should build the grid"
        );
        for _ in 0..500 {
            let p = Vec3::new(
                rng.uniform(-50.0, 50.0),
                rng.uniform(-50.0, 50.0),
                rng.uniform(-2.0, 14.0),
            );
            assert_eq!(
                gridded.point_blocked(p),
                point_blocked_linear(&boxes, 0.45, origin, 60.0, p),
                "grid/linear mismatch at {p}"
            );
        }
    }

    #[test]
    fn retarget_patch_matches_fresh_build() {
        let mut rng = SplitMix64::new(5);
        let mk_box = |rng: &mut SplitMix64| {
            Aabb::from_center_half_extents(
                Vec3::new(
                    rng.uniform(-30.0, 30.0),
                    rng.uniform(-30.0, 30.0),
                    rng.uniform(0.0, 10.0),
                ),
                Vec3::splat(rng.uniform(0.5, 2.5)),
            )
        };
        let boxes: Vec<Aabb> = (0..24).map(|_| mk_box(&mut rng)).collect();
        let mut patched = PredictedHazards::new(boxes.clone(), 0.6, Vec3::ZERO, 100.0);
        // Several decisions: a few boxes move each time, the rest hold.
        let mut current = boxes;
        for step in 0..6 {
            for (i, b) in current.iter_mut().enumerate() {
                if (i + step) % 3 == 0 {
                    *b = mk_box(&mut rng);
                }
            }
            let origin = Vec3::new(step as f64, 0.0, 5.0);
            patched.retarget(&current, origin, 80.0);
            let fresh = PredictedHazards::new(current.clone(), 0.6, origin, 80.0);
            assert_eq!(patched.grid_cells(), fresh.grid_cells(), "step {step}");
            assert_eq!(patched.boxes(), fresh.boxes());
            for _ in 0..100 {
                let p = Vec3::new(
                    rng.uniform(-40.0, 40.0),
                    rng.uniform(-40.0, 40.0),
                    rng.uniform(-2.0, 12.0),
                );
                assert_eq!(patched.point_blocked(p), fresh.point_blocked(p));
            }
        }
        // A count change rebuilds.
        current.push(mk_box(&mut rng));
        patched.retarget(&current, Vec3::ZERO, 80.0);
        let fresh = PredictedHazards::new(current.clone(), 0.6, Vec3::ZERO, 80.0);
        assert_eq!(patched.grid_cells(), fresh.grid_cells());
    }

    #[test]
    fn polyline_helpers_match_the_hazard_walks() {
        let boxes = vec![lane()];
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut h = PredictedHazards::new(boxes.clone(), 0.5, origin, 40.0);
        h.force_grid();
        let through = [Vec3::new(0.0, 0.0, 5.0), Vec3::new(25.0, 0.0, 5.0)];
        let around = [Vec3::new(0.0, -20.0, 5.0), Vec3::new(4.0, -20.0, 5.0)];
        assert!(!h.path_clear(through));
        assert!(h.path_clear(around));
        assert_eq!(
            h.path_clear(through),
            polyline_clear_of_boxes(through, &boxes, 0.5, origin, 40.0)
        );
        assert_eq!(
            h.first_conflict(through),
            first_polyline_conflict(through, &boxes, 0.5, origin, 40.0)
        );
        assert_eq!(
            first_polyline_conflict(around, &boxes, 0.5, origin, 40.0),
            None
        );
    }

    #[test]
    fn composed_context_with_empty_predicted_is_the_bare_checker() {
        let empty = PredictedHazards::empty();
        let mut bare = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        let mut composed_inner = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        let mut ctx = HazardContext::new(&mut composed_inner, &empty);
        let a = Vec3::new(0.0, 0.0, 5.0);
        let b = Vec3::new(30.0, 4.0, 5.0);
        assert_eq!(
            HazardSource::segment_free(&mut bare, a, b),
            HazardSource::segment_free(&mut ctx, a, b)
        );
        assert_eq!(HazardSource::queries(&bare), HazardSource::queries(&ctx));
    }

    #[test]
    fn composed_context_rejects_predicted_lanes() {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let h = PredictedHazards::new(vec![lane()], 0.5, origin, 40.0);
        let mut checker = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        let mut ctx = HazardContext::new(&mut checker, &h);
        assert!(!HazardSource::segment_free(
            &mut ctx,
            origin,
            Vec3::new(25.0, 0.0, 5.0)
        ));
        assert!(HazardSource::segment_free(
            &mut ctx,
            Vec3::new(0.0, -20.0, 5.0),
            Vec3::new(8.0, -20.0, 5.0)
        ));
        assert!(!HazardSource::point_free(
            &mut ctx,
            Vec3::new(11.0, 0.0, 5.0)
        ));
        assert!(ctx.queries() > 0);
    }

    #[test]
    #[should_panic(expected = "clearance")]
    fn negative_clearance_panics() {
        let _ = PredictedHazards::new(Vec::new(), -0.1, Vec3::ZERO, 1.0);
    }

    #[test]
    fn peer_tracks_sweep_inflate_and_retarget() {
        let mut peers = PeerTrajectoryHazard::new(0.5, 1.0);
        assert!(peers.is_empty());
        let path = [Vec3::new(0.0, 0.0, 5.0), Vec3::new(10.0, 0.0, 5.0)];
        peers.set_peer(3, &path);
        assert_eq!(peers.peer_count(), 1);
        assert_eq!(peers.boxes().len(), 1);
        // The inflation bakes the body allowance into the stored box; the
        // clearance is the query-time standoff on top of it.
        assert!(peers.point_blocked(Vec3::new(5.0, 1.4, 5.0)));
        assert!(!peers.point_blocked(Vec3::new(5.0, 1.6, 5.0)));
        assert!(peers.any_within(Vec3::new(5.0, 1.9, 5.0), 1.0));
        // Re-publishing the identical polyline is a no-op...
        let before = peers.clone();
        peers.set_peer(3, &path);
        assert_eq!(peers, before);
        // ...a changed one re-sweeps the track, an empty one removes it.
        peers.set_peer(3, &[Vec3::new(0.0, 20.0, 5.0)]);
        assert!(!peers.point_blocked(Vec3::new(5.0, 1.4, 5.0)));
        peers.set_peer(3, &[]);
        assert!(peers.is_empty());
        assert!(peers.path_clear([Vec3::ZERO, Vec3::new(50.0, 0.0, 5.0)]));
    }

    #[test]
    fn peer_boxes_iterate_in_id_order() {
        let mut a = PeerTrajectoryHazard::new(0.5, 0.5);
        a.set_peer(2, &[Vec3::new(1.0, 0.0, 0.0)]);
        a.set_peer(1, &[Vec3::new(2.0, 0.0, 0.0)]);
        let mut b = PeerTrajectoryHazard::new(0.5, 0.5);
        b.set_peer(1, &[Vec3::new(2.0, 0.0, 0.0)]);
        b.set_peer(2, &[Vec3::new(1.0, 0.0, 0.0)]);
        assert_eq!(a.boxes(), b.boxes());
    }

    #[test]
    fn peer_source_blocks_a_crossing_segment() {
        let mut peers = PeerTrajectoryHazard::new(0.5, 0.5);
        peers.set_peer(
            0,
            &[Vec3::new(10.0, -12.0, 5.0), Vec3::new(10.0, 12.0, 5.0)],
        );
        assert!(!HazardSource::segment_free(
            &mut peers,
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(25.0, 0.0, 5.0)
        ));
        assert!(HazardSource::segment_free(
            &mut peers,
            Vec3::new(0.0, -20.0, 5.0),
            Vec3::new(25.0, -20.0, 5.0)
        ));
        assert!(HazardSource::queries(&peers) > 0);
    }

    #[test]
    fn peer_candidate_grid_matches_linear_scan() {
        // Enough peers with multi-segment tracks to cross the grid-build
        // threshold; every point query must agree exactly with the
        // retained linear scan over the flat box view.
        let mut peers = PeerTrajectoryHazard::new(0.45, 0.6);
        let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
        for id in 0..8u64 {
            let polyline: Vec<Vec3> = (0..4)
                .map(|_| {
                    Vec3::new(
                        rng.next_f64() * 40.0 - 5.0,
                        rng.next_f64() * 50.0 - 25.0,
                        rng.next_f64() * 11.0 + 1.0,
                    )
                })
                .collect();
            peers.set_peer(id, &polyline);
        }
        assert!(
            peers.boxes().len() >= GRID_BUILD_THRESHOLD,
            "fixture must exercise the gridded path ({} boxes)",
            peers.boxes().len()
        );
        assert!(peers.grid.is_some());
        let mut blocked = 0usize;
        for _ in 0..4000 {
            let p = Vec3::new(
                rng.next_f64() * 60.0 - 15.0,
                rng.next_f64() * 70.0 - 35.0,
                rng.next_f64() * 15.0 - 1.0,
            );
            let linear = peers
                .boxes()
                .iter()
                .any(|b| b.distance_to_point(p) <= peers.clearance());
            assert_eq!(peers.point_blocked(p), linear, "mismatch at {p:?}");
            blocked += usize::from(linear);
        }
        assert!(blocked > 0, "fixture never hit a peer corridor");
        // Shrinking the fleet below the threshold drops back to the
        // linear path without changing any answer.
        for id in 2..8u64 {
            peers.remove_peer(id);
        }
        assert!(peers.grid.is_none());
        for _ in 0..500 {
            let p = Vec3::new(
                rng.next_f64() * 60.0 - 15.0,
                rng.next_f64() * 70.0 - 35.0,
                rng.next_f64() * 15.0 - 1.0,
            );
            let linear = peers
                .boxes()
                .iter()
                .any(|b| b.distance_to_point(p) <= peers.clearance());
            assert_eq!(peers.point_blocked(p), linear);
        }
    }
}
