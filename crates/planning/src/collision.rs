//! Collision checking against the exported planner map.
//!
//! The paper's planning precision operator modifies the planner's raytracer
//! "similar to OctoMap": the distance between successive collision samples
//! along a candidate edge. Coarse steps are cheaper but can thread through
//! thin obstacles; the exported map's voxel inflation compensates, which is
//! why the governor is allowed to relax this knob in open space.
//!
//! Because the checker's clearance margin is fixed at construction, it
//! builds a margin-aware broad-phase: for every voxel cell, the exported
//! boxes whose margin-inflated bounds overlap it, mirrored by a dense
//! one-bit-per-cell occupancy mask. A point query is then a bounds test
//! plus (usually) one bit test in free space, or one hash probe plus exact
//! distance tests near obstacles — the same boolean as
//! [`PlannerMap::is_occupied`], at a fraction of the probes (the RRT*
//! search issues millions of these per plan). The broad-phase is built
//! lazily once enough queries have arrived to amortise its O(boxes) cost,
//! so trivial plans (direct connections in open space) never pay for it.
//!
//! Once built, the broad-phase survives map refreshes: every exported box
//! is exactly one voxel, so the candidate lists are addressed by the box's
//! voxel key and [`CollisionChecker::update_map`] patches them from the
//! [`PlannerMapDelta`] between successive exports (a few keys per
//! decision) instead of rebuilding from scratch.

use roborun_geom::{Aabb, FxHashMap, Vec3, VoxelKey};
use roborun_perception::{PlannerMap, PlannerMapDelta};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Maximum cell count for the dense occupancy bitset (8 MiB of bits).
const MAX_BITSET_CELLS: i64 = 1 << 26;

/// Point queries answered by the map directly before the broad-phase is
/// built; past this count the build cost is amortised.
const LAZY_BUILD_QUERIES: usize = 128;

/// The margin-aware broad-phase acceleration structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BroadPhase {
    /// Exported voxel size the structure was built for (metres).
    voxel: f64,
    /// Source box keys per voxel cell (cells overlapping a margin-inflated
    /// box). Boxes are identified by their voxel key, so delta patches can
    /// add and remove individual boxes without renumbering.
    candidates: FxHashMap<VoxelKey, Vec<VoxelKey>>,
    /// Key bounds of `candidates`; queries outside are free with no probe.
    /// Pure-removal patches leave them conservatively large (harmless:
    /// emptied cells answer free through the bitset/hash); any patch that
    /// rebuilds the bitset re-tightens them to the exact candidate cover
    /// first.
    key_min: VoxelKey,
    key_max: VoxelKey,
    /// Dense one-bit-per-cell mirror of `candidates` over the key bounds
    /// (absent when the region is too large): most free-space queries
    /// resolve with one bit test instead of a hash probe.
    bitset: Option<Vec<u64>>,
}

impl BroadPhase {
    /// Key range covered by the margin-inflated box of `source`.
    ///
    /// Any point within `margin` of the box lies inside its inflated
    /// bounds, so registering the box over this range makes the candidate
    /// list complete for the exact distance test in [`BroadPhase::occupied`].
    fn inflated_range(source: VoxelKey, voxel: f64, margin: f64) -> (VoxelKey, VoxelKey) {
        let b = Aabb::from_center_half_extents(source.center(voxel), Vec3::splat(voxel * 0.5))
            .inflate(margin);
        (
            VoxelKey::from_point(b.min, voxel),
            VoxelKey::from_point(b.max, voxel),
        )
    }

    fn build(map: &PlannerMap, margin: f64) -> Self {
        let voxel = map.voxel_size();
        let mut grid = BroadPhase {
            voxel,
            candidates: FxHashMap::default(),
            key_min: VoxelKey { x: 0, y: 0, z: 0 },
            key_max: VoxelKey {
                x: -1,
                y: -1,
                z: -1,
            },
            bitset: None,
        };
        for source in map.occupied_keys() {
            grid.insert_box(source, margin);
        }
        grid.rebuild_bitset();
        grid
    }

    /// Registers one box over its inflated key range, growing the bounds.
    /// Does not touch the bitset — callers patch or rebuild it.
    fn insert_box(&mut self, source: VoxelKey, margin: f64) {
        let (lo, hi) = BroadPhase::inflated_range(source, self.voxel, margin);
        if self.candidates.is_empty() {
            self.key_min = lo;
            self.key_max = hi;
        } else {
            self.key_min = self.key_min.componentwise_min(lo);
            self.key_max = self.key_max.componentwise_max(hi);
        }
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                for z in lo.z..=hi.z {
                    self.candidates
                        .entry(VoxelKey { x, y, z })
                        .or_default()
                        .push(source);
                }
            }
        }
    }

    /// Bit index of `key` inside the bounds, or `None` when outside.
    fn bit_index(&self, key: VoxelKey) -> Option<i64> {
        if key.x < self.key_min.x
            || key.x > self.key_max.x
            || key.y < self.key_min.y
            || key.y > self.key_max.y
            || key.z < self.key_min.z
            || key.z > self.key_max.z
        {
            return None;
        }
        let ny = self.key_max.y - self.key_min.y + 1;
        let nz = self.key_max.z - self.key_min.z + 1;
        Some(
            ((key.x - self.key_min.x) * ny + (key.y - self.key_min.y)) * nz
                + (key.z - self.key_min.z),
        )
    }

    /// Recomputes the dense bitset from the candidate cells (or drops it
    /// when the covered region exceeds [`MAX_BITSET_CELLS`]).
    fn rebuild_bitset(&mut self) {
        self.bitset = None;
        if self.candidates.is_empty() {
            return;
        }
        let nx = self.key_max.x - self.key_min.x + 1;
        let ny = self.key_max.y - self.key_min.y + 1;
        let nz = self.key_max.z - self.key_min.z + 1;
        let cells = nx.checked_mul(ny).and_then(|v| v.checked_mul(nz));
        if let Some(cells) = cells {
            if cells <= MAX_BITSET_CELLS {
                let mut bits = vec![0u64; (cells as usize).div_ceil(64)];
                for key in self.candidates.keys() {
                    let idx = self.bit_index(*key).expect("candidate cell inside bounds");
                    bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
                }
                self.bitset = Some(bits);
            }
        }
    }

    /// Patches the structure for a map refresh: removed boxes leave their
    /// candidate cells, added boxes are registered, and the bitset follows
    /// (rebuilt — over re-tightened bounds — only when an addition grows
    /// the covered region). The result answers [`BroadPhase::occupied`]
    /// exactly like a from-scratch build for the new map — after a
    /// pure-removal patch the bounds may stay conservatively larger, which
    /// only means a cleared cell costs one bit test instead of none.
    fn apply_delta(&mut self, delta: &PlannerMapDelta, margin: f64) {
        for &source in delta.removed() {
            let (lo, hi) = BroadPhase::inflated_range(source, self.voxel, margin);
            for x in lo.x..=hi.x {
                for y in lo.y..=hi.y {
                    for z in lo.z..=hi.z {
                        let cell = VoxelKey { x, y, z };
                        if let Some(ids) = self.candidates.get_mut(&cell) {
                            ids.retain(|&k| k != source);
                            if ids.is_empty() {
                                self.candidates.remove(&cell);
                                let idx = self.bit_index(cell);
                                if let (Some(bits), Some(idx)) = (self.bitset.as_mut(), idx) {
                                    bits[(idx / 64) as usize] &= !(1u64 << (idx % 64));
                                }
                            }
                        }
                    }
                }
            }
        }
        let (old_min, old_max) = (self.key_min, self.key_max);
        let was_empty = self.candidates.is_empty();
        for &source in delta.added() {
            self.insert_box(source, margin);
        }
        let grew = was_empty || self.key_min != old_min || self.key_max != old_max;
        if grew {
            // The rebuild iterates every candidate cell anyway, so first
            // re-tighten the bounds to the exact candidate cover — a
            // transient far-away voxel from an earlier export can then
            // never permanently inflate the region (which could push it
            // past MAX_BITSET_CELLS and lose the bitset for good).
            self.retighten_bounds();
            self.rebuild_bitset();
        } else if let Some(mut bits) = self.bitset.take() {
            for &source in delta.added() {
                let (lo, hi) = BroadPhase::inflated_range(source, self.voxel, margin);
                for x in lo.x..=hi.x {
                    for y in lo.y..=hi.y {
                        for z in lo.z..=hi.z {
                            let idx = self
                                .bit_index(VoxelKey { x, y, z })
                                .expect("added cell inside unchanged bounds");
                            bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
                        }
                    }
                }
            }
            self.bitset = Some(bits);
        }
        // Degraded-state recovery: if the bitset was lost (a transient
        // far-away box once pushed the region past MAX_BITSET_CELLS) and
        // this delta removed boxes, the tight cover may fit again — a
        // from-scratch build on the same map would have a bitset, so try
        // to win it back. Only the already-degraded state pays for this.
        if self.bitset.is_none() && !grew && !delta.removed().is_empty() {
            self.retighten_bounds();
            self.rebuild_bitset();
        }
    }

    /// Shrinks the key bounds to exactly cover the candidate cells — the
    /// same bounds a from-scratch build computes (every cell of every
    /// registered inflated range is a candidate key, so the cell cover and
    /// the range cover coincide).
    fn retighten_bounds(&mut self) {
        let mut iter = self.candidates.keys();
        let Some(first) = iter.next() else {
            self.key_min = VoxelKey { x: 0, y: 0, z: 0 };
            self.key_max = VoxelKey {
                x: -1,
                y: -1,
                z: -1,
            };
            return;
        };
        let (mut lo, mut hi) = (*first, *first);
        for k in iter {
            lo = lo.componentwise_min(*k);
            hi = hi.componentwise_max(*k);
        }
        self.key_min = lo;
        self.key_max = hi;
    }

    /// `true` when `p` lies within `margin` of any box — exactly
    /// `map.is_occupied(p, margin)`, accelerated.
    fn occupied(&self, p: Vec3, margin: f64) -> bool {
        let key = VoxelKey::from_point(p, self.voxel);
        let Some(idx) = self.bit_index(key) else {
            return false;
        };
        if let Some(bits) = &self.bitset {
            if bits[(idx / 64) as usize] & (1u64 << (idx % 64)) == 0 {
                return false;
            }
        }
        let Some(ids) = self.candidates.get(&key) else {
            return false;
        };
        let voxel = self.voxel;
        ids.iter().any(|&source| {
            Aabb::from_center_half_extents(source.center(voxel), Vec3::splat(voxel * 0.5))
                .distance_to_point(p)
                <= margin
        })
    }
}

/// Collision checker over a [`PlannerMap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollisionChecker {
    map: PlannerMap,
    /// Clearance margin added around obstacles (the MAV body radius).
    margin: f64,
    /// Sample spacing along checked segments (metres) — the planning
    /// precision knob.
    check_step: f64,
    /// Number of point queries performed since construction (work metric).
    queries: usize,
    /// Broad-phase, built lazily after [`LAZY_BUILD_QUERIES`] queries.
    ///
    /// Held behind an [`Arc`] so that cloning a checker whose broad-phase
    /// is already built shares the structure in O(1) instead of deep-
    /// copying the candidate map: N missions planned against the same
    /// environment prebuild once and clone per mission (the fleet /
    /// mission-service pattern). The share is copy-on-write —
    /// [`CollisionChecker::update_map`] patches through
    /// [`Arc::make_mut`], so the first per-mission delta detaches a
    /// private copy and siblings are never affected.
    broad_phase: Option<Arc<BroadPhase>>,
}

impl CollisionChecker {
    /// Creates a checker.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 0` or `check_step <= 0`.
    pub fn new(map: PlannerMap, margin: f64, check_step: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        assert!(
            check_step > 0.0,
            "check step must be positive, got {check_step}"
        );
        CollisionChecker {
            map,
            margin,
            check_step,
            queries: 0,
            broad_phase: None,
        }
    }

    /// The planner map being checked against.
    pub fn map(&self) -> &PlannerMap {
        &self.map
    }

    /// Clearance margin (metres).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Sample spacing (metres).
    pub fn check_step(&self) -> f64 {
        self.check_step
    }

    /// Number of point queries performed so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// `true` when the point is free of obstacles (with margin).
    ///
    /// Early queries delegate to the map's voxel-neighbourhood lookup; once
    /// enough queries have arrived to amortise it, a broad-phase is built
    /// and a query becomes a bounds test (and usually one bit test) in free
    /// space, or one hash probe plus exact distance tests near obstacles.
    /// Always returns the same boolean as
    /// `!self.map().is_occupied(p, self.margin())`.
    pub fn point_free(&mut self, p: Vec3) -> bool {
        self.queries += 1;
        if self.broad_phase.is_none() {
            if self.queries < LAZY_BUILD_QUERIES {
                return !self.map.is_occupied(p, self.margin);
            }
            self.broad_phase = Some(Arc::new(BroadPhase::build(&self.map, self.margin)));
        }
        let broad_phase = self.broad_phase.as_ref().expect("broad phase just built");
        !broad_phase.occupied(p, self.margin)
    }

    /// Builds the broad-phase immediately instead of waiting for the lazy
    /// query threshold — callers that keep the checker across many plans
    /// (the mission runner) pay the build once and patch it afterwards.
    ///
    /// Because the built structure sits behind an [`Arc`], cloning the
    /// checker afterwards shares it in O(1): a fleet or mission service
    /// prebuilds one static checker per environment and hands each
    /// mission a clone, paying one build for N missions. Per-clone
    /// [`CollisionChecker::update_map`] patches detach privately
    /// (copy-on-write), so sharing never changes any answer.
    pub fn prebuild_broad_phase(&mut self) {
        if self.broad_phase.is_none() {
            self.broad_phase = Some(Arc::new(BroadPhase::build(&self.map, self.margin)));
        }
    }

    /// `true` when `self` and `other` still share one broad-phase
    /// allocation (neither has detached with a copy-on-write patch).
    /// Exposed for the cross-mission-caching tests and benches.
    #[doc(hidden)]
    pub fn shares_broad_phase_with(&self, other: &CollisionChecker) -> bool {
        match (&self.broad_phase, &other.broad_phase) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Replaces the checked map with a fresh export, patching the built
    /// broad-phase from the key delta between the two exports instead of
    /// rebuilding it (~10 ms on a 7k-box map). When the exports are
    /// incompatible (different voxel size — a precision-knob change), the
    /// broad-phase is dropped and rebuilt lazily.
    pub fn update_map(&mut self, new_map: PlannerMap) {
        if let Some(grid) = self.broad_phase.as_mut() {
            match new_map.delta_from(&self.map) {
                // `make_mut` detaches a private copy when the structure
                // is shared with sibling missions (copy-on-write) and
                // patches in place when uniquely owned.
                Some(delta) => Arc::make_mut(grid).apply_delta(&delta, self.margin),
                None => self.broad_phase = None,
            }
        }
        self.map = new_map;
    }

    /// Changes the segment sample spacing (the planning precision knob) —
    /// the governor retunes it every decision while the margin, and with it
    /// the broad-phase, stays fixed.
    ///
    /// # Panics
    ///
    /// Panics if `check_step <= 0`.
    pub fn set_check_step(&mut self, check_step: f64) {
        assert!(
            check_step > 0.0,
            "check step must be positive, got {check_step}"
        );
        self.check_step = check_step;
    }

    /// Canonical view of the broad-phase candidate cells (each cell's
    /// source keys sorted), or `None` while unbuilt. Exposed for the
    /// incremental-update conformance tests, which assert a patched grid
    /// matches a from-scratch rebuild cell for cell.
    #[doc(hidden)]
    pub fn broad_phase_cells(&self) -> Option<Vec<(VoxelKey, Vec<VoxelKey>)>> {
        self.broad_phase.as_ref().map(|grid| {
            let mut cells: Vec<(VoxelKey, Vec<VoxelKey>)> = grid
                .candidates
                .iter()
                .map(|(cell, ids)| {
                    let mut ids = ids.clone();
                    ids.sort_unstable();
                    (*cell, ids)
                })
                .collect();
            cells.sort_unstable_by_key(|(cell, _)| *cell);
            cells
        })
    }

    /// Linear reference for [`CollisionChecker::point_free`], delegating to
    /// the map's voxel-neighbourhood query — retained for equivalence tests.
    pub fn point_free_reference(map: &PlannerMap, p: Vec3, margin: f64) -> bool {
        !map.is_occupied(p, margin)
    }

    /// Fills `out` with one obstacle box per voxel key the delta *added*
    /// (the same boxes [`CollisionChecker::path_clear_of_added`] checks
    /// against). This is the prune set handed to the planner's warm-start
    /// rebase — see `roborun-planning`'s `rrtstar` module docs.
    pub fn added_boxes_into(delta: &PlannerMapDelta, out: &mut Vec<Aabb>) {
        out.clear();
        let voxel = delta.voxel_size();
        let half = Vec3::splat(voxel * 0.5);
        out.extend(
            delta
                .added()
                .iter()
                .map(|key| Aabb::from_center_half_extents(key.center(voxel), half)),
        );
    }

    /// Incremental re-validation of a path planned against an older
    /// export: `true` when the polyline through `points` stays strictly
    /// more than `clearance` away from every voxel the `delta` **added**,
    /// sampled every `sample_step` metres along each consecutive pair
    /// (the same sampling discipline as [`CollisionChecker::segment_free`],
    /// so a voxel that would fail a synchronous re-plan's edge check
    /// cannot slip between two waypoints here).
    ///
    /// A plan that was collision-free against the snapshot export can only
    /// be invalidated by voxels the delta added — removed voxels free
    /// space — so re-checking the touched keys alone is exact for the
    /// patched map. This is the validation half of the plan-ahead
    /// contract (see `roborun-mission`'s `cycle` module): a speculative
    /// trajectory is adopted only when this check passes against the
    /// delta accumulated since its snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `sample_step <= 0`.
    pub fn path_clear_of_added(
        delta: &PlannerMapDelta,
        points: impl IntoIterator<Item = Vec3>,
        clearance: f64,
        sample_step: f64,
    ) -> bool {
        assert!(
            sample_step > 0.0,
            "sample step must be positive, got {sample_step}"
        );
        let added = delta.added();
        if added.is_empty() {
            return true;
        }
        let voxel = delta.voxel_size();
        let half = Vec3::splat(voxel * 0.5);
        let boxes: Vec<Aabb> = added
            .iter()
            .map(|key| Aabb::from_center_half_extents(key.center(voxel), half))
            .collect();
        let clear = |p: Vec3| boxes.iter().all(|b| b.distance_to_point(p) > clearance);
        let mut prev: Option<Vec3> = None;
        for p in points {
            match prev {
                None => {
                    if !clear(p) {
                        return false;
                    }
                }
                Some(a) => {
                    let length = a.distance(p);
                    if length < 1e-9 {
                        if !clear(p) {
                            return false;
                        }
                    } else {
                        // `.max(1.0)` guards the degenerate-step edge
                        // cases (a non-finite ratio truncating to zero)
                        // so the far endpoint is always sampled — the
                        // same guarded form as every other hazard walker.
                        let steps = (length / sample_step).ceil().max(1.0) as usize;
                        // `a` was cleared as the previous endpoint.
                        for i in 1..=steps {
                            let t = i as f64 / steps as f64;
                            if !clear(a.lerp(p, t)) {
                                return false;
                            }
                        }
                    }
                }
            }
            prev = Some(p);
        }
        true
    }

    /// `true` when the straight segment from `a` to `b` stays free of
    /// obstacles, sampled every `check_step` metres.
    pub fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.point_free(a);
        }
        // Guarded like every other hazard walker: at least one step, so
        // both endpoints are sampled even when the ratio degenerates.
        let steps = (length / self.check_step).ceil().max(1.0) as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            if !self.point_free(a.lerp(b, t)) {
                return false;
            }
        }
        true
    }

    /// `true` when every consecutive pair of waypoints is connected by a
    /// free segment.
    pub fn path_free(&mut self, waypoints: &[Vec3]) -> bool {
        if waypoints.is_empty() {
            return true;
        }
        if waypoints.len() == 1 {
            return self.point_free(waypoints[0]);
        }
        waypoints.windows(2).all(|w| self.segment_free(w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_perception::{ExportConfig, OccupancyMap, PointCloud};

    fn map_with_wall() -> PlannerMap {
        let mut map = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(10.0, y as f64 * 0.3, z as f64 * 0.3)))
            .collect();
        map.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, origin))
    }

    #[test]
    fn free_and_occupied_points() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(checker.point_free(Vec3::new(0.0, 0.0, 5.0)));
        assert!(!checker.point_free(Vec3::new(10.0, 0.0, 5.0)));
        // Margin inflates obstacles.
        assert!(!checker.point_free(Vec3::new(9.5, 0.0, 5.0)));
        assert!(checker.queries() >= 3);
    }

    #[test]
    fn segment_through_wall_is_blocked() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(!checker.segment_free(Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)));
        // A segment parallel to the wall on the near side is free.
        assert!(checker.segment_free(Vec3::new(0.0, -5.0, 5.0), Vec3::new(0.0, 5.0, 5.0)));
        // Degenerate segment behaves like a point query.
        assert!(checker.segment_free(Vec3::new(1.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 5.0)));
    }

    #[test]
    fn path_check_covers_all_segments() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        let around = vec![
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(5.0, -10.0, 5.0),
            Vec3::new(15.0, -10.0, 5.0),
            Vec3::new(20.0, 0.0, 5.0),
        ];
        assert!(checker.path_free(&around));
        let through = vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)];
        assert!(!checker.path_free(&through));
        assert!(checker.path_free(&[]));
        assert!(checker.path_free(&[Vec3::new(0.0, 0.0, 5.0)]));
    }

    #[test]
    fn coarser_step_does_fewer_queries() {
        let mut fine = CollisionChecker::new(map_with_wall(), 0.45, 0.1);
        let mut coarse = CollisionChecker::new(map_with_wall(), 0.45, 2.0);
        let a = Vec3::new(0.0, -5.0, 5.0);
        let b = Vec3::new(0.0, 5.0, 5.0);
        assert!(fine.segment_free(a, b));
        assert!(coarse.segment_free(a, b));
        assert!(fine.queries() > coarse.queries());
    }

    #[test]
    fn broad_phase_matches_map_query() {
        let map = map_with_wall();
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
        // Dense probe lattice across the wall region, including points far
        // from any box.
        for xi in 0..40 {
            for yi in -12..=12 {
                for zi in 0..14 {
                    let p = Vec3::new(xi as f64 * 0.5, yi as f64 * 0.5, zi as f64 * 0.5);
                    assert_eq!(
                        checker.point_free(p),
                        CollisionChecker::point_free_reference(&map, p, 0.45),
                        "mismatch at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_update_matches_fresh_rebuild() {
        let mut base = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(10.0, y as f64 * 0.3, z as f64 * 0.3)))
            .collect();
        base.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        let map1 = PlannerMap::export(&base, &ExportConfig::new(0.3, 1e9, origin));
        // A second scan adds a nearer blob and the retain radius could have
        // dropped voxels — exercise both sides of the delta.
        base.integrate_cloud(
            &PointCloud::new(
                origin,
                vec![Vec3::new(4.0, 1.0, 5.0), Vec3::new(4.3, 1.0, 5.0)],
            ),
            0.3,
        );
        let map2 = PlannerMap::export(&base, &ExportConfig::new(0.3, 1e9, origin));
        assert!(!map2.delta_from(&map1).unwrap().is_empty());

        let mut patched = CollisionChecker::new(map1, 0.45, 0.3);
        patched.prebuild_broad_phase();
        patched.update_map(map2.clone());
        let mut rebuilt = CollisionChecker::new(map2.clone(), 0.45, 0.3);
        rebuilt.prebuild_broad_phase();
        assert_eq!(patched.broad_phase_cells(), rebuilt.broad_phase_cells());
        for xi in 0..40 {
            for yi in -12..=12 {
                let p = Vec3::new(xi as f64 * 0.5, yi as f64 * 0.5, 5.0);
                assert_eq!(
                    patched.point_free(p),
                    CollisionChecker::point_free_reference(&map2, p, 0.45),
                    "patched checker mismatch at {p}"
                );
            }
        }
    }

    #[test]
    fn update_map_with_different_voxel_size_rebuilds() {
        let map_fine = map_with_wall();
        let mut base = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        base.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(10.0, 0.0, 5.0)]),
            0.3,
        );
        let map_coarse = PlannerMap::export(&base, &ExportConfig::new(0.6, 1e9, origin));
        let mut checker = CollisionChecker::new(map_fine, 0.45, 0.3);
        checker.prebuild_broad_phase();
        checker.update_map(map_coarse.clone());
        // The broad-phase was dropped (incompatible voxel size) and answers
        // still match the reference once rebuilt.
        for xi in 0..30 {
            let p = Vec3::new(xi as f64 * 0.7, 0.3, 5.0);
            assert_eq!(
                checker.point_free(p),
                CollisionChecker::point_free_reference(&map_coarse, p, 0.45)
            );
        }
    }

    #[test]
    fn path_clear_of_added_matches_the_patched_map() {
        // Snapshot: a wall at x = 10. Fresh: the wall plus a new blob near
        // the origin. A straight path towards the blob must fail the
        // incremental re-check exactly when the fresh map blocks it.
        let snapshot = map_with_wall();
        let mut evolved = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(10.0, y as f64 * 0.3, z as f64 * 0.3)))
            .collect();
        evolved.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        evolved.integrate_cloud(
            &PointCloud::new(origin, vec![Vec3::new(4.0, 0.0, 5.0)]),
            0.3,
        );
        let fresh = PlannerMap::export(&evolved, &ExportConfig::new(0.3, 1e9, origin));
        let delta = fresh.delta_from(&snapshot).unwrap();
        assert!(!delta.added().is_empty());

        // A path through the new blob is caught by the added keys alone.
        let through_blob = [Vec3::new(0.0, 0.0, 5.0), Vec3::new(4.0, 0.05, 5.0)];
        assert!(!CollisionChecker::path_clear_of_added(
            &delta,
            through_blob,
            0.27,
            0.3
        ));
        // The segment between two widely spaced waypoints is sampled: a
        // blob that both endpoints clear by metres still invalidates the
        // path that crosses it.
        let spanning = [Vec3::new(0.0, 0.0, 5.0), Vec3::new(8.0, 0.0, 5.0)];
        assert!(!CollisionChecker::path_clear_of_added(
            &delta, spanning, 0.27, 0.3
        ));
        // A path clear of the blob passes even though it grazes the old
        // wall's neighbourhood — pre-existing voxels are the snapshot's
        // responsibility, not the delta's.
        let clear = [Vec3::new(0.0, -5.0, 5.0), Vec3::new(2.0, -5.0, 5.0)];
        assert!(CollisionChecker::path_clear_of_added(
            &delta, clear, 0.27, 0.3
        ));
        // An empty delta accepts everything.
        let empty = fresh.delta_from(&fresh).unwrap();
        assert!(CollisionChecker::path_clear_of_added(
            &empty,
            through_blob,
            0.27,
            0.3
        ));
    }

    #[test]
    fn empty_map_is_all_free() {
        let mut checker = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        assert!(checker.segment_free(Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "check step")]
    fn zero_step_panics() {
        let _ = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.0);
    }
}
