//! Collision checking against the exported planner map.
//!
//! The paper's planning precision operator modifies the planner's raytracer
//! "similar to OctoMap": the distance between successive collision samples
//! along a candidate edge. Coarse steps are cheaper but can thread through
//! thin obstacles; the exported map's voxel inflation compensates, which is
//! why the governor is allowed to relax this knob in open space.
//!
//! Because the checker's clearance margin is fixed at construction, it
//! builds a margin-aware broad-phase: for every voxel cell, the exported
//! boxes whose margin-inflated bounds overlap it, mirrored by a dense
//! one-bit-per-cell occupancy mask. A point query is then a bounds test
//! plus (usually) one bit test in free space, or one hash probe plus exact
//! distance tests near obstacles — the same boolean as
//! [`PlannerMap::is_occupied`], at a fraction of the probes (the RRT*
//! search issues millions of these per plan). The broad-phase is built
//! lazily once enough queries have arrived to amortise its O(boxes) cost,
//! so trivial plans (direct connections in open space) never pay for it.

use roborun_geom::{FxHashMap, Vec3, VoxelKey};
use roborun_perception::PlannerMap;
use serde::{Deserialize, Serialize};

/// Maximum cell count for the dense occupancy bitset (8 MiB of bits).
const MAX_BITSET_CELLS: i64 = 1 << 26;

/// Point queries answered by the map directly before the broad-phase is
/// built; past this count the build cost is amortised.
const LAZY_BUILD_QUERIES: usize = 128;

/// The margin-aware broad-phase acceleration structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BroadPhase {
    /// Box indices per voxel cell (cells overlapping a margin-inflated box).
    candidates: FxHashMap<VoxelKey, Vec<u32>>,
    /// Key bounds of `candidates`; queries outside are free with no probe.
    key_min: VoxelKey,
    key_max: VoxelKey,
    /// Dense one-bit-per-cell mirror of `candidates` over the key bounds
    /// (absent when the region is too large): most free-space queries
    /// resolve with one bit test instead of a hash probe.
    bitset: Option<Vec<u64>>,
}

impl BroadPhase {
    fn build(map: &PlannerMap, margin: f64) -> Self {
        let voxel = map.voxel_size();
        let mut candidates: FxHashMap<VoxelKey, Vec<u32>> = FxHashMap::default();
        let mut key_min = VoxelKey { x: 0, y: 0, z: 0 };
        let mut key_max = VoxelKey {
            x: -1,
            y: -1,
            z: -1,
        };
        for (i, b) in map.boxes().iter().enumerate() {
            // Any point within `margin` of the box lies inside its inflated
            // bounds, so registering the box over the inflated key range
            // makes the candidate list complete for the exact test below.
            let inflated = b.inflate(margin);
            let lo = VoxelKey::from_point(inflated.min, voxel);
            let hi = VoxelKey::from_point(inflated.max, voxel);
            if i == 0 {
                key_min = lo;
                key_max = hi;
            } else {
                key_min = VoxelKey {
                    x: key_min.x.min(lo.x),
                    y: key_min.y.min(lo.y),
                    z: key_min.z.min(lo.z),
                };
                key_max = VoxelKey {
                    x: key_max.x.max(hi.x),
                    y: key_max.y.max(hi.y),
                    z: key_max.z.max(hi.z),
                };
            }
            for x in lo.x..=hi.x {
                for y in lo.y..=hi.y {
                    for z in lo.z..=hi.z {
                        candidates
                            .entry(VoxelKey { x, y, z })
                            .or_default()
                            .push(i as u32);
                    }
                }
            }
        }
        let bitset = if candidates.is_empty() {
            None
        } else {
            let nx = key_max.x - key_min.x + 1;
            let ny = key_max.y - key_min.y + 1;
            let nz = key_max.z - key_min.z + 1;
            let cells = nx.checked_mul(ny).and_then(|v| v.checked_mul(nz));
            match cells {
                Some(cells) if cells <= MAX_BITSET_CELLS => {
                    let mut bits = vec![0u64; (cells as usize).div_ceil(64)];
                    for key in candidates.keys() {
                        let idx = ((key.x - key_min.x) * ny + (key.y - key_min.y)) * nz
                            + (key.z - key_min.z);
                        bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
                    }
                    Some(bits)
                }
                _ => None,
            }
        };
        BroadPhase {
            candidates,
            key_min,
            key_max,
            bitset,
        }
    }

    /// `true` when `p` lies within `margin` of any box — exactly
    /// `map.is_occupied(p, margin)`, accelerated.
    fn occupied(&self, map: &PlannerMap, p: Vec3, margin: f64) -> bool {
        let key = VoxelKey::from_point(p, map.voxel_size());
        if key.x < self.key_min.x
            || key.x > self.key_max.x
            || key.y < self.key_min.y
            || key.y > self.key_max.y
            || key.z < self.key_min.z
            || key.z > self.key_max.z
        {
            return false;
        }
        if let Some(bits) = &self.bitset {
            let ny = self.key_max.y - self.key_min.y + 1;
            let nz = self.key_max.z - self.key_min.z + 1;
            let idx = ((key.x - self.key_min.x) * ny + (key.y - self.key_min.y)) * nz
                + (key.z - self.key_min.z);
            if bits[(idx / 64) as usize] & (1u64 << (idx % 64)) == 0 {
                return false;
            }
        }
        let Some(ids) = self.candidates.get(&key) else {
            return false;
        };
        let boxes = map.boxes();
        ids.iter()
            .any(|&i| boxes[i as usize].distance_to_point(p) <= margin)
    }
}

/// Collision checker over a [`PlannerMap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollisionChecker {
    map: PlannerMap,
    /// Clearance margin added around obstacles (the MAV body radius).
    margin: f64,
    /// Sample spacing along checked segments (metres) — the planning
    /// precision knob.
    check_step: f64,
    /// Number of point queries performed since construction (work metric).
    queries: usize,
    /// Broad-phase, built lazily after [`LAZY_BUILD_QUERIES`] queries.
    broad_phase: Option<BroadPhase>,
}

impl CollisionChecker {
    /// Creates a checker.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 0` or `check_step <= 0`.
    pub fn new(map: PlannerMap, margin: f64, check_step: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        assert!(
            check_step > 0.0,
            "check step must be positive, got {check_step}"
        );
        CollisionChecker {
            map,
            margin,
            check_step,
            queries: 0,
            broad_phase: None,
        }
    }

    /// The planner map being checked against.
    pub fn map(&self) -> &PlannerMap {
        &self.map
    }

    /// Clearance margin (metres).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Sample spacing (metres).
    pub fn check_step(&self) -> f64 {
        self.check_step
    }

    /// Number of point queries performed so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// `true` when the point is free of obstacles (with margin).
    ///
    /// Early queries delegate to the map's voxel-neighbourhood lookup; once
    /// enough queries have arrived to amortise it, a broad-phase is built
    /// and a query becomes a bounds test (and usually one bit test) in free
    /// space, or one hash probe plus exact distance tests near obstacles.
    /// Always returns the same boolean as
    /// `!self.map().is_occupied(p, self.margin())`.
    pub fn point_free(&mut self, p: Vec3) -> bool {
        self.queries += 1;
        if self.broad_phase.is_none() {
            if self.queries < LAZY_BUILD_QUERIES {
                return !self.map.is_occupied(p, self.margin);
            }
            self.broad_phase = Some(BroadPhase::build(&self.map, self.margin));
        }
        let broad_phase = self.broad_phase.as_ref().expect("broad phase just built");
        !broad_phase.occupied(&self.map, p, self.margin)
    }

    /// Linear reference for [`CollisionChecker::point_free`], delegating to
    /// the map's voxel-neighbourhood query — retained for equivalence tests.
    pub fn point_free_reference(map: &PlannerMap, p: Vec3, margin: f64) -> bool {
        !map.is_occupied(p, margin)
    }

    /// `true` when the straight segment from `a` to `b` stays free of
    /// obstacles, sampled every `check_step` metres.
    pub fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.point_free(a);
        }
        let steps = (length / self.check_step).ceil() as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            if !self.point_free(a.lerp(b, t)) {
                return false;
            }
        }
        true
    }

    /// `true` when every consecutive pair of waypoints is connected by a
    /// free segment.
    pub fn path_free(&mut self, waypoints: &[Vec3]) -> bool {
        if waypoints.is_empty() {
            return true;
        }
        if waypoints.len() == 1 {
            return self.point_free(waypoints[0]);
        }
        waypoints.windows(2).all(|w| self.segment_free(w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_perception::{ExportConfig, OccupancyMap, PointCloud};

    fn map_with_wall() -> PlannerMap {
        let mut map = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(10.0, y as f64 * 0.3, z as f64 * 0.3)))
            .collect();
        map.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, origin))
    }

    #[test]
    fn free_and_occupied_points() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(checker.point_free(Vec3::new(0.0, 0.0, 5.0)));
        assert!(!checker.point_free(Vec3::new(10.0, 0.0, 5.0)));
        // Margin inflates obstacles.
        assert!(!checker.point_free(Vec3::new(9.5, 0.0, 5.0)));
        assert!(checker.queries() >= 3);
    }

    #[test]
    fn segment_through_wall_is_blocked() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(!checker.segment_free(Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)));
        // A segment parallel to the wall on the near side is free.
        assert!(checker.segment_free(Vec3::new(0.0, -5.0, 5.0), Vec3::new(0.0, 5.0, 5.0)));
        // Degenerate segment behaves like a point query.
        assert!(checker.segment_free(Vec3::new(1.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 5.0)));
    }

    #[test]
    fn path_check_covers_all_segments() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        let around = vec![
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(5.0, -10.0, 5.0),
            Vec3::new(15.0, -10.0, 5.0),
            Vec3::new(20.0, 0.0, 5.0),
        ];
        assert!(checker.path_free(&around));
        let through = vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)];
        assert!(!checker.path_free(&through));
        assert!(checker.path_free(&[]));
        assert!(checker.path_free(&[Vec3::new(0.0, 0.0, 5.0)]));
    }

    #[test]
    fn coarser_step_does_fewer_queries() {
        let mut fine = CollisionChecker::new(map_with_wall(), 0.45, 0.1);
        let mut coarse = CollisionChecker::new(map_with_wall(), 0.45, 2.0);
        let a = Vec3::new(0.0, -5.0, 5.0);
        let b = Vec3::new(0.0, 5.0, 5.0);
        assert!(fine.segment_free(a, b));
        assert!(coarse.segment_free(a, b));
        assert!(fine.queries() > coarse.queries());
    }

    #[test]
    fn broad_phase_matches_map_query() {
        let map = map_with_wall();
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
        // Dense probe lattice across the wall region, including points far
        // from any box.
        for xi in 0..40 {
            for yi in -12..=12 {
                for zi in 0..14 {
                    let p = Vec3::new(xi as f64 * 0.5, yi as f64 * 0.5, zi as f64 * 0.5);
                    assert_eq!(
                        checker.point_free(p),
                        CollisionChecker::point_free_reference(&map, p, 0.45),
                        "mismatch at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_map_is_all_free() {
        let mut checker = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        assert!(checker.segment_free(Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "check step")]
    fn zero_step_panics() {
        let _ = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.0);
    }
}
