//! Collision checking against the exported planner map.
//!
//! The paper's planning precision operator modifies the planner's raytracer
//! "similar to OctoMap": the distance between successive collision samples
//! along a candidate edge. Coarse steps are cheaper but can thread through
//! thin obstacles; the exported map's voxel inflation compensates, which is
//! why the governor is allowed to relax this knob in open space.

use roborun_perception::PlannerMap;
use roborun_geom::Vec3;
use serde::{Deserialize, Serialize};

/// Collision checker over a [`PlannerMap`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollisionChecker {
    map: PlannerMap,
    /// Clearance margin added around obstacles (the MAV body radius).
    margin: f64,
    /// Sample spacing along checked segments (metres) — the planning
    /// precision knob.
    check_step: f64,
    /// Number of point queries performed since construction (work metric).
    queries: usize,
}

impl CollisionChecker {
    /// Creates a checker.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 0` or `check_step <= 0`.
    pub fn new(map: PlannerMap, margin: f64, check_step: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        assert!(check_step > 0.0, "check step must be positive, got {check_step}");
        CollisionChecker {
            map,
            margin,
            check_step,
            queries: 0,
        }
    }

    /// The planner map being checked against.
    pub fn map(&self) -> &PlannerMap {
        &self.map
    }

    /// Clearance margin (metres).
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Sample spacing (metres).
    pub fn check_step(&self) -> f64 {
        self.check_step
    }

    /// Number of point queries performed so far.
    pub fn queries(&self) -> usize {
        self.queries
    }

    /// `true` when the point is free of obstacles (with margin).
    pub fn point_free(&mut self, p: Vec3) -> bool {
        self.queries += 1;
        !self.map.is_occupied(p, self.margin)
    }

    /// `true` when the straight segment from `a` to `b` stays free of
    /// obstacles, sampled every `check_step` metres.
    pub fn segment_free(&mut self, a: Vec3, b: Vec3) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.point_free(a);
        }
        let steps = (length / self.check_step).ceil() as usize;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            if !self.point_free(a.lerp(b, t)) {
                return false;
            }
        }
        true
    }

    /// `true` when every consecutive pair of waypoints is connected by a
    /// free segment.
    pub fn path_free(&mut self, waypoints: &[Vec3]) -> bool {
        if waypoints.is_empty() {
            return true;
        }
        if waypoints.len() == 1 {
            return self.point_free(waypoints[0]);
        }
        waypoints
            .windows(2)
            .collect::<Vec<_>>()
            .into_iter()
            .all(|w| self.segment_free(w[0], w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_perception::{ExportConfig, OccupancyMap, PointCloud};

    fn map_with_wall() -> PlannerMap {
        let mut map = OccupancyMap::new(0.3);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let points: Vec<Vec3> = (-20..=20)
            .flat_map(|y| (0..20).map(move |z| Vec3::new(10.0, y as f64 * 0.3, z as f64 * 0.3)))
            .collect();
        map.integrate_cloud(&PointCloud::new(origin, points), 0.3);
        PlannerMap::export(&map, &ExportConfig::new(0.3, 1e9, origin))
    }

    #[test]
    fn free_and_occupied_points() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(checker.point_free(Vec3::new(0.0, 0.0, 5.0)));
        assert!(!checker.point_free(Vec3::new(10.0, 0.0, 5.0)));
        // Margin inflates obstacles.
        assert!(!checker.point_free(Vec3::new(9.5, 0.0, 5.0)));
        assert!(checker.queries() >= 3);
    }

    #[test]
    fn segment_through_wall_is_blocked() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        assert!(!checker.segment_free(Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)));
        // A segment parallel to the wall on the near side is free.
        assert!(checker.segment_free(Vec3::new(0.0, -5.0, 5.0), Vec3::new(0.0, 5.0, 5.0)));
        // Degenerate segment behaves like a point query.
        assert!(checker.segment_free(Vec3::new(1.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 5.0)));
    }

    #[test]
    fn path_check_covers_all_segments() {
        let mut checker = CollisionChecker::new(map_with_wall(), 0.45, 0.3);
        let around = vec![
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(5.0, -10.0, 5.0),
            Vec3::new(15.0, -10.0, 5.0),
            Vec3::new(20.0, 0.0, 5.0),
        ];
        assert!(checker.path_free(&around));
        let through = vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(20.0, 0.0, 5.0)];
        assert!(!checker.path_free(&through));
        assert!(checker.path_free(&[]));
        assert!(checker.path_free(&[Vec3::new(0.0, 0.0, 5.0)]));
    }

    #[test]
    fn coarser_step_does_fewer_queries() {
        let mut fine = CollisionChecker::new(map_with_wall(), 0.45, 0.1);
        let mut coarse = CollisionChecker::new(map_with_wall(), 0.45, 2.0);
        let a = Vec3::new(0.0, -5.0, 5.0);
        let b = Vec3::new(0.0, 5.0, 5.0);
        assert!(fine.segment_free(a, b));
        assert!(coarse.segment_free(a, b));
        assert!(fine.queries() > coarse.queries());
    }

    #[test]
    fn empty_map_is_all_free() {
        let mut checker = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.5);
        assert!(checker.segment_free(Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "check step")]
    fn zero_step_panics() {
        let _ = CollisionChecker::new(PlannerMap::empty(0.3), 0.45, 0.0);
    }
}
