//! Planning substrate: collision checking, RRT* piece-wise planning and
//! polynomial path smoothing.
//!
//! The paper's planning stage uses two kernels: "piece-wise planning and
//! path smoothing. Piece-wise planning stochastically samples the map until
//! a collision-free path to the destination is found. We use the RRT*
//! planner from the OMPL library due to its asymptotic optimality. We use
//! Richter, et al.'s Path Smoothing kernel to modify the piece-wise
//! trajectory to incorporate the MAV's dynamic constraints such as maximum
//! velocity."
//!
//! This crate re-implements both kernels from scratch:
//!
//! * [`CollisionChecker`] — segment collision checks against the exported
//!   [`roborun_perception::PlannerMap`], with the ray-march step acting as
//!   the *planning precision* operator.
//! * [`hazard`] — the hazard-source abstraction: the [`HazardContext`]
//!   composes the static checker with [`PredictedHazards`] (time-free
//!   soft boxes from moving-obstacle prediction), so the planner routes
//!   around predicted lanes in one shot; every search and validator is
//!   generic over [`HazardSource`].
//! * [`RrtStar`] — a sampling-based planner with rewiring whose explored
//!   volume is monitored and capped (the *planning volume* operator: "our
//!   volume monitor stops the search upon exceeding the threshold").
//! * [`smooth_path`] — piecewise cubic Hermite smoothing with velocity /
//!   acceleration caps, producing a time-parameterised [`Trajectory`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collision;
pub mod hazard;
pub mod planner;
pub mod rrtstar;
pub mod smoothing;
pub mod trajectory;

pub use collision::CollisionChecker;
pub use hazard::{
    first_polyline_conflict, polyline_clear_of_boxes, swept_polyline_boxes, HazardContext,
    HazardSource, PeerTrajectoryHazard, PredictedHazards,
};
pub use planner::{PlanError, PlanStats, Planner, PlannerConfig};
pub use rrtstar::{PlannerScratch, RrtConfig, RrtResult, RrtStar, SamplingMix, WarmStart};
pub use smoothing::{smooth_path, SmoothingConfig};
pub use trajectory::{Trajectory, TrajectoryPoint};
