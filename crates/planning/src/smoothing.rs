//! Path smoothing (Richter-et-al.-style polynomial trajectories).
//!
//! The piece-wise RRT* path is a chain of straight segments with corners a
//! real quadrotor cannot track at speed. The paper runs Richter et al.'s
//! polynomial smoothing kernel to "incorporate the MAV's dynamic constraints
//! such as maximum velocity". Our smoother fits a cubic Hermite segment per
//! waypoint pair (catmull-rom style tangents) and time-parameterises the
//! result so that the commanded speed never exceeds the velocity cap and the
//! speed ramps respect the acceleration cap.

use crate::{Trajectory, TrajectoryPoint};
use roborun_geom::{Polynomial, Vec3};
use serde::{Deserialize, Serialize};

/// Smoothing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoothingConfig {
    /// Maximum commanded speed along the trajectory (m/s).
    pub max_speed: f64,
    /// Maximum acceleration (m/s²) used for the speed ramps.
    pub max_acceleration: f64,
    /// Number of samples generated per segment.
    pub samples_per_segment: usize,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        SmoothingConfig {
            max_speed: 5.0,
            max_acceleration: 2.5,
            samples_per_segment: 8,
        }
    }
}

impl SmoothingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_speed <= 0.0 {
            return Err(format!(
                "max_speed must be positive, got {}",
                self.max_speed
            ));
        }
        if self.max_acceleration <= 0.0 {
            return Err(format!(
                "max_acceleration must be positive, got {}",
                self.max_acceleration
            ));
        }
        if self.samples_per_segment == 0 {
            return Err("samples_per_segment must be at least 1".into());
        }
        Ok(())
    }
}

/// Smooths a piece-wise path into a time-parameterised [`Trajectory`].
///
/// The speed profile is a trapezoid: it ramps from zero at the start, holds
/// `cruise_speed` (capped by the config's `max_speed`), and ramps back to
/// zero at the goal, with ramp lengths dictated by `max_acceleration`.
///
/// Returns an empty trajectory for an empty path and a single hovering
/// point for a single-waypoint path.
///
/// # Panics
///
/// Panics if the configuration is invalid or `cruise_speed < 0`.
pub fn smooth_path(path: &[Vec3], cruise_speed: f64, config: &SmoothingConfig) -> Trajectory {
    config.validate().expect("invalid smoothing configuration");
    assert!(cruise_speed >= 0.0, "cruise speed must be non-negative");
    if path.is_empty() {
        return Trajectory::empty();
    }
    if path.len() == 1 {
        return Trajectory::new(vec![TrajectoryPoint {
            time: 0.0,
            position: path[0],
            speed: 0.0,
        }]);
    }

    let cruise = cruise_speed.min(config.max_speed).max(0.05);

    // 1. Geometric smoothing: cubic Hermite per segment with Catmull-Rom
    //    tangents, sampled densely.
    let mut positions: Vec<Vec3> = Vec::new();
    for i in 0..path.len() - 1 {
        let p0 = path[i];
        let p1 = path[i + 1];
        let prev = if i == 0 { p0 } else { path[i - 1] };
        let next = if i + 2 < path.len() { path[i + 2] } else { p1 };
        let m0 = (p1 - prev) * 0.5;
        let m1 = (next - p0) * 0.5;
        let hx = Polynomial::hermite(p0.x, p1.x, m0.x, m1.x);
        let hy = Polynomial::hermite(p0.y, p1.y, m0.y, m1.y);
        let hz = Polynomial::hermite(p0.z, p1.z, m0.z, m1.z);
        let n = config.samples_per_segment;
        let start_s = if i == 0 { 0 } else { 1 };
        for s in start_s..=n {
            let u = s as f64 / n as f64;
            positions.push(Vec3::new(hx.eval(u), hy.eval(u), hz.eval(u)));
        }
    }

    // 2. Arc-length along the smoothed geometry.
    let mut arc = vec![0.0f64];
    for w in positions.windows(2) {
        let last = *arc.last().expect("arc always has an element");
        arc.push(last + w[0].distance(w[1]));
    }
    let total_length = *arc.last().expect("arc always has an element");
    if total_length < 1e-9 {
        return Trajectory::new(vec![TrajectoryPoint {
            time: 0.0,
            position: positions[0],
            speed: 0.0,
        }]);
    }

    // 3. Trapezoidal speed profile along the arc length.
    let accel = config.max_acceleration;
    let ramp_length = cruise * cruise / (2.0 * accel);
    let (ramp, cruise) = if 2.0 * ramp_length > total_length {
        // Triangle profile: never reaches the requested cruise speed.
        let peak = (accel * total_length).sqrt();
        (total_length / 2.0, peak)
    } else {
        (ramp_length, cruise)
    };

    let speed_at = |s: f64| -> f64 {
        if s < ramp {
            (2.0 * accel * s).sqrt().min(cruise)
        } else if s > total_length - ramp {
            (2.0 * accel * (total_length - s))
                .max(0.0)
                .sqrt()
                .min(cruise)
        } else {
            cruise
        }
    };

    // 4. Integrate time along the arc.
    let mut points = Vec::with_capacity(positions.len());
    let mut time = 0.0;
    for (i, &pos) in positions.iter().enumerate() {
        if i > 0 {
            let ds = arc[i] - arc[i - 1];
            let v_avg = 0.5 * (speed_at(arc[i - 1]) + speed_at(arc[i])).max(0.05);
            time += ds / v_avg;
        }
        points.push(TrajectoryPoint {
            time,
            position: pos,
            speed: speed_at(arc[i]),
        });
    }
    Trajectory::new(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shaped_path() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(20.0, 0.0, 5.0),
            Vec3::new(20.0, 20.0, 5.0),
        ]
    }

    #[test]
    fn empty_and_single_point_paths() {
        let cfg = SmoothingConfig::default();
        assert!(smooth_path(&[], 2.0, &cfg).is_empty());
        let single = smooth_path(&[Vec3::new(1.0, 2.0, 3.0)], 2.0, &cfg);
        assert_eq!(single.len(), 1);
        assert_eq!(single.duration(), 0.0);
        assert_eq!(single.points()[0].speed, 0.0);
    }

    #[test]
    fn endpoints_are_preserved() {
        let cfg = SmoothingConfig::default();
        let path = l_shaped_path();
        let traj = smooth_path(&path, 3.0, &cfg);
        assert!((traj.start_position().unwrap() - path[0]).norm() < 1e-9);
        assert!((traj.end_position().unwrap() - *path.last().unwrap()).norm() < 1e-9);
        assert!(traj.len() > path.len());
    }

    #[test]
    fn speed_never_exceeds_caps() {
        let cfg = SmoothingConfig {
            max_speed: 4.0,
            ..SmoothingConfig::default()
        };
        // Commanded cruise above the cap gets clamped.
        let traj = smooth_path(&l_shaped_path(), 10.0, &cfg);
        assert!(traj.max_speed() <= 4.0 + 1e-9);
        for p in traj.points() {
            assert!(p.speed >= 0.0);
        }
        // Starts and ends at (near) rest.
        assert!(traj.points()[0].speed < 0.5);
        assert!(traj.points().last().unwrap().speed < 0.5);
    }

    #[test]
    fn acceleration_respected_between_samples() {
        let cfg = SmoothingConfig {
            max_acceleration: 2.0,
            ..SmoothingConfig::default()
        };
        let traj = smooth_path(&l_shaped_path(), 5.0, &cfg);
        for w in traj.points().windows(2) {
            let dt = (w[1].time - w[0].time).max(1e-9);
            let dv = (w[1].speed - w[0].speed).abs();
            assert!(
                dv / dt <= cfg.max_acceleration * 1.5 + 1e-6,
                "accel {}",
                dv / dt
            );
        }
    }

    #[test]
    fn slower_cruise_takes_longer() {
        let cfg = SmoothingConfig::default();
        let slow = smooth_path(&l_shaped_path(), 0.5, &cfg);
        let fast = smooth_path(&l_shaped_path(), 4.0, &cfg);
        assert!(slow.duration() > fast.duration());
        // Both cover roughly the same geometry.
        assert!((slow.length() - fast.length()).abs() < 1.0);
    }

    #[test]
    fn short_path_uses_triangle_profile() {
        let cfg = SmoothingConfig::default();
        let path = vec![Vec3::new(0.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 5.0)];
        let traj = smooth_path(&path, 5.0, &cfg);
        // 1 m at 2.5 m/s² can never reach 5 m/s.
        assert!(traj.max_speed() < 2.0);
        assert!(traj.duration() > 0.0);
    }

    #[test]
    fn smoothed_geometry_stays_near_waypoints() {
        let cfg = SmoothingConfig::default();
        let path = l_shaped_path();
        let traj = smooth_path(&path, 3.0, &cfg);
        // Every original waypoint should have a nearby trajectory sample
        // (Catmull-Rom interpolates the waypoints).
        for wp in &path {
            let min_d = traj
                .points()
                .iter()
                .map(|p| p.position.distance(*wp))
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_d < 1.0,
                "waypoint {wp:?} is {min_d} m from the trajectory"
            );
        }
    }

    #[test]
    fn times_are_strictly_increasing() {
        let cfg = SmoothingConfig::default();
        let traj = smooth_path(&l_shaped_path(), 2.0, &cfg);
        for w in traj.points().windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    #[should_panic(expected = "invalid smoothing")]
    fn invalid_config_panics() {
        let bad = SmoothingConfig {
            max_speed: 0.0,
            ..SmoothingConfig::default()
        };
        let _ = smooth_path(&l_shaped_path(), 1.0, &bad);
    }

    #[test]
    fn config_validation() {
        assert!(SmoothingConfig::default().validate().is_ok());
        assert!(SmoothingConfig {
            max_acceleration: 0.0,
            ..SmoothingConfig::default()
        }
        .validate()
        .is_err());
        assert!(SmoothingConfig {
            samples_per_segment: 0,
            ..SmoothingConfig::default()
        }
        .validate()
        .is_err());
    }
}
