//! High-level planner: piece-wise planning + smoothing behind one call.

use crate::{
    smooth_path, CollisionChecker, HazardSource, PlannerScratch, RrtConfig, RrtStar,
    SmoothingConfig, Trajectory, WarmStart,
};
use roborun_geom::{Aabb, Vec3};
use roborun_perception::PlannerMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors returned by [`Planner::plan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// The start position is inside (or within margin of) an obstacle.
    StartBlocked,
    /// The goal position is inside (or within margin of) an obstacle.
    GoalBlocked,
    /// The sampling-based search exhausted its sample or volume budget
    /// without reaching the goal.
    NoPathFound {
        /// Number of samples drawn before giving up.
        samples_drawn: usize,
        /// Whether the planning-volume monitor terminated the search.
        volume_capped: bool,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::StartBlocked => write!(f, "start position is in collision"),
            PlanError::GoalBlocked => write!(f, "goal position is in collision"),
            PlanError::NoPathFound {
                samples_drawn,
                volume_capped,
            } => write!(
                f,
                "no collision-free path found after {samples_drawn} samples (volume capped: {volume_capped})"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Combined configuration of the planning stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// RRT* (piece-wise planning) configuration.
    pub rrt: RrtConfig,
    /// Smoothing configuration.
    pub smoothing: SmoothingConfig,
    /// Collision margin around obstacles (MAV body radius, metres).
    pub margin: f64,
    /// Collision-check sample spacing (metres) — the planning precision knob.
    pub collision_check_step: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            rrt: RrtConfig::default(),
            smoothing: SmoothingConfig::default(),
            margin: 0.45,
            collision_check_step: 0.3,
        }
    }
}

/// Statistics of one planning invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanStats {
    /// Samples the piece-wise planner drew.
    pub samples_drawn: usize,
    /// Nodes in the final search tree.
    pub tree_size: usize,
    /// Explored volume (m³).
    pub explored_volume: f64,
    /// Collision-checker point queries performed.
    pub collision_queries: usize,
    /// Whether the planning-volume monitor terminated the search.
    pub volume_capped: bool,
    /// Tree edges re-parented through a cheaper node during the search.
    pub rewires: usize,
    /// Batched sampling rounds the search executed.
    pub batch_rounds: usize,
    /// Nodes recycled from the previous decision's tree (warm start).
    pub retained_nodes: usize,
    /// Previous-tree nodes dropped by the rebase/prune pass (warm start).
    pub pruned_nodes: usize,
    /// Whether this plan rebased a retained tree instead of cold-starting.
    pub rebased: bool,
    /// Informed-sampling draws rejected outside the best-solution spheroid.
    pub informed_rejections: usize,
}

/// The full planning stage: RRT* followed by smoothing.
///
/// # Example
///
/// ```
/// use roborun_planning::{Planner, PlannerConfig};
/// use roborun_perception::PlannerMap;
/// use roborun_geom::{Aabb, Vec3};
///
/// let planner = Planner::new(PlannerConfig::default());
/// let bounds = Aabb::new(Vec3::new(-5.0, -20.0, 0.0), Vec3::new(60.0, 20.0, 10.0));
/// let (traj, _stats) = planner
///     .plan(&PlannerMap::empty(0.3), Vec3::new(0.0, 0.0, 5.0), Vec3::new(50.0, 0.0, 5.0), &bounds, 3.0)
///     .unwrap();
/// assert!(traj.duration() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
}

impl Planner {
    /// Creates a planner.
    ///
    /// # Panics
    ///
    /// Panics if the nested configurations are invalid.
    pub fn new(config: PlannerConfig) -> Self {
        config.rrt.validate().expect("invalid RRT* configuration");
        config
            .smoothing
            .validate()
            .expect("invalid smoothing configuration");
        assert!(config.margin >= 0.0, "margin must be non-negative");
        assert!(
            config.collision_check_step > 0.0,
            "collision check step must be positive"
        );
        Planner { config }
    }

    /// The planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Plans a smoothed, time-parameterised trajectory from `start` to
    /// `goal` through the exported `map`, sampling inside `bounds` and
    /// cruising at `cruise_speed` where possible.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the endpoints are blocked or no path is
    /// found within the sample/volume budget.
    pub fn plan(
        &self,
        map: &PlannerMap,
        start: Vec3,
        goal: Vec3,
        bounds: &Aabb,
        cruise_speed: f64,
    ) -> Result<(Trajectory, PlanStats), PlanError> {
        let mut checker = CollisionChecker::new(
            map.clone(),
            self.config.margin,
            self.config.collision_check_step,
        );
        self.plan_with_checker(&mut checker, start, goal, bounds, cruise_speed)
    }

    /// [`Planner::plan`] against a caller-owned hazard source.
    ///
    /// Long-lived callers (the mission runner plans every few decisions
    /// against a lightly changed export) keep one [`CollisionChecker`]
    /// alive, refresh it with [`CollisionChecker::update_map`] — which
    /// patches the built broad-phase from the export delta instead of
    /// rebuilding it — and retune the sample spacing with
    /// [`CollisionChecker::set_check_step`]. The checker's own margin and
    /// step are used; the planner config's copies apply only to the
    /// one-shot [`Planner::plan`] path.
    ///
    /// Callers in a world with moving obstacles hand in the composed
    /// [`crate::HazardContext`] instead, so the search itself routes
    /// around predicted occupancy (see the [`crate::hazard`] module docs);
    /// with an empty predicted set the composed context is bit-identical
    /// to the bare checker.
    pub fn plan_with_checker<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        bounds: &Aabb,
        cruise_speed: f64,
    ) -> Result<(Trajectory, PlanStats), PlanError> {
        let mut scratch = PlannerScratch::new();
        self.plan_with_scratch(
            checker,
            start,
            goal,
            bounds,
            cruise_speed,
            &mut scratch,
            None,
        )
    }

    /// [`Planner::plan_with_checker`] against a caller-owned
    /// [`PlannerScratch`]: the search tree, spatial index, and every
    /// sampling buffer are reused across calls instead of reallocated,
    /// and — when [`RrtConfig::warm_start`] is on and a [`WarmStart`]
    /// delta is handed in — the previous call's tree is recycled per the
    /// [`crate::rrtstar`] module docs. With `warm` `None` the call is
    /// bit-identical to [`Planner::plan_with_checker`].
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the endpoints are blocked or no path is
    /// found within the sample/volume budget.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_with_scratch<H: HazardSource>(
        &self,
        checker: &mut H,
        start: Vec3,
        goal: Vec3,
        bounds: &Aabb,
        cruise_speed: f64,
        scratch: &mut PlannerScratch,
        warm: Option<&WarmStart>,
    ) -> Result<(Trajectory, PlanStats), PlanError> {
        let queries_before = checker.queries();
        if !checker.point_free(start) {
            return Err(PlanError::StartBlocked);
        }
        if !checker.point_free(goal) {
            return Err(PlanError::GoalBlocked);
        }
        let rrt = RrtStar::new(self.config.rrt);
        let result = rrt.plan_with_scratch(checker, start, goal, bounds, scratch, warm);
        if !result.found() {
            return Err(PlanError::NoPathFound {
                samples_drawn: result.samples_drawn,
                volume_capped: result.volume_capped,
            });
        }
        let trajectory = smooth_path(&result.path, cruise_speed, &self.config.smoothing);
        let stats = PlanStats {
            samples_drawn: result.samples_drawn,
            tree_size: result.tree_size,
            explored_volume: result.explored_volume,
            collision_queries: checker.queries() - queries_before,
            volume_capped: result.volume_capped,
            rewires: result.rewires,
            batch_rounds: result.batch_rounds,
            retained_nodes: result.retained_nodes,
            pruned_nodes: result.pruned_nodes,
            rebased: result.rebased,
            informed_rejections: result.informed_rejections,
        };
        Ok((trajectory, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roborun_perception::{ExportConfig, OccupancyMap, PointCloud};

    fn bounds() -> Aabb {
        Aabb::new(Vec3::new(-5.0, -35.0, 1.0), Vec3::new(60.0, 35.0, 12.0))
    }

    fn map_with_gap() -> PlannerMap {
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -60..=60 {
            let y = yi as f64 * 0.5;
            if (4.0..=9.0).contains(&y) {
                continue;
            }
            for zi in 0..24 {
                points.push(Vec3::new(25.0, y, zi as f64 * 0.5));
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
    }

    #[test]
    fn plans_through_open_space() {
        let planner = Planner::new(PlannerConfig::default());
        let (traj, stats) = planner
            .plan(
                &PlannerMap::empty(0.3),
                Vec3::new(0.0, 0.0, 5.0),
                Vec3::new(50.0, 0.0, 5.0),
                &bounds(),
                4.0,
            )
            .unwrap();
        assert!(traj.duration() > 0.0);
        assert!(traj.length() >= 49.0);
        assert_eq!(stats.samples_drawn, 0); // direct connection
        assert!((traj.end_position().unwrap() - Vec3::new(50.0, 0.0, 5.0)).norm() < 1e-6);
    }

    #[test]
    fn plans_around_wall_and_is_collision_free() {
        let map = map_with_gap();
        let planner = Planner::new(PlannerConfig {
            rrt: RrtConfig {
                seed: 13,
                ..RrtConfig::default()
            },
            ..PlannerConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(50.0, 0.0, 5.0);
        let (traj, stats) = planner.plan(&map, start, goal, &bounds(), 3.0).unwrap();
        assert!(stats.samples_drawn > 0);
        assert!(stats.collision_queries > 0);
        // The followed trajectory must not pass through exported obstacles.
        let margin = planner.config().margin;
        for p in traj.points() {
            assert!(
                !map.is_occupied(p.position, margin * 0.5),
                "trajectory point {:?} collides",
                p.position
            );
        }
    }

    #[test]
    fn blocked_endpoints_are_reported() {
        let map = map_with_gap();
        let planner = Planner::new(PlannerConfig::default());
        let inside_wall = Vec3::new(25.0, -10.0, 5.0);
        let free = Vec3::new(0.0, 0.0, 5.0);
        assert_eq!(
            planner
                .plan(&map, inside_wall, free, &bounds(), 2.0)
                .unwrap_err(),
            PlanError::StartBlocked
        );
        assert_eq!(
            planner
                .plan(&map, free, inside_wall, &bounds(), 2.0)
                .unwrap_err(),
            PlanError::GoalBlocked
        );
    }

    #[test]
    fn impossible_plan_reports_no_path() {
        // Fully enclosing box around the start.
        let mut map = OccupancyMap::new(0.5);
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut points = Vec::new();
        for yi in -20..=20 {
            for zi in -20..=20 {
                for &x in &[-5.0, 5.0] {
                    points.push(Vec3::new(x, yi as f64 * 0.5, 5.0 + zi as f64 * 0.5));
                }
                for &y in &[-5.0, 5.0] {
                    points.push(Vec3::new(yi as f64 * 0.5, y, 5.0 + zi as f64 * 0.5));
                }
            }
        }
        map.integrate_cloud(&PointCloud::new(origin, points), 2.0);
        let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
        let planner = Planner::new(PlannerConfig {
            rrt: RrtConfig {
                max_samples: 300,
                seed: 2,
                ..RrtConfig::default()
            },
            ..PlannerConfig::default()
        });
        let err = planner
            .plan(
                &pm,
                origin,
                Vec3::new(50.0, 0.0, 5.0),
                &Aabb::new(Vec3::new(-4.0, -4.0, 1.0), Vec3::new(4.0, 4.0, 9.0)),
                2.0,
            )
            .unwrap_err();
        match err {
            PlanError::NoPathFound { samples_drawn, .. } => assert!(samples_drawn > 0),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = PlanError::NoPathFound {
            samples_drawn: 42,
            volume_capped: true,
        };
        let s = format!("{e}");
        assert!(s.contains("42"));
        assert!(format!("{}", PlanError::StartBlocked).contains("start"));
        assert!(format!("{}", PlanError::GoalBlocked).contains("goal"));
    }

    #[test]
    #[should_panic(expected = "collision check step")]
    fn invalid_config_panics() {
        let _ = Planner::new(PlannerConfig {
            collision_check_step: 0.0,
            ..PlannerConfig::default()
        });
    }
}
