//! Time-parameterised trajectories.

use roborun_geom::Vec3;
use serde::{Deserialize, Serialize};

/// One sample of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Time since the start of the trajectory (seconds).
    pub time: f64,
    /// Position (metres).
    pub position: Vec3,
    /// Planned speed at this point (m/s).
    pub speed: f64,
}

/// A time-parameterised path the control stage follows.
///
/// The smoother produces these; the runtime's profilers read the upcoming
/// waypoints (positions, times and speeds) to run the waypoint-aware time
/// budgeting of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Creates a trajectory from samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample times are not non-decreasing.
    pub fn new(points: Vec<TrajectoryPoint>) -> Self {
        for w in points.windows(2) {
            assert!(
                w[1].time >= w[0].time,
                "trajectory times must be non-decreasing ({} then {})",
                w[0].time,
                w[1].time
            );
        }
        Trajectory { points }
    }

    /// An empty trajectory.
    pub fn empty() -> Self {
        Trajectory { points: Vec::new() }
    }

    /// The trajectory samples.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total duration (seconds); zero for empty or single-point trajectories.
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => 0.0,
        }
    }

    /// Total path length (metres).
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }

    /// Final position, or `None` when empty.
    pub fn end_position(&self) -> Option<Vec3> {
        self.points.last().map(|p| p.position)
    }

    /// First position, or `None` when empty.
    pub fn start_position(&self) -> Option<Vec3> {
        self.points.first().map(|p| p.position)
    }

    /// Maximum planned speed along the trajectory.
    pub fn max_speed(&self) -> f64 {
        self.points.iter().map(|p| p.speed).fold(0.0, f64::max)
    }

    /// Position and speed at time `t` (clamped to the trajectory's time
    /// range), interpolated linearly between samples. Returns `None` when
    /// the trajectory is empty.
    pub fn sample_at(&self, t: f64) -> Option<TrajectoryPoint> {
        let first = self.points.first()?;
        let last = self.points.last()?;
        if t <= first.time {
            return Some(*first);
        }
        if t >= last.time {
            return Some(*last);
        }
        let idx = self
            .points
            .windows(2)
            .position(|w| w[0].time <= t && t <= w[1].time)?;
        let a = self.points[idx];
        let b = self.points[idx + 1];
        let span = (b.time - a.time).max(1e-12);
        let frac = (t - a.time) / span;
        Some(TrajectoryPoint {
            time: t,
            position: a.position.lerp(b.position, frac),
            speed: a.speed + (b.speed - a.speed) * frac,
        })
    }

    /// The waypoints (positions only) of the trajectory.
    pub fn waypoints(&self) -> Vec<Vec3> {
        self.points.iter().map(|p| p.position).collect()
    }

    /// Remaining sub-trajectory from time `t` onwards (times re-zeroed),
    /// used when re-planning mid-flight.
    pub fn remaining_from(&self, t: f64) -> Trajectory {
        if self.points.is_empty() {
            return Trajectory::empty();
        }
        let mut points: Vec<TrajectoryPoint> = Vec::new();
        if let Some(current) = self.sample_at(t) {
            points.push(TrajectoryPoint {
                time: 0.0,
                ..current
            });
        }
        for p in &self.points {
            if p.time > t {
                points.push(TrajectoryPoint {
                    time: p.time - t,
                    ..*p
                });
            }
        }
        Trajectory::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line() -> Trajectory {
        Trajectory::new(
            (0..=10)
                .map(|i| TrajectoryPoint {
                    time: i as f64,
                    position: Vec3::new(i as f64 * 2.0, 0.0, 5.0),
                    speed: 2.0,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_trajectory() {
        let t = Trajectory::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.duration(), 0.0);
        assert_eq!(t.length(), 0.0);
        assert!(t.sample_at(1.0).is_none());
        assert!(t.end_position().is_none());
        assert!(t.start_position().is_none());
        assert_eq!(t.max_speed(), 0.0);
        assert!(t.remaining_from(5.0).is_empty());
    }

    #[test]
    fn duration_length_and_endpoints() {
        let t = straight_line();
        assert_eq!(t.duration(), 10.0);
        assert!((t.length() - 20.0).abs() < 1e-12);
        assert_eq!(t.start_position().unwrap(), Vec3::new(0.0, 0.0, 5.0));
        assert_eq!(t.end_position().unwrap(), Vec3::new(20.0, 0.0, 5.0));
        assert_eq!(t.max_speed(), 2.0);
        assert_eq!(t.waypoints().len(), 11);
    }

    #[test]
    fn sampling_interpolates_and_clamps() {
        let t = straight_line();
        let mid = t.sample_at(2.5).unwrap();
        assert!((mid.position - Vec3::new(5.0, 0.0, 5.0)).norm() < 1e-12);
        assert_eq!(mid.speed, 2.0);
        assert_eq!(
            t.sample_at(-1.0).unwrap().position,
            Vec3::new(0.0, 0.0, 5.0)
        );
        assert_eq!(
            t.sample_at(99.0).unwrap().position,
            Vec3::new(20.0, 0.0, 5.0)
        );
    }

    #[test]
    fn remaining_from_rezeros_time() {
        let t = straight_line();
        let rest = t.remaining_from(4.5);
        assert!((rest.duration() - 5.5).abs() < 1e-9);
        assert!((rest.start_position().unwrap() - Vec3::new(9.0, 0.0, 5.0)).norm() < 1e-9);
        assert_eq!(rest.end_position().unwrap(), t.end_position().unwrap());
        assert_eq!(rest.points()[0].time, 0.0);
        // Past the end: a single clamped point remains.
        let tail = t.remaining_from(100.0);
        assert_eq!(tail.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unsorted_times() {
        let _ = Trajectory::new(vec![
            TrajectoryPoint {
                time: 1.0,
                position: Vec3::ZERO,
                speed: 1.0,
            },
            TrajectoryPoint {
                time: 0.5,
                position: Vec3::X,
                speed: 1.0,
            },
        ]);
    }
}
