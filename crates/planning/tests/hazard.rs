//! Hazard-context conformance: the composed context must degenerate
//! bit-identically to the bare static checker when the predicted set is
//! empty, and must route around predicted lanes in one shot where the
//! reject-loop would have vetoed the static-only plan.

use roborun_conformance::predicted_lane_scenarios;
use roborun_geom::{SplitMix64, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    polyline_clear_of_boxes, CollisionChecker, HazardContext, Planner, PlannerConfig,
    PredictedHazards, RrtConfig,
};

const CLEARANCE: f64 = 0.45 * 0.6;

/// A static map with a small blob off the corridor axis, so static and
/// predicted hazards both participate in the searches.
fn static_map() -> PlannerMap {
    let mut map = OccupancyMap::new(0.5);
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let points: Vec<Vec3> = (-4..=4)
        .flat_map(|y| (0..12).map(move |z| Vec3::new(8.0, 6.0 + y as f64 * 0.5, z as f64 * 0.5)))
        .collect();
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
}

fn planner(seed: u64) -> Planner {
    Planner::new(PlannerConfig {
        rrt: RrtConfig {
            seed,
            ..RrtConfig::default()
        },
        ..PlannerConfig::default()
    })
}

#[test]
fn empty_predicted_set_is_bit_identical_to_the_bare_checker() {
    let map = static_map();
    for seed in 0..4 {
        for scenario in predicted_lane_scenarios(seed) {
            let empty = PredictedHazards::empty();
            let mut bare = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut inner = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut composed = HazardContext::new(&mut inner, &empty);
            let p = planner(seed);
            let direct = p.plan_with_checker(
                &mut bare,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            );
            let through_context = p.plan_with_checker(
                &mut composed,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            );
            match (&direct, &through_context) {
                (Ok((a, sa)), Ok((b, sb))) => {
                    assert_eq!(a.points(), b.points(), "{} seed {seed}", scenario.name);
                    assert_eq!(sa, sb, "{} seed {seed}", scenario.name);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("{} seed {seed}: outcomes diverged", scenario.name),
            }
            assert_eq!(
                bare.queries(),
                inner.queries(),
                "{} seed {seed}: query counts diverged",
                scenario.name
            );
        }
    }
}

#[test]
fn composed_context_routes_around_lanes_in_one_shot() {
    let map = static_map();
    let mut reject_loop_would_fire = 0usize;
    for seed in 0..4 {
        for scenario in predicted_lane_scenarios(seed) {
            if scenario.lanes.is_empty() {
                continue;
            }
            let hazards =
                PredictedHazards::new(scenario.lanes.clone(), CLEARANCE, scenario.start, 1e9);
            let mut inner = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut composed = HazardContext::new(&mut inner, &hazards);
            let (trajectory, _stats) = planner(seed)
                .plan_with_checker(
                    &mut composed,
                    scenario.start,
                    scenario.goal,
                    &scenario.bounds,
                    3.0,
                )
                .unwrap_or_else(|e| {
                    panic!("{} seed {seed}: one-shot plan failed: {e}", scenario.name)
                });
            // The one-shot plan's waypoints clear every lane — the
            // posterior veto (what the reject-loop converges by) passes
            // immediately. The smoothed trajectory is allowed to graze
            // (that is exactly why the posterior check is retained in
            // the mission cycle), but its *waypoint* polyline may not
            // cross a lane interior.
            assert!(
                polyline_clear_of_boxes(
                    trajectory.points().iter().map(|p| p.position),
                    &scenario.lanes,
                    0.0,
                    scenario.start,
                    1e9,
                ),
                "{} seed {seed}: one-shot trajectory crosses a lane",
                scenario.name
            );

            // The static-only plan of the same decision: where it crosses
            // a lane, the reject-loop would have vetoed it and retried —
            // the work the composed context saves.
            let mut bare = CollisionChecker::new(map.clone(), 0.45, 0.3);
            if let Ok((static_traj, _)) = planner(seed).plan_with_checker(
                &mut bare,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            ) {
                if !polyline_clear_of_boxes(
                    static_traj.points().iter().map(|p| p.position),
                    &scenario.lanes,
                    CLEARANCE,
                    scenario.start,
                    1e9,
                ) {
                    reject_loop_would_fire += 1;
                }
            }
        }
    }
    assert!(
        reject_loop_would_fire > 0,
        "no scenario ever made the reject-loop fire — the comparison is vacuous"
    );
}

#[test]
fn retargeted_hazards_answer_like_fresh_ones_under_load() {
    // Mission-shaped churn: boxes drift a little every "decision", the
    // origin advances, and the grid-backed source must keep answering
    // exactly like a from-scratch build (the incremental-patch mirror of
    // the collision checker's delta conformance test).
    let mut rng = SplitMix64::new(0xCAFE);
    let mut boxes: Vec<roborun_geom::Aabb> = (0..24)
        .map(|_| {
            roborun_geom::Aabb::from_center_half_extents(
                Vec3::new(
                    rng.uniform(0.0, 40.0),
                    rng.uniform(-20.0, 20.0),
                    rng.uniform(2.0, 8.0),
                ),
                Vec3::splat(rng.uniform(0.5, 2.0)),
            )
        })
        .collect();
    let mut patched = PredictedHazards::new(boxes.clone(), CLEARANCE, Vec3::ZERO, 50.0);
    for decision in 0..20 {
        for b in boxes.iter_mut() {
            if rng.uniform(0.0, 1.0) < 0.4 {
                let shift = Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), 0.0);
                *b = roborun_geom::Aabb::new(b.min + shift, b.max + shift);
            }
        }
        let origin = Vec3::new(decision as f64 * 2.0, 0.0, 5.0);
        patched.retarget(&boxes, origin, 50.0);
        let fresh = PredictedHazards::new(boxes.clone(), CLEARANCE, origin, 50.0);
        assert_eq!(
            patched.grid_cells(),
            fresh.grid_cells(),
            "decision {decision}"
        );
        for _ in 0..200 {
            let p = Vec3::new(
                rng.uniform(-5.0, 45.0),
                rng.uniform(-25.0, 25.0),
                rng.uniform(0.0, 10.0),
            );
            assert_eq!(
                patched.point_blocked(p),
                fresh.point_blocked(p),
                "decision {decision} probe {p}"
            );
        }
    }
}
