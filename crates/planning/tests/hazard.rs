//! Hazard-context conformance: the composed context must degenerate
//! bit-identically to the bare static checker when the predicted set is
//! empty, and must route around predicted lanes in one shot where the
//! reject-loop would have vetoed the static-only plan.

use roborun_conformance::predicted_lane_scenarios;
use roborun_geom::{SplitMix64, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    polyline_clear_of_boxes, CollisionChecker, HazardContext, Planner, PlannerConfig,
    PredictedHazards, RrtConfig, RrtStar, SamplingMix,
};

const CLEARANCE: f64 = 0.45 * 0.6;

/// A static map with a small blob off the corridor axis, so static and
/// predicted hazards both participate in the searches.
fn static_map() -> PlannerMap {
    let mut map = OccupancyMap::new(0.5);
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let points: Vec<Vec3> = (-4..=4)
        .flat_map(|y| (0..12).map(move |z| Vec3::new(8.0, 6.0 + y as f64 * 0.5, z as f64 * 0.5)))
        .collect();
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
}

fn planner(seed: u64) -> Planner {
    Planner::new(PlannerConfig {
        rrt: RrtConfig {
            seed,
            ..RrtConfig::default()
        },
        ..PlannerConfig::default()
    })
}

#[test]
fn empty_predicted_set_is_bit_identical_to_the_bare_checker() {
    let map = static_map();
    for seed in 0..4 {
        for scenario in predicted_lane_scenarios(seed) {
            let empty = PredictedHazards::empty();
            let mut bare = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut inner = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut composed = HazardContext::new(&mut inner, &empty);
            let p = planner(seed);
            let direct = p.plan_with_checker(
                &mut bare,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            );
            let through_context = p.plan_with_checker(
                &mut composed,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            );
            match (&direct, &through_context) {
                (Ok((a, sa)), Ok((b, sb))) => {
                    assert_eq!(a.points(), b.points(), "{} seed {seed}", scenario.name);
                    assert_eq!(sa, sb, "{} seed {seed}", scenario.name);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("{} seed {seed}: outcomes diverged", scenario.name),
            }
            assert_eq!(
                bare.queries(),
                inner.queries(),
                "{} seed {seed}: query counts diverged",
                scenario.name
            );
        }
    }
}

#[test]
fn composed_context_routes_around_lanes_in_one_shot() {
    let map = static_map();
    let mut reject_loop_would_fire = 0usize;
    for seed in 0..4 {
        for scenario in predicted_lane_scenarios(seed) {
            if scenario.lanes.is_empty() {
                continue;
            }
            let hazards =
                PredictedHazards::new(scenario.lanes.clone(), CLEARANCE, scenario.start, 1e9);
            let mut inner = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut composed = HazardContext::new(&mut inner, &hazards);
            let (trajectory, _stats) = planner(seed)
                .plan_with_checker(
                    &mut composed,
                    scenario.start,
                    scenario.goal,
                    &scenario.bounds,
                    3.0,
                )
                .unwrap_or_else(|e| {
                    panic!("{} seed {seed}: one-shot plan failed: {e}", scenario.name)
                });
            // The one-shot plan's waypoints clear every lane — the
            // posterior veto (what the reject-loop converges by) passes
            // immediately. The smoothed trajectory is allowed to graze
            // (that is exactly why the posterior check is retained in
            // the mission cycle), but its *waypoint* polyline may not
            // cross a lane interior.
            assert!(
                polyline_clear_of_boxes(
                    trajectory.points().iter().map(|p| p.position),
                    &scenario.lanes,
                    0.0,
                    scenario.start,
                    1e9,
                ),
                "{} seed {seed}: one-shot trajectory crosses a lane",
                scenario.name
            );

            // The static-only plan of the same decision: where it crosses
            // a lane, the reject-loop would have vetoed it and retried —
            // the work the composed context saves.
            let mut bare = CollisionChecker::new(map.clone(), 0.45, 0.3);
            if let Ok((static_traj, _)) = planner(seed).plan_with_checker(
                &mut bare,
                scenario.start,
                scenario.goal,
                &scenario.bounds,
                3.0,
            ) {
                if !polyline_clear_of_boxes(
                    static_traj.points().iter().map(|p| p.position),
                    &scenario.lanes,
                    CLEARANCE,
                    scenario.start,
                    1e9,
                ) {
                    reject_loop_would_fire += 1;
                }
            }
        }
    }
    assert!(
        reject_loop_would_fire > 0,
        "no scenario ever made the reject-loop fire — the comparison is vacuous"
    );
}

/// The lane-heavy one-shot fixture of the kernel-scaling benches: a wall
/// at x = 20 with one gap at y ∈ [4, 9], and a predicted lane just past
/// it that soft-blocks the straight exit, forcing a southern dip.
fn lane_fixture() -> (
    PlannerMap,
    Vec<roborun_geom::Aabb>,
    Vec3,
    Vec3,
    roborun_geom::Aabb,
) {
    let mut map = OccupancyMap::new(0.5);
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut points = Vec::new();
    for yi in -60..=60 {
        let y = yi as f64 * 0.5;
        if (4.0..=9.0).contains(&y) {
            continue;
        }
        for zi in 0..24 {
            points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    let pm = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
    let lanes = vec![roborun_geom::Aabb::new(
        Vec3::new(26.0, 2.0, 0.0),
        Vec3::new(29.0, 25.0, 12.0),
    )];
    let start = Vec3::new(0.0, 0.0, 5.0);
    let goal = Vec3::new(40.0, 0.0, 5.0);
    let bounds = roborun_geom::Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 12.0));
    (pm, lanes, start, goal, bounds)
}

fn biased_mix() -> SamplingMix {
    SamplingMix {
        enabled: true,
        ..SamplingMix::default()
    }
}

#[test]
#[ignore = "tuning probe, run with --ignored --nocapture"]
fn sampler_ladder_probe() {
    let (map, lanes, start, goal, bounds) = lane_fixture();
    let ladder = [25usize, 50, 100, 200, 400, 800, 1600, 3200, 6400];
    let samples_to_solution = |seed: u64, mix: SamplingMix| -> usize {
        ladder
            .iter()
            .copied()
            .find(|&n| {
                let planner = RrtStar::new(RrtConfig {
                    seed,
                    max_samples: n,
                    sampling_mix: mix,
                    ..RrtConfig::default()
                });
                let hazards = PredictedHazards::new(lanes.clone(), CLEARANCE, start, 1e9);
                let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
                let mut ctx = HazardContext::new(&mut checker, &hazards);
                planner.plan(&mut ctx, start, goal, &bounds).found()
            })
            .unwrap_or(99_999)
    };
    let variants = [
        ("g.15/gap.45/r8", 0.15, 0.45, 8.0),
        ("g.15/gap.55/r8", 0.15, 0.55, 8.0),
        ("g.10/gap.45/r12", 0.10, 0.45, 12.0),
        ("g.20/gap.35/r8", 0.20, 0.35, 8.0),
        ("g.25/gap.50/r10", 0.25, 0.50, 10.0),
    ];
    let mut uniform: Vec<usize> = Vec::new();
    for seed in 0..8 {
        uniform.push(samples_to_solution(seed, SamplingMix::default()));
    }
    let ut: usize = uniform.iter().sum();
    println!("uniform per-seed {uniform:?} total {ut}");
    for (name, gw, gapw, r) in variants {
        let mix = SamplingMix {
            enabled: true,
            goal_region_weight: gw,
            gap_weight: gapw,
            goal_region_radius: r,
        };
        let per: Vec<usize> = (0..8).map(|s| samples_to_solution(s, mix)).collect();
        let bt: usize = per.iter().sum();
        println!(
            "{name}: per-seed {per:?} total {bt} ratio {:.2}",
            ut as f64 / bt as f64
        );
    }
}

#[test]
fn biased_sampling_cuts_samples_to_solution_on_the_lane_fixture() {
    // The regression the sampling mix is sold on: on the lane-heavy
    // fixture, routing proposals into goal- and gap-regions must at
    // least halve the samples the search needs before it first connects
    // the goal (the search itself never stops early, so "samples to
    // solution" is the smallest max_samples rung that yields a path).
    let (map, lanes, start, goal, bounds) = lane_fixture();
    let ladder = [25usize, 50, 100, 200, 400, 800, 1600, 3200, 6400];
    let samples_to_solution = |seed: u64, mix: SamplingMix| -> usize {
        ladder
            .iter()
            .copied()
            .find(|&n| {
                let planner = RrtStar::new(RrtConfig {
                    seed,
                    max_samples: n,
                    sampling_mix: mix,
                    ..RrtConfig::default()
                });
                let hazards = PredictedHazards::new(lanes.clone(), CLEARANCE, start, 1e9);
                let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
                let mut ctx = HazardContext::new(&mut checker, &hazards);
                planner.plan(&mut ctx, start, goal, &bounds).found()
            })
            .unwrap_or_else(|| panic!("seed {seed}: no path at any ladder rung"))
    };
    let mut uniform_total = 0usize;
    let mut biased_total = 0usize;
    for seed in 0..4 {
        let uniform = samples_to_solution(seed, SamplingMix::default());
        let biased = samples_to_solution(seed, biased_mix());
        assert!(
            biased <= uniform,
            "seed {seed}: biased needed {biased} samples, uniform {uniform}"
        );
        uniform_total += uniform;
        biased_total += biased;
    }
    assert!(
        uniform_total >= 2 * biased_total,
        "sample reduction below 2x: uniform {uniform_total}, biased {biased_total}"
    );
}

#[test]
fn biased_sampling_keeps_path_cost_competitive() {
    // The bias is a proposal distribution, not a heuristic cost term:
    // at a generous sample budget the biased search must find the goal
    // on every seed and land within a bounded ratio of the uniform
    // path cost (it routinely lands *under* it — the gap regions focus
    // refinement where the detour lives).
    let (map, lanes, start, goal, bounds) = lane_fixture();
    for seed in 0..4 {
        let plan = |mix: SamplingMix| {
            let planner = RrtStar::new(RrtConfig {
                seed,
                max_samples: 2_000,
                sampling_mix: mix,
                ..RrtConfig::default()
            });
            let hazards = PredictedHazards::new(lanes.clone(), CLEARANCE, start, 1e9);
            let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.3);
            let mut ctx = HazardContext::new(&mut checker, &hazards);
            planner.plan(&mut ctx, start, goal, &bounds)
        };
        let uniform = plan(SamplingMix::default());
        let biased = plan(biased_mix());
        assert!(biased.found(), "seed {seed}: biased search found no path");
        assert!(
            polyline_clear_of_boxes(biased.path.iter().copied(), &lanes, 0.0, start, 1e9),
            "seed {seed}: biased path crosses a lane interior"
        );
        if uniform.found() {
            assert!(
                biased.cost <= uniform.cost * 1.25,
                "seed {seed}: biased cost {:.2} vs uniform {:.2}",
                biased.cost,
                uniform.cost
            );
        }
    }
}

#[test]
fn retargeted_hazards_answer_like_fresh_ones_under_load() {
    // Mission-shaped churn: boxes drift a little every "decision", the
    // origin advances, and the grid-backed source must keep answering
    // exactly like a from-scratch build (the incremental-patch mirror of
    // the collision checker's delta conformance test).
    let mut rng = SplitMix64::new(0xCAFE);
    let mut boxes: Vec<roborun_geom::Aabb> = (0..24)
        .map(|_| {
            roborun_geom::Aabb::from_center_half_extents(
                Vec3::new(
                    rng.uniform(0.0, 40.0),
                    rng.uniform(-20.0, 20.0),
                    rng.uniform(2.0, 8.0),
                ),
                Vec3::splat(rng.uniform(0.5, 2.0)),
            )
        })
        .collect();
    let mut patched = PredictedHazards::new(boxes.clone(), CLEARANCE, Vec3::ZERO, 50.0);
    for decision in 0..20 {
        for b in boxes.iter_mut() {
            if rng.uniform(0.0, 1.0) < 0.4 {
                let shift = Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), 0.0);
                *b = roborun_geom::Aabb::new(b.min + shift, b.max + shift);
            }
        }
        let origin = Vec3::new(decision as f64 * 2.0, 0.0, 5.0);
        patched.retarget(&boxes, origin, 50.0);
        let fresh = PredictedHazards::new(boxes.clone(), CLEARANCE, origin, 50.0);
        assert_eq!(
            patched.grid_cells(),
            fresh.grid_cells(),
            "decision {decision}"
        );
        for _ in 0..200 {
            let p = Vec3::new(
                rng.uniform(-5.0, 45.0),
                rng.uniform(-25.0, 25.0),
                rng.uniform(0.0, 10.0),
            );
            assert_eq!(
                patched.point_blocked(p),
                fresh.point_blocked(p),
                "decision {decision} probe {p}"
            );
        }
    }
}
