//! Property-based tests for planning: collision checking, RRT* and
//! smoothing invariants.

use proptest::prelude::*;
use roborun_geom::{Aabb, Vec3};
use roborun_perception::{ExportConfig, OccupancyMap, PlannerMap, PointCloud};
use roborun_planning::{
    polyline_clear_of_boxes, smooth_path, CollisionChecker, HazardSource, PeerTrajectoryHazard,
    PlannerScratch, PredictedHazards, RrtConfig, RrtStar, SmoothingConfig, Trajectory,
    TrajectoryPoint, WarmStart,
};

fn arb_waypoints() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        ((-40.0f64..40.0), (-40.0f64..40.0), (2.0f64..10.0))
            .prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        2..8,
    )
}

fn wall_map(gap_lo: f64, gap_hi: f64) -> PlannerMap {
    let origin = Vec3::new(0.0, 0.0, 5.0);
    let mut map = OccupancyMap::new(0.5);
    let mut points = Vec::new();
    for yi in -40..=40 {
        let y = yi as f64 * 0.5;
        if y >= gap_lo && y <= gap_hi {
            continue;
        }
        for zi in 0..20 {
            points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
        }
    }
    map.integrate_cloud(&PointCloud::new(origin, points), 1.0);
    PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The grid-indexed RRT* must be bit-identical to the retained linear
    /// reference on random worlds: same path, same costs, same sample and
    /// collision-query counts.
    #[test]
    fn indexed_rrtstar_matches_linear_reference(gap_center in -15.0f64..15.0,
                                                gap_width in 2.0f64..8.0,
                                                seed in 0u64..1000,
                                                samples in 100usize..500) {
        let map = wall_map(gap_center - gap_width * 0.5, gap_center + gap_width * 0.5);
        let planner = RrtStar::new(RrtConfig {
            seed,
            max_samples: samples,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 11.0));
        let mut c1 = CollisionChecker::new(map.clone(), 0.45, 0.5);
        let mut c2 = CollisionChecker::new(map, 0.45, 0.5);
        let indexed = planner.plan(&mut c1, start, goal, &bounds);
        let linear = planner.plan_linear_reference(&mut c2, start, goal, &bounds);
        prop_assert_eq!(indexed, linear);
        prop_assert_eq!(c1.queries(), c2.queries());
    }

    #[test]
    fn smoothing_respects_speed_cap(waypoints in arb_waypoints(),
                                    cruise in 0.2f64..12.0,
                                    cap in 0.5f64..6.0) {
        let cfg = SmoothingConfig { max_speed: cap, ..SmoothingConfig::default() };
        let traj = smooth_path(&waypoints, cruise, &cfg);
        prop_assert!(traj.max_speed() <= cap + 1e-9);
        // Endpoints preserved.
        prop_assert!((traj.start_position().unwrap() - waypoints[0]).norm() < 1e-6);
        prop_assert!((traj.end_position().unwrap() - *waypoints.last().unwrap()).norm() < 1e-6);
        // Time strictly non-decreasing and speeds non-negative.
        for w in traj.points().windows(2) {
            prop_assert!(w[1].time >= w[0].time);
        }
        for p in traj.points() {
            prop_assert!(p.speed >= 0.0);
        }
        // Path length at least the straight-line start→end distance.
        let direct = waypoints[0].distance(*waypoints.last().unwrap());
        prop_assert!(traj.length() + 1e-6 >= direct * 0.99);
    }

    #[test]
    fn trajectory_sampling_is_clamped_and_monotone(waypoints in arb_waypoints(), t in -5.0f64..200.0) {
        let traj = smooth_path(&waypoints, 3.0, &SmoothingConfig::default());
        let sample = traj.sample_at(t).unwrap();
        prop_assert!(sample.time >= 0.0 - 1e-9);
        prop_assert!(sample.time <= traj.duration() + 1e-9 || t <= 0.0);
        // remaining_from never yields a longer duration than the original.
        let rest = traj.remaining_from(t.max(0.0));
        prop_assert!(rest.duration() <= traj.duration() + 1e-9);
    }

    #[test]
    fn rrt_paths_are_collision_free_and_anchored(seed in 0u64..64, gap_center in -10.0f64..10.0) {
        let map = wall_map(gap_center - 2.0, gap_center + 2.0);
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.5);
        let planner = RrtStar::new(RrtConfig { seed, ..RrtConfig::default() });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let bounds = Aabb::new(Vec3::new(-5.0, -30.0, 1.0), Vec3::new(45.0, 30.0, 11.0));
        let result = planner.plan(&mut checker, start, goal, &bounds);
        if result.found() {
            prop_assert!((result.path[0] - start).norm() < 1e-9);
            prop_assert!((result.path.last().unwrap().distance(goal)) < 1e-9);
            // Verified against a fresh checker with the same margin and the
            // same sampling step the planner used (a finer verification step
            // could legitimately find collisions the coarser planning step
            // cannot see — that accuracy/latency trade-off is exactly the
            // knob the paper's governor controls).
            let mut verify = CollisionChecker::new(map.clone(), 0.45, 0.5);
            prop_assert!(verify.path_free(&result.path), "planned path collides");
            // Cost equals the path length.
            let length: f64 = result.path.windows(2).map(|w| w[0].distance(w[1])).sum();
            prop_assert!((length - result.cost).abs() < 1e-6);
        }
    }

    #[test]
    fn rrt_volume_monitor_never_exceeded_by_much(seed in 0u64..32, budget in 100.0f64..50_000.0) {
        let map = wall_map(5.0, 8.0);
        let mut checker = CollisionChecker::new(map, 0.45, 0.5);
        let planner = RrtStar::new(RrtConfig {
            seed,
            max_explored_volume: budget,
            max_samples: 500,
            ..RrtConfig::default()
        });
        let bounds = Aabb::new(Vec3::new(-5.0, -30.0, 1.0), Vec3::new(45.0, 30.0, 11.0));
        let result = planner.plan(
            &mut checker,
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(40.0, 0.0, 5.0),
            &bounds,
        );
        // The monitor stops growth one step after the budget is crossed, so
        // the final explored volume can only exceed it by a bounded margin
        // (the bounds' volume is the absolute cap).
        if result.volume_capped {
            prop_assert!(result.explored_volume <= bounds.volume() + 1e-6);
        }
    }

    #[test]
    fn trajectory_construction_rejects_time_regressions(times in prop::collection::vec(0.0f64..100.0, 2..10)) {
        let sorted = {
            let mut t = times.clone();
            t.sort_by(|a, b| a.partial_cmp(b).unwrap());
            t
        };
        let points: Vec<TrajectoryPoint> = sorted
            .iter()
            .map(|&t| TrajectoryPoint { time: t, position: Vec3::new(t, 0.0, 5.0), speed: 1.0 })
            .collect();
        // Sorted times always construct fine.
        let traj = Trajectory::new(points);
        prop_assert!(traj.duration() >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Warm-start with an *empty* delta must rebase (not cold-start),
    /// prune nothing, retain the full previous tree plus the new root,
    /// and — like any plan — produce a collision-free path whose cost is
    /// its length. See the `rrtstar` in-file tests for the arena-level
    /// cost-repair invariants; this covers the public contract on random
    /// worlds.
    #[test]
    fn warm_start_empty_delta_retains_full_tree(gap_center in -12.0f64..12.0,
                                                seed in 0u64..256) {
        let map = wall_map(gap_center - 2.5, gap_center + 2.5);
        let planner = RrtStar::new(RrtConfig {
            seed,
            warm_start: true,
            informed_sampling: true,
            refine_samples: 128,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 11.0));
        let mut checker = CollisionChecker::new(map.clone(), 0.45, 0.5);
        let mut scratch = PlannerScratch::new();
        let cold = planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, None);
        // Direct-connection worlds (gap spanning the start→goal line)
        // never grow a tree, so there is nothing to rebase.
        prop_assume!(cold.found() && cold.samples_drawn > 0);
        let warm = WarmStart {
            added_boxes: &[],
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        let rewarmed =
            planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, Some(&warm));
        prop_assert!(rewarmed.rebased);
        prop_assert_eq!(rewarmed.pruned_nodes, 0);
        prop_assert_eq!(rewarmed.retained_nodes, cold.tree_size + 1);
        if rewarmed.found() {
            let mut verify = CollisionChecker::new(map, 0.45, 0.5);
            prop_assert!(verify.path_free(&rewarmed.path));
            let length: f64 = rewarmed.path.windows(2).map(|w| w[0].distance(w[1])).sum();
            prop_assert!((length - rewarmed.cost).abs() < 1e-6);
        }
    }

    /// A warm replan across a real map delta (new voxels integrated into
    /// the occupancy map) must never emit a path through the added
    /// voxels: the retained edges it reuses were pruned against exactly
    /// the boxes `added_boxes_into` derives from the delta, so the final
    /// path passes both the incremental `path_clear_of_added` check and
    /// a from-scratch check against the new export.
    #[test]
    fn warm_replan_paths_clear_added_voxels(seed in 0u64..128,
                                            block_lo in 2.0f64..6.0,
                                            block_span in 1.0f64..4.0) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut occ = OccupancyMap::new(0.5);
        let mut points = Vec::new();
        // Gap off the start→goal axis so every plan must grow a tree.
        for yi in -40..=40 {
            let y = yi as f64 * 0.5;
            if (2.0..=8.0).contains(&y) {
                continue;
            }
            for zi in 0..20 {
                points.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        occ.integrate_cloud(&PointCloud::new(origin, points), 1.0);
        let v1 = PlannerMap::export(&occ, &ExportConfig::new(0.5, 1e9, origin));

        let planner = RrtStar::new(RrtConfig {
            seed,
            warm_start: true,
            informed_sampling: true,
            refine_samples: 128,
            ..RrtConfig::default()
        });
        let start = Vec3::new(0.0, 0.0, 5.0);
        let goal = Vec3::new(40.0, 0.0, 5.0);
        let bounds = Aabb::new(Vec3::new(-5.0, -25.0, 1.0), Vec3::new(45.0, 25.0, 11.0));
        let mut checker = CollisionChecker::new(v1.clone(), 0.45, 0.5);
        let mut scratch = PlannerScratch::new();
        let cold = planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, None);
        prop_assume!(cold.found());

        // Close part of the gap: new voxels over y ∈ [block_lo, block_lo + span].
        let mut extra = Vec::new();
        for yi in 0..=40 {
            let y = yi as f64 * 0.25;
            if y < block_lo || y > block_lo + block_span {
                continue;
            }
            for zi in 0..20 {
                extra.push(Vec3::new(20.0, y, zi as f64 * 0.5));
            }
        }
        occ.integrate_cloud(&PointCloud::new(origin, extra), 1.0);
        let v2 = PlannerMap::export(&occ, &ExportConfig::new(0.5, 1e9, origin));
        let delta = v2.delta_from(&v1).expect("same voxel size");
        let mut added = Vec::new();
        CollisionChecker::added_boxes_into(&delta, &mut added);
        prop_assume!(!added.is_empty());

        checker.update_map(v2.clone());
        let warm = WarmStart {
            added_boxes: &added,
            added_clearance: 0.45,
            hazard_boxes: &[],
            hazard_clearance: 0.27,
            sample_step: 0.5,
        };
        let rewarmed =
            planner.plan_with_scratch(&mut checker, start, goal, &bounds, &mut scratch, Some(&warm));
        if rewarmed.found() {
            prop_assert!(
                CollisionChecker::path_clear_of_added(
                    &delta,
                    rewarmed.path.iter().copied(),
                    0.45,
                    0.5
                ),
                "warm path crosses an added voxel"
            );
            let mut verify = CollisionChecker::new(v2, 0.45, 0.5);
            prop_assert!(verify.path_free(&rewarmed.path));
        }
    }

    /// Satellite conformance for the incremental broad-phase: a random
    /// sequence of `PlannerMap` delta applications (growing scans plus a
    /// retain-radius contraction) must leave the patched candidate grid
    /// equal to a from-scratch rebuild after every step — cell for cell,
    /// and on every probe query.
    #[test]
    fn incremental_broad_phase_matches_rebuild_after_every_delta(
        scans in prop::collection::vec(
            prop::collection::vec(
                ((-20.0f64..20.0), (-20.0f64..20.0), (0.0f64..12.0))
                    .prop_map(|(x, y, z)| Vec3::new(x, y, z)),
                1..40,
            ),
            1..6,
        ),
        retain_radius in 8.0f64..30.0,
        margin in 0.1f64..1.2,
    ) {
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let mut map = OccupancyMap::new(0.5);
        let mut patched: Option<CollisionChecker> = None;
        let n_scans = scans.len();
        for (i, scan) in scans.into_iter().enumerate() {
            map.integrate_cloud(&PointCloud::new(origin, scan), 0.5);
            if i + 1 == n_scans {
                // The final step also removes keys, exercising the
                // removal side of the patch.
                map.retain_within(origin, retain_radius);
            }
            let export = PlannerMap::export(&map, &ExportConfig::new(0.5, 1e9, origin));
            match patched.as_mut() {
                Some(checker) => checker.update_map(export.clone()),
                None => {
                    let mut checker = CollisionChecker::new(export.clone(), margin, 0.5);
                    checker.prebuild_broad_phase();
                    patched = Some(checker);
                }
            }
            let patched = patched.as_mut().unwrap();
            let mut rebuilt = CollisionChecker::new(export.clone(), margin, 0.5);
            rebuilt.prebuild_broad_phase();
            prop_assert_eq!(
                patched.broad_phase_cells(),
                rebuilt.broad_phase_cells(),
                "candidate grids diverged after delta step {}",
                i
            );
            for q in roborun_conformance::boundary_probes(i as u64, 0.5) {
                prop_assert_eq!(
                    patched.point_free(q),
                    CollisionChecker::point_free_reference(&export, q, margin),
                    "patched query diverged at {} after step {}",
                    q,
                    i
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite conformance for the hazard walkers: a polyline with
    /// repeated/coincident waypoints must answer the same boolean as the
    /// plain polyline on every walker — degenerate zero-length segments
    /// may never skip an endpoint check. Exercises the static checker
    /// (`path_free`), the incremental re-validation
    /// (`path_clear_of_added`), the predicted-hazard walk and the peer
    /// swept-trajectory walk on the same duplicated input.
    #[test]
    fn duplicate_point_polylines_keep_endpoint_coverage(
        waypoints in arb_waypoints(),
        dup_mask in prop::collection::vec(0usize..3, 2..8),
        gap_center in -10.0f64..10.0,
    ) {
        let map = wall_map(gap_center - 2.0, gap_center + 2.0);
        let mut dup = Vec::new();
        for (i, p) in waypoints.iter().enumerate() {
            let copies = 1 + dup_mask[i % dup_mask.len()];
            for _ in 0..copies {
                dup.push(*p);
            }
        }

        // Static checker: the duplicated polyline visits the same points.
        let mut plain = CollisionChecker::new(map.clone(), 0.45, 0.5);
        let mut dupped = CollisionChecker::new(map.clone(), 0.45, 0.5);
        prop_assert_eq!(plain.path_free(&waypoints), dupped.path_free(&dup));
        // A zero-length segment is exactly the endpoint's point query.
        for &p in &waypoints {
            let mut a = CollisionChecker::new(map.clone(), 0.45, 0.5);
            let mut b = CollisionChecker::new(map.clone(), 0.45, 0.5);
            prop_assert_eq!(a.segment_free(p, p), b.point_free(p));
        }

        // Incremental re-validation against added voxels: every box of
        // the map is "added" relative to an empty snapshot.
        let empty = roborun_perception::PlannerMap::empty(0.5);
        let delta = map.delta_from(&empty).unwrap();
        prop_assert_eq!(
            CollisionChecker::path_clear_of_added(&delta, waypoints.iter().copied(), 0.3, 0.5),
            CollisionChecker::path_clear_of_added(&delta, dup.iter().copied(), 0.3, 0.5)
        );

        // Predicted-hazard and posterior polyline walks.
        let boxes: Vec<Aabb> = map.boxes().to_vec();
        let origin = Vec3::new(0.0, 0.0, 5.0);
        let hazards = PredictedHazards::new(boxes.clone(), 0.45, origin, 1e9);
        prop_assert_eq!(
            hazards.path_clear(waypoints.iter().copied()),
            hazards.path_clear(dup.iter().copied())
        );
        prop_assert_eq!(
            polyline_clear_of_boxes(waypoints.iter().copied(), &boxes, 0.45, origin, 1e9),
            polyline_clear_of_boxes(dup.iter().copied(), &boxes, 0.45, origin, 1e9)
        );

        // Peer swept-trajectory source: a degenerate segment query equals
        // the endpoint's point query, and a duplicated peer polyline
        // sweeps the same corridor as the plain one.
        let mut peers = PeerTrajectoryHazard::new(0.45, 0.3);
        peers.set_peer(0, &waypoints);
        let mut peers_dup = PeerTrajectoryHazard::new(0.45, 0.3);
        peers_dup.set_peer(0, &dup);
        for q in roborun_conformance::boundary_probes(7, 0.5) {
            prop_assert_eq!(peers.point_blocked(q), peers_dup.point_blocked(q));
        }
        let p = waypoints[0];
        let free_seg = HazardSource::segment_free(&mut peers, p, p);
        let free_pt = HazardSource::point_free(&mut peers, p);
        prop_assert_eq!(free_seg, free_pt);
    }
}
