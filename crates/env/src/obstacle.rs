//! Obstacles and the obstacle field the MAV navigates through.

use roborun_geom::{Aabb, Ray, Vec3};
use serde::{Deserialize, Serialize};

/// A single static obstacle, modelled as an axis-aligned box.
///
/// Warehouse racks, building fragments and debris are all boxes in the
/// reproduction; the navigation pipeline only ever observes them through
/// depth rays, so the exact shape family is immaterial as long as it
/// produces occlusion, gaps and collision hazards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Stable identifier (index in the generated world).
    pub id: u32,
    /// Occupied region.
    pub bounds: Aabb,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(id: u32, bounds: Aabb) -> Self {
        Obstacle { id, bounds }
    }

    /// Centre of the obstacle.
    pub fn center(&self) -> Vec3 {
        self.bounds.center()
    }
}

/// Result of casting a ray into the obstacle field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObstacleHit {
    /// Index of the obstacle that was hit.
    pub obstacle_id: u32,
    /// Distance along the ray to the hit point.
    pub distance: f64,
    /// World-space hit point.
    pub point: Vec3,
}

/// A collection of static obstacles with spatial queries.
///
/// This is the ground-truth world: sensors, visibility analysis and
/// collision checks all query it. The navigation pipeline itself only sees
/// the world through the perception stage (point clouds and the occupancy
/// map), mirroring the paper's setup where AirSim owns the ground truth.
///
/// # Example
///
/// ```
/// use roborun_env::{Obstacle, ObstacleField};
/// use roborun_geom::{Aabb, Vec3};
///
/// let field = ObstacleField::new(vec![
///     Obstacle::new(0, Aabb::from_center_half_extents(Vec3::new(5.0, 0.0, 1.0), Vec3::splat(1.0))),
/// ]);
/// assert!(field.is_occupied(Vec3::new(5.0, 0.0, 1.0)));
/// assert!(!field.is_occupied(Vec3::ZERO));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObstacleField {
    obstacles: Vec<Obstacle>,
}

impl ObstacleField {
    /// Creates a field from a list of obstacles.
    pub fn new(obstacles: Vec<Obstacle>) -> Self {
        ObstacleField { obstacles }
    }

    /// Creates an empty field (open sky).
    pub fn empty() -> Self {
        ObstacleField { obstacles: Vec::new() }
    }

    /// The obstacles in the field.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// `true` when the field has no obstacles.
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Adds an obstacle to the field.
    pub fn push(&mut self, obstacle: Obstacle) {
        self.obstacles.push(obstacle);
    }

    /// `true` when the point lies inside any obstacle.
    pub fn is_occupied(&self, p: Vec3) -> bool {
        self.obstacles.iter().any(|o| o.bounds.contains(p))
    }

    /// `true` when a sphere of radius `margin` centred at `p` intersects
    /// any obstacle — the collision predicate used with the MAV's body
    /// radius.
    pub fn is_occupied_with_margin(&self, p: Vec3, margin: f64) -> bool {
        self.obstacles
            .iter()
            .any(|o| o.bounds.distance_to_point(p) <= margin)
    }

    /// Euclidean distance from `p` to the closest obstacle surface, or
    /// `None` for an empty field.
    pub fn distance_to_nearest(&self, p: Vec3) -> Option<f64> {
        self.obstacles
            .iter()
            .map(|o| o.bounds.distance_to_point(p))
            .min_by(|a, b| a.partial_cmp(b).expect("distance is never NaN"))
    }

    /// The closest obstacle to `p`, or `None` for an empty field.
    pub fn nearest_obstacle(&self, p: Vec3) -> Option<&Obstacle> {
        self.obstacles.iter().min_by(|a, b| {
            a.bounds
                .distance_to_point(p)
                .partial_cmp(&b.bounds.distance_to_point(p))
                .expect("distance is never NaN")
        })
    }

    /// Obstacles whose surface lies within `radius` of `p`.
    pub fn obstacles_within(&self, p: Vec3, radius: f64) -> Vec<&Obstacle> {
        self.obstacles
            .iter()
            .filter(|o| o.bounds.distance_to_point(p) <= radius)
            .collect()
    }

    /// Casts a ray and returns the first obstacle hit within `max_range`.
    pub fn raycast(&self, ray: &Ray, max_range: f64) -> Option<ObstacleHit> {
        let mut best: Option<ObstacleHit> = None;
        for o in &self.obstacles {
            if let Some(hit) = ray.intersect_aabb(&o.bounds) {
                if hit.t_min <= max_range {
                    let candidate = ObstacleHit {
                        obstacle_id: o.id,
                        distance: hit.t_min,
                        point: ray.at(hit.t_min),
                    };
                    if best.map(|b| candidate.distance < b.distance).unwrap_or(true) {
                        best = Some(candidate);
                    }
                }
            }
        }
        best
    }

    /// Distance the ray can travel before hitting an obstacle, capped at
    /// `max_range`. This is the primitive behind the visibility model and
    /// the simulated depth cameras.
    pub fn free_distance(&self, ray: &Ray, max_range: f64) -> f64 {
        self.raycast(ray, max_range)
            .map(|h| h.distance)
            .unwrap_or(max_range)
    }

    /// `true` when the straight segment between `a` and `b` passes within
    /// `margin` of any obstacle. Ground-truth collision check used to
    /// validate planned paths in tests and to detect crashes in the
    /// simulator.
    pub fn segment_blocked(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.is_occupied_with_margin(a, margin);
        }
        // Sample finely relative to the margin (at least 1 cm).
        let step = (margin * 0.5).max(0.05).min(length);
        let ray = Ray::new(a, b - a);
        let mut t = 0.0;
        while t <= length {
            if self.is_occupied_with_margin(ray.at(t), margin) {
                return true;
            }
            t += step;
        }
        self.is_occupied_with_margin(b, margin)
    }

    /// A new field containing only the obstacles whose surface lies within
    /// `radius` of `p` — used by the sensor simulation to avoid testing
    /// every obstacle in a kilometre-long mission corridor against every
    /// depth ray.
    pub fn subfield_within(&self, p: Vec3, radius: f64) -> ObstacleField {
        ObstacleField {
            obstacles: self
                .obstacles
                .iter()
                .filter(|o| o.bounds.distance_to_point(p) <= radius)
                .copied()
                .collect(),
        }
    }

    /// Axis-aligned bounds enclosing every obstacle, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        let mut iter = self.obstacles.iter();
        let first = iter.next()?.bounds;
        Some(iter.fold(first, |acc, o| Aabb::union(&acc, &o.bounds)))
    }

    /// Fraction of sample points inside a cubic probe of half-extent
    /// `probe_half` centred at `p` that are occupied — the local obstacle
    /// density measure used by congestion maps (paper: "obstacle density
    /// determines the ratio of occupied cells around a grid cell").
    pub fn local_density(&self, p: Vec3, probe_half: f64, samples_per_axis: usize) -> f64 {
        if samples_per_axis == 0 {
            return 0.0;
        }
        let n = samples_per_axis;
        let mut occupied = 0usize;
        let mut total = 0usize;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let frac = |i: usize| {
                        if n == 1 {
                            0.5
                        } else {
                            i as f64 / (n - 1) as f64
                        }
                    };
                    let q = Vec3::new(
                        p.x - probe_half + 2.0 * probe_half * frac(ix),
                        p.y - probe_half + 2.0 * probe_half * frac(iy),
                        p.z - probe_half + 2.0 * probe_half * frac(iz),
                    );
                    total += 1;
                    if self.is_occupied(q) {
                        occupied += 1;
                    }
                }
            }
        }
        occupied as f64 / total as f64
    }
}

impl FromIterator<Obstacle> for ObstacleField {
    fn from_iter<T: IntoIterator<Item = Obstacle>>(iter: T) -> Self {
        ObstacleField {
            obstacles: iter.into_iter().collect(),
        }
    }
}

impl Extend<Obstacle> for ObstacleField {
    fn extend<T: IntoIterator<Item = Obstacle>>(&mut self, iter: T) {
        self.obstacles.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_box_field() -> ObstacleField {
        ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 2.0), Vec3::splat(1.0)),
        )])
    }

    fn two_box_field() -> ObstacleField {
        ObstacleField::new(vec![
            Obstacle::new(0, Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 2.0), Vec3::splat(1.0))),
            Obstacle::new(1, Aabb::from_center_half_extents(Vec3::new(20.0, 5.0, 2.0), Vec3::splat(2.0))),
        ])
    }

    #[test]
    fn empty_field_queries() {
        let f = ObstacleField::empty();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.is_occupied(Vec3::ZERO));
        assert!(f.distance_to_nearest(Vec3::ZERO).is_none());
        assert!(f.nearest_obstacle(Vec3::ZERO).is_none());
        assert!(f.bounds().is_none());
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(f.raycast(&ray, 100.0).is_none());
        assert_eq!(f.free_distance(&ray, 100.0), 100.0);
        assert!(!f.segment_blocked(Vec3::ZERO, Vec3::new(50.0, 0.0, 0.0), 0.5));
    }

    #[test]
    fn occupancy_and_margin() {
        let f = single_box_field();
        assert!(f.is_occupied(Vec3::new(10.0, 0.0, 2.0)));
        assert!(!f.is_occupied(Vec3::new(12.0, 0.0, 2.0)));
        // Margin extends the effective footprint.
        assert!(f.is_occupied_with_margin(Vec3::new(11.5, 0.0, 2.0), 0.6));
        assert!(!f.is_occupied_with_margin(Vec3::new(11.5, 0.0, 2.0), 0.4));
    }

    #[test]
    fn nearest_distance_and_obstacle() {
        let f = two_box_field();
        let d = f.distance_to_nearest(Vec3::new(13.0, 0.0, 2.0)).unwrap();
        assert!((d - 2.0).abs() < 1e-9);
        assert_eq!(f.nearest_obstacle(Vec3::new(13.0, 0.0, 2.0)).unwrap().id, 0);
        assert_eq!(f.nearest_obstacle(Vec3::new(19.0, 5.0, 2.0)).unwrap().id, 1);
        assert_eq!(f.obstacles_within(Vec3::new(10.0, 0.0, 2.0), 3.0).len(), 1);
        assert_eq!(f.obstacles_within(Vec3::new(15.0, 2.0, 2.0), 100.0).len(), 2);
    }

    #[test]
    fn raycast_hits_closest_obstacle() {
        let f = two_box_field();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::X);
        let hit = f.raycast(&ray, 100.0).unwrap();
        assert_eq!(hit.obstacle_id, 0);
        assert!((hit.distance - 9.0).abs() < 1e-9);
        assert!((hit.point - Vec3::new(9.0, 0.0, 2.0)).norm() < 1e-9);
        // Out of range.
        assert!(f.raycast(&ray, 5.0).is_none());
        assert_eq!(f.free_distance(&ray, 5.0), 5.0);
        assert!((f.free_distance(&ray, 100.0) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn segment_blocking() {
        let f = single_box_field();
        assert!(f.segment_blocked(Vec3::new(0.0, 0.0, 2.0), Vec3::new(20.0, 0.0, 2.0), 0.3));
        assert!(!f.segment_blocked(Vec3::new(0.0, 10.0, 2.0), Vec3::new(20.0, 10.0, 2.0), 0.3));
        // Degenerate zero-length segment.
        assert!(f.segment_blocked(Vec3::new(10.0, 0.0, 2.0), Vec3::new(10.0, 0.0, 2.0), 0.1));
    }

    #[test]
    fn bounds_cover_all_obstacles() {
        let f = two_box_field();
        let b = f.bounds().unwrap();
        for o in f.obstacles() {
            assert!(b.contains_aabb(&o.bounds));
        }
    }

    #[test]
    fn local_density_monotone_in_congestion() {
        let sparse = single_box_field();
        let mut dense = single_box_field();
        dense.extend((1..6).map(|i| {
            Obstacle::new(
                i,
                Aabb::from_center_half_extents(
                    Vec3::new(10.0 + i as f64 * 1.5, 0.0, 2.0),
                    Vec3::splat(1.0),
                ),
            )
        }));
        let p = Vec3::new(12.0, 0.0, 2.0);
        let d_sparse = sparse.local_density(p, 4.0, 5);
        let d_dense = dense.local_density(p, 4.0, 5);
        assert!(d_dense > d_sparse);
        assert!(d_dense <= 1.0 && d_sparse >= 0.0);
        assert_eq!(sparse.local_density(p, 4.0, 0), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let field: ObstacleField = (0..5)
            .map(|i| {
                Obstacle::new(
                    i,
                    Aabb::from_center_half_extents(Vec3::new(i as f64 * 5.0, 0.0, 0.0), Vec3::splat(0.5)),
                )
            })
            .collect();
        assert_eq!(field.len(), 5);
        let mut f2 = ObstacleField::empty();
        f2.extend(field.obstacles().iter().copied());
        assert_eq!(f2.len(), 5);
        f2.push(Obstacle::new(99, Aabb::new(Vec3::ZERO, Vec3::splat(1.0))));
        assert_eq!(f2.len(), 6);
    }
}
