//! Obstacles and the obstacle field the MAV navigates through.
//!
//! The field keeps a uniform broad-phase grid over its obstacles: every
//! query (occupancy, nearest distance, radius gathers, ray casts) visits
//! only the cells near the query instead of scanning every obstacle. The
//! grid is an exact accelerator — each query returns the same result as the
//! retained `*_linear` reference scans, which the equivalence proptests in
//! `tests/proptests.rs` enforce on random worlds.

use roborun_geom::index::{GridRayWalk, RingSearch, RingSearchOutcome};
use roborun_geom::{Aabb, Aabb4, Aabb8, FxHashMap, Ray, SimdWidth, Vec3, VoxelKey};
use serde::{Deserialize, Serialize};

/// A single static obstacle, modelled as an axis-aligned box.
///
/// Warehouse racks, building fragments and debris are all boxes in the
/// reproduction; the navigation pipeline only ever observes them through
/// depth rays, so the exact shape family is immaterial as long as it
/// produces occlusion, gaps and collision hazards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Stable identifier (index in the generated world).
    pub id: u32,
    /// Occupied region.
    pub bounds: Aabb,
}

impl Obstacle {
    /// Creates an obstacle.
    pub fn new(id: u32, bounds: Aabb) -> Self {
        Obstacle { id, bounds }
    }

    /// Centre of the obstacle.
    pub fn center(&self) -> Vec3 {
        self.bounds.center()
    }
}

/// Result of casting a ray into the obstacle field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObstacleHit {
    /// Index of the obstacle that was hit.
    pub obstacle_id: u32,
    /// Distance along the ray to the hit point.
    pub distance: f64,
    /// World-space hit point.
    pub point: Vec3,
}

/// Broad-phase cell size used when a field starts empty (metres).
const DEFAULT_CELL: f64 = 8.0;

/// Minimum real lanes for which the trailing partial [`Aabb8`] pack is
/// queried through the batched 8-lane kernel rather than the scalar
/// loop. Below this, 8 lanes of arithmetic for ≤4 real boxes costs more
/// than the scalar loop it replaces (the same measurement that keeps
/// partial [`Aabb4`] packs scalar); at 5+ real lanes the masked 8-wide
/// call wins even before vectorisation.
const W8_TAIL_MIN_LANES: usize = 5;

/// Per-cell pack storage at the width [`SimdWidth`] dispatch selected
/// when the broad phase was built. Both variants answer every query
/// bit-identically (each batched lane is bit-identical to the scalar
/// test and padding lanes are masked to misses), so width only changes
/// throughput, never results.
#[derive(Debug, Clone)]
enum PackStore {
    /// Four-lane packs: full packs batched, the trailing partial pack
    /// scalar (batched lane arithmetic only pays for itself when all
    /// four lanes carry real boxes — measured; a 1-box cell through a
    /// 4-lane kernel is ~4× the arithmetic with no SIMD win to offset
    /// it).
    W4(Vec<Aabb4>),
    /// Eight-lane packs: full packs batched, the trailing partial pack
    /// batched when it has at least [`W8_TAIL_MIN_LANES`] real lanes
    /// (padding lanes mask to misses), scalar below that.
    W8(Vec<Aabb8>),
}

impl PackStore {
    fn new(width: SimdWidth) -> Self {
        match width {
            SimdWidth::W4 => PackStore::W4(Vec::new()),
            SimdWidth::W8 => PackStore::W8(Vec::new()),
        }
    }
}

impl Default for PackStore {
    fn default() -> Self {
        PackStore::new(SimdWidth::detect())
    }
}

/// One broad-phase cell: the indices of the obstacles overlapping it,
/// plus their bounds packed in struct-of-arrays slabs ([`Aabb4`] or
/// [`Aabb8`], chosen once per grid by [`SimdWidth`] runtime dispatch) so
/// the raycast / margin / nearest inner loops consume the packs directly
/// — `W` branch-free lanes of contiguous `f64`s per slab test or
/// distance, instead of `W` gathered corner structs. For lane width `W`,
/// `packs[k]` holds the bounds of `ids[W·k .. W·k + packs[k].len()]`, in
/// the same order, so lane `l` of pack `k` *is* obstacle `ids[W·k + l]`.
#[derive(Debug, Clone, Default)]
struct CellSlab {
    ids: Vec<u32>,
    store: PackStore,
}

impl CellSlab {
    fn new(width: SimdWidth) -> Self {
        CellSlab {
            ids: Vec::new(),
            store: PackStore::new(width),
        }
    }

    fn push(&mut self, id: u32, bounds: &Aabb) {
        match &mut self.store {
            PackStore::W4(packs) => {
                if self.ids.len().is_multiple_of(4) {
                    packs.push(Aabb4::empty());
                }
                packs
                    .last_mut()
                    .expect("pack appended when lane count is a multiple of 4")
                    .push(bounds);
            }
            PackStore::W8(packs) => {
                if self.ids.len().is_multiple_of(8) {
                    packs.push(Aabb8::empty());
                }
                packs
                    .last_mut()
                    .expect("pack appended when lane count is a multiple of 8")
                    .push(bounds);
            }
        }
        self.ids.push(id);
    }

    /// Visits `(obstacle id, distance)` for every box in the cell,
    /// batching packs per the width policy and falling to the scalar
    /// distance for the rest. Lane order equals `ids` order and each
    /// batched lane distance is bit-identical to the scalar
    /// `Aabb::distance_to_point`, so any fold over this visit is
    /// equivalent to the per-id scalar loop.
    #[inline]
    fn for_each_distance(&self, p: Vec3, obstacles: &[Obstacle], mut visit: impl FnMut(u32, f64)) {
        match &self.store {
            PackStore::W4(packs) => {
                let full = self.ids.len() / 4;
                for (k, pack) in packs.iter().take(full).enumerate() {
                    let d4 = pack.distance_to_point4(p);
                    for (lane, &d) in d4.iter().enumerate() {
                        visit(self.ids[4 * k + lane], d);
                    }
                }
                for &i in &self.ids[4 * full..] {
                    visit(i, obstacles[i as usize].bounds.distance_to_point(p));
                }
            }
            PackStore::W8(packs) => {
                let batched = self.w8_batched_packs();
                for (k, pack) in packs.iter().take(batched).enumerate() {
                    let d8 = pack.distance_to_point8(p);
                    for (lane, &d) in d8.iter().take(pack.len()).enumerate() {
                        visit(self.ids[8 * k + lane], d);
                    }
                }
                for &i in &self.ids[self.w8_scalar_from(batched)..] {
                    visit(i, obstacles[i as usize].bounds.distance_to_point(p));
                }
            }
        }
    }

    /// `true` when any box in the cell lies within `margin` of `p` —
    /// order-independent, so batched packs may early-exit per pack.
    #[inline]
    fn any_within(&self, p: Vec3, margin: f64, obstacles: &[Obstacle]) -> bool {
        match &self.store {
            PackStore::W4(packs) => {
                let full = self.ids.len() / 4;
                packs
                    .iter()
                    .take(full)
                    .any(|pack| pack.distance_to_point4(p).iter().any(|&d| d <= margin))
                    || self.ids[4 * full..]
                        .iter()
                        .any(|&i| obstacles[i as usize].bounds.distance_to_point(p) <= margin)
            }
            PackStore::W8(packs) => {
                let batched = self.w8_batched_packs();
                packs
                    .iter()
                    .take(batched)
                    .any(|pack| pack.distance_to_point8(p).iter().any(|&d| d <= margin))
                    || self.ids[self.w8_scalar_from(batched)..]
                        .iter()
                        .any(|&i| obstacles[i as usize].bounds.distance_to_point(p) <= margin)
            }
        }
    }

    /// Visits `(obstacle id, t_min)` for every box in the cell the ray
    /// hits, batching packs per the width policy. Lane order equals
    /// `ids` order, each batched lane is bit-identical to the scalar
    /// `intersect_aabb`, and padding lanes are masked to misses, so any
    /// fold over this visit is equivalent to the per-id scalar loop.
    #[inline]
    fn for_each_ray_hit(&self, ray: &Ray, obstacles: &[Obstacle], mut visit: impl FnMut(u32, f64)) {
        match &self.store {
            PackStore::W4(packs) => {
                let full = self.ids.len() / 4;
                for (k, pack) in packs.iter().take(full).enumerate() {
                    let hits = ray.intersect_aabb4(pack);
                    for (lane, hit) in hits.iter().enumerate() {
                        if let Some(hit) = hit {
                            visit(self.ids[4 * k + lane], hit.t_min);
                        }
                    }
                }
                for &i in &self.ids[4 * full..] {
                    if let Some(hit) = ray.intersect_aabb(&obstacles[i as usize].bounds) {
                        visit(i, hit.t_min);
                    }
                }
            }
            PackStore::W8(packs) => {
                let batched = self.w8_batched_packs();
                for (k, pack) in packs.iter().take(batched).enumerate() {
                    let hits = ray.intersect_aabb8(pack);
                    for (lane, hit) in hits.iter().enumerate() {
                        if let Some(hit) = hit {
                            visit(self.ids[8 * k + lane], hit.t_min);
                        }
                    }
                }
                for &i in &self.ids[self.w8_scalar_from(batched)..] {
                    if let Some(hit) = ray.intersect_aabb(&obstacles[i as usize].bounds) {
                        visit(i, hit.t_min);
                    }
                }
            }
        }
    }

    /// Number of leading 8-lane packs that go through the batched
    /// kernel: all full packs, plus the trailing partial pack when it
    /// carries at least [`W8_TAIL_MIN_LANES`] real lanes.
    #[inline]
    fn w8_batched_packs(&self) -> usize {
        let full = self.ids.len() / 8;
        if self.ids.len() % 8 >= W8_TAIL_MIN_LANES {
            full + 1
        } else {
            full
        }
    }

    /// First id index the scalar path covers, given how many leading
    /// packs were batched (a batched partial tail covers `ids` to the
    /// end, so the scalar range is empty).
    #[inline]
    fn w8_scalar_from(&self, batched: usize) -> usize {
        (8 * batched).min(self.ids.len())
    }
}

/// The uniform broad-phase grid: obstacle indices bucketed by every cell
/// their bounds overlap, with per-cell SIMD-ready bound packs at the
/// width selected once at build time.
#[derive(Debug, Clone)]
struct BroadPhase {
    cell: f64,
    width: SimdWidth,
    cells: FxHashMap<VoxelKey, CellSlab>,
    /// Key-space bounds of all inserted obstacles (valid when `cells` is
    /// non-empty).
    key_min: VoxelKey,
    key_max: VoxelKey,
}

impl Default for BroadPhase {
    fn default() -> Self {
        BroadPhase {
            cell: DEFAULT_CELL,
            width: SimdWidth::detect(),
            cells: FxHashMap::default(),
            key_min: VoxelKey { x: 0, y: 0, z: 0 },
            key_max: VoxelKey { x: 0, y: 0, z: 0 },
        }
    }
}

impl BroadPhase {
    /// Builds a grid for `obstacles` at the host-detected pack width,
    /// sizing cells from the mean obstacle extent so each obstacle lands
    /// in O(1) cells.
    fn build(obstacles: &[Obstacle]) -> Self {
        BroadPhase::build_with_width(obstacles, SimdWidth::detect())
    }

    /// [`BroadPhase::build`] at an explicit pack width — the hook the
    /// equivalence tests and benches use to exercise both widths on one
    /// host.
    fn build_with_width(obstacles: &[Obstacle], width: SimdWidth) -> Self {
        let cell = if obstacles.is_empty() {
            DEFAULT_CELL
        } else {
            let mean_extent: f64 = obstacles
                .iter()
                .map(|o| o.bounds.size().max_component())
                .sum::<f64>()
                / obstacles.len() as f64;
            (2.0 * mean_extent).clamp(1.0, 64.0)
        };
        let mut grid = BroadPhase {
            cell,
            width,
            ..BroadPhase::default()
        };
        for (i, o) in obstacles.iter().enumerate() {
            grid.insert(i as u32, &o.bounds);
        }
        grid
    }

    fn insert(&mut self, index: u32, bounds: &Aabb) {
        let lo = VoxelKey::from_point(bounds.min, self.cell);
        let hi = VoxelKey::from_point(bounds.max, self.cell);
        if self.cells.is_empty() {
            self.key_min = lo;
            self.key_max = hi;
        } else {
            self.key_min = self.key_min.componentwise_min(lo);
            self.key_max = self.key_max.componentwise_max(hi);
        }
        let width = self.width;
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                for z in lo.z..=hi.z {
                    self.cells
                        .entry(VoxelKey { x, y, z })
                        .or_insert_with(|| CellSlab::new(width))
                        .push(index, bounds);
                }
            }
        }
    }

    /// Clamps a key range to the occupied key bounds.
    fn clamp_range(&self, lo: VoxelKey, hi: VoxelKey) -> (VoxelKey, VoxelKey) {
        (
            lo.componentwise_max(self.key_min),
            hi.componentwise_min(self.key_max),
        )
    }
}

/// A collection of static obstacles with grid-accelerated spatial queries.
///
/// This is the ground-truth world: sensors, visibility analysis and
/// collision checks all query it. The navigation pipeline itself only sees
/// the world through the perception stage (point clouds and the occupancy
/// map), mirroring the paper's setup where AirSim owns the ground truth.
///
/// # Example
///
/// ```
/// use roborun_env::{Obstacle, ObstacleField};
/// use roborun_geom::{Aabb, Vec3};
///
/// let field = ObstacleField::new(vec![
///     Obstacle::new(0, Aabb::from_center_half_extents(Vec3::new(5.0, 0.0, 1.0), Vec3::splat(1.0))),
/// ]);
/// assert!(field.is_occupied(Vec3::new(5.0, 0.0, 1.0)));
/// assert!(!field.is_occupied(Vec3::ZERO));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObstacleField {
    obstacles: Vec<Obstacle>,
    /// Broad-phase acceleration grid — fully derivable from `obstacles`,
    /// so it is excluded from serialized forms and rebuilt on load (see
    /// [`ObstacleField::rebuild_spatial_caches`]).
    #[serde(skip)]
    grid: BroadPhase,
}

impl ObstacleField {
    /// Creates a field from a list of obstacles. The broad-phase packs
    /// are laid out at the host-detected [`SimdWidth`] (AVX hosts get
    /// 8-lane [`Aabb8`] packs, everything else the 4-lane baseline);
    /// since both widths answer bit-identically, the choice is invisible
    /// to every caller.
    pub fn new(obstacles: Vec<Obstacle>) -> Self {
        let grid = BroadPhase::build(&obstacles);
        ObstacleField { obstacles, grid }
    }

    /// [`ObstacleField::new`] at an explicit broad-phase pack width —
    /// the hook equivalence tests and benches use to compare both
    /// widths on one host regardless of what it detects.
    pub fn with_simd_width(obstacles: Vec<Obstacle>, width: SimdWidth) -> Self {
        let grid = BroadPhase::build_with_width(&obstacles, width);
        ObstacleField { obstacles, grid }
    }

    /// The broad-phase pack width this field was built with.
    pub fn simd_width(&self) -> SimdWidth {
        self.grid.width
    }

    /// Creates an empty field (open sky).
    pub fn empty() -> Self {
        ObstacleField::default()
    }

    /// The obstacles in the field.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// `true` when the field has no obstacles.
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Broad-phase cell edge length (metres).
    pub fn broad_phase_cell(&self) -> f64 {
        self.grid.cell
    }

    /// Rebuilds the broad-phase grid from the obstacle list.
    ///
    /// The grid is `#[serde(skip)]`: it is derivable state, so serialized
    /// fields carry only the obstacles and a deserialized field holds a
    /// default (empty) grid. Deserializers must call this before querying —
    /// after it, every query answers exactly as on the original field
    /// (enforced by the round-trip test).
    pub fn rebuild_spatial_caches(&mut self) {
        self.grid = BroadPhase::build(&self.obstacles);
    }

    /// Adds an obstacle to the field.
    pub fn push(&mut self, obstacle: Obstacle) {
        let index = self.obstacles.len() as u32;
        self.grid.insert(index, &obstacle.bounds);
        self.obstacles.push(obstacle);
    }

    /// `true` when the point lies inside any obstacle.
    pub fn is_occupied(&self, p: Vec3) -> bool {
        let key = VoxelKey::from_point(p, self.grid.cell);
        self.grid
            .cells
            .get(&key)
            .map(|slab| {
                slab.ids
                    .iter()
                    .any(|&i| self.obstacles[i as usize].bounds.contains(p))
            })
            .unwrap_or(false)
    }

    /// `true` when a sphere of radius `margin` centred at `p` intersects
    /// any obstacle — the collision predicate used with the MAV's body
    /// radius.
    pub fn is_occupied_with_margin(&self, p: Vec3, margin: f64) -> bool {
        if self.obstacles.is_empty() {
            return false;
        }
        let lo = VoxelKey::from_point(p - Vec3::splat(margin), self.grid.cell);
        let hi = VoxelKey::from_point(p + Vec3::splat(margin), self.grid.cell);
        let (lo, hi) = self.grid.clamp_range(lo, hi);
        for x in lo.x..=hi.x {
            for y in lo.y..=hi.y {
                for z in lo.z..=hi.z {
                    if let Some(slab) = self.grid.cells.get(&VoxelKey { x, y, z }) {
                        // Batched lane distances per the width policy
                        // (padding never passes), scalar for the rest.
                        if slab.any_within(p, margin, &self.obstacles) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Euclidean distance from `p` to the closest obstacle surface, or
    /// `None` for an empty field.
    pub fn distance_to_nearest(&self, p: Vec3) -> Option<f64> {
        self.nearest_indexed(p).map(|(d, _)| d)
    }

    /// The closest obstacle to `p`, or `None` for an empty field.
    pub fn nearest_obstacle(&self, p: Vec3) -> Option<&Obstacle> {
        self.nearest_indexed(p)
            .map(|(_, i)| &self.obstacles[i as usize])
    }

    /// Expanding-ring nearest search; returns `(distance, obstacle index)`,
    /// breaking distance ties towards the lowest index (the same winner as
    /// a first-minimum linear scan). Falls back to the linear scan when the
    /// rings visit more cells than a scan would cost.
    fn nearest_indexed(&self, p: Vec3) -> Option<(f64, u32)> {
        if self.obstacles.is_empty() {
            return None;
        }
        let mut best: Option<(f64, u32)> = None;
        let outcome = RingSearch::new(self.grid.cell, self.grid.key_min, self.grid.key_max)
            .with_fallback_budget(2 * self.obstacles.len())
            .run(p, None, |key| {
                if let Some(slab) = self.grid.cells.get(&key) {
                    // Lane distances are bit-identical to the scalar
                    // `distance_to_point` and visited in `ids` order, so
                    // the tie-breaking fold below selects exactly the
                    // winner the per-id scalar loop would.
                    slab.for_each_distance(p, &self.obstacles, |i, d| {
                        let better = match best {
                            None => true,
                            Some((bd, bi)) => d < bd || (d == bd && i < bi),
                        };
                        if better {
                            best = Some((d, i));
                        }
                    });
                }
                best.map(|(d, _)| d * d)
            });
        if outcome == RingSearchOutcome::BudgetExhausted {
            // The ring search has grown more expensive than a scan: finish
            // linearly (same comparison, so the result and its tie-breaking
            // are unchanged).
            for (i, o) in self.obstacles.iter().enumerate() {
                let d = o.bounds.distance_to_point(p);
                let better = match best {
                    None => true,
                    Some((bd, bi)) => d < bd || (d == bd && (i as u32) < bi),
                };
                if better {
                    best = Some((d, i as u32));
                }
            }
        }
        best
    }

    /// Obstacles whose surface lies within `radius` of `p`.
    pub fn obstacles_within(&self, p: Vec3, radius: f64) -> Vec<&Obstacle> {
        self.within_indices(p, radius)
            .into_iter()
            .map(|i| &self.obstacles[i as usize])
            .collect()
    }

    /// Indices (ascending) of obstacles within `radius` of `p`.
    fn within_indices(&self, p: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        if self.obstacles.is_empty() || radius < 0.0 {
            return out;
        }
        let lo = VoxelKey::from_point(p - Vec3::splat(radius), self.grid.cell);
        let hi = VoxelKey::from_point(p + Vec3::splat(radius), self.grid.cell);
        let (lo, hi) = self.grid.clamp_range(lo, hi);
        let cube_cells = (hi.x - lo.x + 1).max(0) as u128
            * (hi.y - lo.y + 1).max(0) as u128
            * (hi.z - lo.z + 1).max(0) as u128;
        if cube_cells > self.grid.cells.len() as u128 {
            for (key, slab) in &self.grid.cells {
                if key.x >= lo.x
                    && key.x <= hi.x
                    && key.y >= lo.y
                    && key.y <= hi.y
                    && key.z >= lo.z
                    && key.z <= hi.z
                {
                    out.extend(slab.ids.iter().copied());
                }
            }
        } else {
            for x in lo.x..=hi.x {
                for y in lo.y..=hi.y {
                    for z in lo.z..=hi.z {
                        if let Some(slab) = self.grid.cells.get(&VoxelKey { x, y, z }) {
                            out.extend(slab.ids.iter().copied());
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&i| self.obstacles[i as usize].bounds.distance_to_point(p) <= radius);
        out
    }

    /// Casts a ray and returns the first obstacle hit within `max_range`.
    ///
    /// Walks only the grid cells along the ray (DDA traversal) and stops as
    /// soon as no later cell can contain a closer hit.
    pub fn raycast(&self, ray: &Ray, max_range: f64) -> Option<ObstacleHit> {
        if self.obstacles.is_empty() {
            return None;
        }
        // Track the winning obstacle *index* so distance ties resolve to
        // the lowest index — the same winner as the linear first-wins scan.
        let mut best: Option<(ObstacleHit, u32)> = None;
        for (key, t_entry) in GridRayWalk::new(ray, self.grid.cell, max_range) {
            if let Some((b, _)) = &best {
                if t_entry > b.distance {
                    break;
                }
            }
            let Some(slab) = self.grid.cells.get(&key) else {
                continue;
            };
            // Slab-test the cell's SoA packs batched per the width
            // policy, the rest through the scalar test. Each batched
            // lane is bit-identical to the scalar `intersect_aabb`, and
            // lanes are visited in `ids` order, so the tie-breaking fold
            // picks the same winner as the per-id scalar loop.
            slab.for_each_ray_hit(ray, &self.obstacles, |i, t_min| {
                if t_min <= max_range {
                    let better = match &best {
                        None => true,
                        Some((b, bi)) => t_min < b.distance || (t_min == b.distance && i < *bi),
                    };
                    if better {
                        best = Some((
                            ObstacleHit {
                                obstacle_id: self.obstacles[i as usize].id,
                                distance: t_min,
                                point: ray.at(t_min),
                            },
                            i,
                        ));
                    }
                }
            });
        }
        best.map(|(hit, _)| hit)
    }

    /// Distance the ray can travel before hitting an obstacle, capped at
    /// `max_range`. This is the primitive behind the visibility model and
    /// the simulated depth cameras.
    pub fn free_distance(&self, ray: &Ray, max_range: f64) -> f64 {
        self.raycast(ray, max_range)
            .map(|h| h.distance)
            .unwrap_or(max_range)
    }

    /// `true` when the straight segment between `a` and `b` passes within
    /// `margin` of any obstacle. Ground-truth collision check used to
    /// validate planned paths in tests and to detect crashes in the
    /// simulator.
    pub fn segment_blocked(&self, a: Vec3, b: Vec3, margin: f64) -> bool {
        let length = a.distance(b);
        if length < 1e-9 {
            return self.is_occupied_with_margin(a, margin);
        }
        // Sample finely relative to the margin (at least 1 cm).
        let step = (margin * 0.5).max(0.05).min(length);
        let ray = Ray::new(a, b - a);
        let mut t = 0.0;
        while t <= length {
            if self.is_occupied_with_margin(ray.at(t), margin) {
                return true;
            }
            t += step;
        }
        self.is_occupied_with_margin(b, margin)
    }

    /// A new field containing only the obstacles whose surface lies within
    /// `radius` of `p` — used by the sensor simulation to avoid testing
    /// every obstacle in a kilometre-long mission corridor against every
    /// depth ray.
    pub fn subfield_within(&self, p: Vec3, radius: f64) -> ObstacleField {
        ObstacleField::new(
            self.within_indices(p, radius)
                .into_iter()
                .map(|i| self.obstacles[i as usize])
                .collect(),
        )
    }

    /// Axis-aligned bounds enclosing every obstacle, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        let mut iter = self.obstacles.iter();
        let first = iter.next()?.bounds;
        Some(iter.fold(first, |acc, o| Aabb::union(&acc, &o.bounds)))
    }

    /// Fraction of sample points inside a cubic probe of half-extent
    /// `probe_half` centred at `p` that are occupied — the local obstacle
    /// density measure used by congestion maps (paper: "obstacle density
    /// determines the ratio of occupied cells around a grid cell").
    pub fn local_density(&self, p: Vec3, probe_half: f64, samples_per_axis: usize) -> f64 {
        if samples_per_axis == 0 {
            return 0.0;
        }
        let n = samples_per_axis;
        let mut occupied = 0usize;
        let mut total = 0usize;
        for ix in 0..n {
            for iy in 0..n {
                for iz in 0..n {
                    let frac = |i: usize| {
                        if n == 1 {
                            0.5
                        } else {
                            i as f64 / (n - 1) as f64
                        }
                    };
                    let q = Vec3::new(
                        p.x - probe_half + 2.0 * probe_half * frac(ix),
                        p.y - probe_half + 2.0 * probe_half * frac(iy),
                        p.z - probe_half + 2.0 * probe_half * frac(iz),
                    );
                    total += 1;
                    if self.is_occupied(q) {
                        occupied += 1;
                    }
                }
            }
        }
        occupied as f64 / total as f64
    }

    // --- Retained linear reference implementations -----------------------
    //
    // These are the pre-index O(n) scans. They define the exact semantics
    // the grid-accelerated queries must reproduce; the equivalence
    // proptests compare both on random worlds, and the kernel-scaling
    // benches measure the speedup against them.

    /// Linear-scan reference for [`ObstacleField::is_occupied`].
    pub fn is_occupied_linear(&self, p: Vec3) -> bool {
        self.obstacles.iter().any(|o| o.bounds.contains(p))
    }

    /// Linear-scan reference for [`ObstacleField::is_occupied_with_margin`].
    pub fn is_occupied_with_margin_linear(&self, p: Vec3, margin: f64) -> bool {
        self.obstacles
            .iter()
            .any(|o| o.bounds.distance_to_point(p) <= margin)
    }

    /// Linear-scan reference for [`ObstacleField::distance_to_nearest`].
    pub fn distance_to_nearest_linear(&self, p: Vec3) -> Option<f64> {
        self.obstacles
            .iter()
            .map(|o| o.bounds.distance_to_point(p))
            .min_by(|a, b| a.partial_cmp(b).expect("distance is never NaN"))
    }

    /// Linear-scan reference for [`ObstacleField::nearest_obstacle`].
    pub fn nearest_obstacle_linear(&self, p: Vec3) -> Option<&Obstacle> {
        self.obstacles.iter().min_by(|a, b| {
            a.bounds
                .distance_to_point(p)
                .partial_cmp(&b.bounds.distance_to_point(p))
                .expect("distance is never NaN")
        })
    }

    /// Linear-scan reference for [`ObstacleField::obstacles_within`].
    pub fn obstacles_within_linear(&self, p: Vec3, radius: f64) -> Vec<&Obstacle> {
        self.obstacles
            .iter()
            .filter(|o| o.bounds.distance_to_point(p) <= radius)
            .collect()
    }

    /// Linear-scan reference for [`ObstacleField::raycast`].
    pub fn raycast_linear(&self, ray: &Ray, max_range: f64) -> Option<ObstacleHit> {
        let mut best: Option<ObstacleHit> = None;
        for o in &self.obstacles {
            if let Some(hit) = ray.intersect_aabb(&o.bounds) {
                if hit.t_min <= max_range {
                    let candidate = ObstacleHit {
                        obstacle_id: o.id,
                        distance: hit.t_min,
                        point: ray.at(hit.t_min),
                    };
                    if best
                        .map(|b| candidate.distance < b.distance)
                        .unwrap_or(true)
                    {
                        best = Some(candidate);
                    }
                }
            }
        }
        best
    }
}

impl FromIterator<Obstacle> for ObstacleField {
    fn from_iter<T: IntoIterator<Item = Obstacle>>(iter: T) -> Self {
        ObstacleField::new(iter.into_iter().collect())
    }
}

impl Extend<Obstacle> for ObstacleField {
    fn extend<T: IntoIterator<Item = Obstacle>>(&mut self, iter: T) {
        for obstacle in iter {
            self.push(obstacle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_box_field() -> ObstacleField {
        ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 2.0), Vec3::splat(1.0)),
        )])
    }

    fn two_box_field() -> ObstacleField {
        ObstacleField::new(vec![
            Obstacle::new(
                0,
                Aabb::from_center_half_extents(Vec3::new(10.0, 0.0, 2.0), Vec3::splat(1.0)),
            ),
            Obstacle::new(
                1,
                Aabb::from_center_half_extents(Vec3::new(20.0, 5.0, 2.0), Vec3::splat(2.0)),
            ),
        ])
    }

    #[test]
    fn empty_field_queries() {
        let f = ObstacleField::empty();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.is_occupied(Vec3::ZERO));
        assert!(f.distance_to_nearest(Vec3::ZERO).is_none());
        assert!(f.nearest_obstacle(Vec3::ZERO).is_none());
        assert!(f.bounds().is_none());
        let ray = Ray::new(Vec3::ZERO, Vec3::X);
        assert!(f.raycast(&ray, 100.0).is_none());
        assert_eq!(f.free_distance(&ray, 100.0), 100.0);
        assert!(!f.segment_blocked(Vec3::ZERO, Vec3::new(50.0, 0.0, 0.0), 0.5));
    }

    #[test]
    fn occupancy_and_margin() {
        let f = single_box_field();
        assert!(f.is_occupied(Vec3::new(10.0, 0.0, 2.0)));
        assert!(!f.is_occupied(Vec3::new(12.0, 0.0, 2.0)));
        // Margin extends the effective footprint.
        assert!(f.is_occupied_with_margin(Vec3::new(11.5, 0.0, 2.0), 0.6));
        assert!(!f.is_occupied_with_margin(Vec3::new(11.5, 0.0, 2.0), 0.4));
    }

    #[test]
    fn nearest_distance_and_obstacle() {
        let f = two_box_field();
        let d = f.distance_to_nearest(Vec3::new(13.0, 0.0, 2.0)).unwrap();
        assert!((d - 2.0).abs() < 1e-9);
        assert_eq!(f.nearest_obstacle(Vec3::new(13.0, 0.0, 2.0)).unwrap().id, 0);
        assert_eq!(f.nearest_obstacle(Vec3::new(19.0, 5.0, 2.0)).unwrap().id, 1);
        assert_eq!(f.obstacles_within(Vec3::new(10.0, 0.0, 2.0), 3.0).len(), 1);
        assert_eq!(
            f.obstacles_within(Vec3::new(15.0, 2.0, 2.0), 100.0).len(),
            2
        );
    }

    #[test]
    fn raycast_hits_closest_obstacle() {
        let f = two_box_field();
        let ray = Ray::new(Vec3::new(0.0, 0.0, 2.0), Vec3::X);
        let hit = f.raycast(&ray, 100.0).unwrap();
        assert_eq!(hit.obstacle_id, 0);
        assert!((hit.distance - 9.0).abs() < 1e-9);
        assert!((hit.point - Vec3::new(9.0, 0.0, 2.0)).norm() < 1e-9);
        // Out of range.
        assert!(f.raycast(&ray, 5.0).is_none());
        assert_eq!(f.free_distance(&ray, 5.0), 5.0);
        assert!((f.free_distance(&ray, 100.0) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn segment_blocking() {
        let f = single_box_field();
        assert!(f.segment_blocked(Vec3::new(0.0, 0.0, 2.0), Vec3::new(20.0, 0.0, 2.0), 0.3));
        assert!(!f.segment_blocked(Vec3::new(0.0, 10.0, 2.0), Vec3::new(20.0, 10.0, 2.0), 0.3));
        // Degenerate zero-length segment.
        assert!(f.segment_blocked(Vec3::new(10.0, 0.0, 2.0), Vec3::new(10.0, 0.0, 2.0), 0.1));
    }

    #[test]
    fn bounds_cover_all_obstacles() {
        let f = two_box_field();
        let b = f.bounds().unwrap();
        for o in f.obstacles() {
            assert!(b.contains_aabb(&o.bounds));
        }
    }

    #[test]
    fn local_density_monotone_in_congestion() {
        let sparse = single_box_field();
        let mut dense = single_box_field();
        dense.extend((1..6).map(|i| {
            Obstacle::new(
                i,
                Aabb::from_center_half_extents(
                    Vec3::new(10.0 + i as f64 * 1.5, 0.0, 2.0),
                    Vec3::splat(1.0),
                ),
            )
        }));
        let p = Vec3::new(12.0, 0.0, 2.0);
        let d_sparse = sparse.local_density(p, 4.0, 5);
        let d_dense = dense.local_density(p, 4.0, 5);
        assert!(d_dense > d_sparse);
        assert!(d_dense <= 1.0 && d_sparse >= 0.0);
        assert_eq!(sparse.local_density(p, 4.0, 0), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let field: ObstacleField = (0..5)
            .map(|i| {
                Obstacle::new(
                    i,
                    Aabb::from_center_half_extents(
                        Vec3::new(i as f64 * 5.0, 0.0, 0.0),
                        Vec3::splat(0.5),
                    ),
                )
            })
            .collect();
        assert_eq!(field.len(), 5);
        let mut f2 = ObstacleField::empty();
        f2.extend(field.obstacles().iter().copied());
        assert_eq!(f2.len(), 5);
        f2.push(Obstacle::new(99, Aabb::new(Vec3::ZERO, Vec3::splat(1.0))));
        assert_eq!(f2.len(), 6);
    }

    #[test]
    fn subfield_keeps_nearby_obstacles_only() {
        let f = two_box_field();
        let sub = f.subfield_within(Vec3::new(10.0, 0.0, 2.0), 3.0);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.obstacles()[0].id, 0);
        let all = f.subfield_within(Vec3::new(15.0, 2.0, 2.0), 100.0);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn serde_skip_round_trip_answers_identically() {
        // What a serde round trip produces with `#[serde(skip)]` on the
        // grid: the data fields restored, the skipped cache at its
        // `Default`. Before the rebuild the grid is empty (queries would
        // miss); after `rebuild_spatial_caches` every query family answers
        // exactly like the original field.
        let original = two_box_field();
        let mut restored = ObstacleField {
            obstacles: original.obstacles.clone(),
            grid: BroadPhase::default(),
        };
        assert!(
            !restored.is_occupied(Vec3::new(10.0, 0.0, 2.0)),
            "an unrebuilt grid must be observably stale, or the test is vacuous"
        );
        restored.rebuild_spatial_caches();
        let probes = [
            Vec3::new(10.0, 0.0, 2.0),
            Vec3::new(13.0, 0.0, 2.0),
            Vec3::new(19.0, 5.0, 2.0),
            Vec3::new(-30.0, 7.0, 1.0),
        ];
        for p in probes {
            assert_eq!(restored.is_occupied(p), original.is_occupied(p));
            assert_eq!(
                restored.is_occupied_with_margin(p, 0.6),
                original.is_occupied_with_margin(p, 0.6)
            );
            assert_eq!(
                restored.distance_to_nearest(p),
                original.distance_to_nearest(p)
            );
            assert_eq!(
                restored.nearest_obstacle(p).map(|o| o.id),
                original.nearest_obstacle(p).map(|o| o.id)
            );
            let ray = Ray::new(p, Vec3::new(1.0, 0.2, 0.0));
            assert_eq!(restored.raycast(&ray, 80.0), original.raycast(&ray, 80.0));
        }
        assert_eq!(restored.broad_phase_cell(), original.broad_phase_cell());
    }

    #[test]
    fn incremental_push_is_queryable() {
        let mut f = ObstacleField::empty();
        for i in 0..50u32 {
            f.push(Obstacle::new(
                i,
                Aabb::from_center_half_extents(
                    Vec3::new(i as f64 * 3.0, (i % 7) as f64, 2.0),
                    Vec3::splat(0.8),
                ),
            ));
            // The freshly inserted obstacle is immediately visible to every
            // query family.
            let c = f.obstacles()[i as usize].center();
            assert!(f.is_occupied(c));
            assert_eq!(f.nearest_obstacle(c).unwrap().id, i);
            assert!(f.obstacles_within(c, 0.1).iter().any(|o| o.id == i));
        }
        assert_eq!(f.len(), 50);
    }
}
