//! Congestion heat-maps over the mission corridor (paper Fig. 9).
//!
//! Figure 9 visualises each point's congestion level as a heat map with the
//! travelled trajectories overlaid. The [`CongestionMap`] rasterises the
//! obstacle field's local density over a horizontal grid at cruise altitude
//! so experiments can print the same map, and the runtime's profilers can
//! cheaply query congestion along planned trajectories.

use crate::{Environment, ObstacleField};
use roborun_geom::{Aabb, CellIndex, Grid3, Vec3};
use serde::{Deserialize, Serialize};

/// A horizontal congestion (local obstacle density) map at cruise altitude.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionMap {
    grid: Grid3,
    values: Vec<f64>,
    altitude: f64,
}

impl CongestionMap {
    /// Builds a congestion map for an environment with the given horizontal
    /// cell size (metres).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0`.
    pub fn build(env: &Environment, cell_size: f64) -> Self {
        Self::build_for_field(env.field(), env.bounds(), env.start().z, cell_size)
    }

    /// Builds a congestion map for an arbitrary obstacle field over the
    /// given bounds, probing at `altitude`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0`.
    pub fn build_for_field(
        field: &ObstacleField,
        bounds: Aabb,
        altitude: f64,
        cell_size: f64,
    ) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        // Flatten to a single-cell-thick slab at the probe altitude.
        let slab = Aabb::new(
            Vec3::new(bounds.min.x, bounds.min.y, altitude - cell_size * 0.5),
            Vec3::new(bounds.max.x, bounds.max.y, altitude + cell_size * 0.5),
        );
        let grid = Grid3::new(slab, cell_size);
        let mut values = vec![0.0; grid.len()];
        for idx in grid.iter() {
            let center = grid.cell_center(idx);
            let density =
                field.local_density(Vec3::new(center.x, center.y, altitude), cell_size, 3);
            values[grid.linear_index(idx)] = density;
        }
        CongestionMap {
            grid,
            values,
            altitude,
        }
    }

    /// The grid backing the map.
    pub fn grid(&self) -> &Grid3 {
        &self.grid
    }

    /// Altitude at which the congestion was probed.
    pub fn altitude(&self) -> f64 {
        self.altitude
    }

    /// Congestion (occupied fraction, `[0, 1]`) at a world position, or
    /// `None` when the position is outside the map.
    pub fn congestion_at(&self, p: Vec3) -> Option<f64> {
        let probe = Vec3::new(p.x, p.y, self.altitude);
        let idx = self.grid.cell_of(probe)?;
        Some(self.values[self.grid.linear_index(idx)])
    }

    /// Congestion of a cell by index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn congestion_of(&self, idx: CellIndex) -> f64 {
        self.values[self.grid.linear_index(idx)]
    }

    /// Maximum congestion over the whole map.
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean congestion over the whole map.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Renders the map as rows of numbers (one row per Y cell, X across),
    /// for textual "heat map" output in the experiment harness.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        let (nx, ny, _) = self.grid.dims();
        let mut rows = Vec::with_capacity(ny);
        for iy in 0..ny {
            let mut row = Vec::with_capacity(nx);
            for ix in 0..nx {
                row.push(self.values[self.grid.linear_index(CellIndex::new(ix, iy, 0))]);
            }
            rows.push(row);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DifficultyConfig, EnvironmentGenerator, Obstacle, Zone};

    #[test]
    fn empty_field_has_zero_congestion() {
        let bounds = Aabb::new(Vec3::new(0.0, -20.0, 0.0), Vec3::new(100.0, 20.0, 20.0));
        let map = CongestionMap::build_for_field(&ObstacleField::empty(), bounds, 5.0, 10.0);
        assert_eq!(map.peak(), 0.0);
        assert_eq!(map.mean(), 0.0);
        assert_eq!(map.congestion_at(Vec3::new(50.0, 0.0, 5.0)), Some(0.0));
        assert!(map.congestion_at(Vec3::new(-500.0, 0.0, 5.0)).is_none());
    }

    #[test]
    fn congestion_peaks_near_obstacles() {
        let bounds = Aabb::new(Vec3::new(0.0, -20.0, 0.0), Vec3::new(100.0, 20.0, 20.0));
        let field = ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::new(Vec3::new(48.0, -4.0, 0.0), Vec3::new(56.0, 4.0, 20.0)),
        )]);
        let map = CongestionMap::build_for_field(&field, bounds, 5.0, 4.0);
        let near = map.congestion_at(Vec3::new(52.0, 0.0, 5.0)).unwrap();
        let far = map.congestion_at(Vec3::new(10.0, -15.0, 5.0)).unwrap();
        assert!(near > far);
        assert!(near > 0.3);
        assert_eq!(far, 0.0);
        assert!(map.peak() >= near);
        assert!(map.mean() <= map.peak());
    }

    #[test]
    fn generated_environment_congestion_matches_zones() {
        let env = EnvironmentGenerator::new(DifficultyConfig::mid()).generate(4);
        let map = CongestionMap::build(&env, 20.0);
        // Average congestion in zones A and C should exceed zone B.
        let mut zone_sum = [0.0f64; 3];
        let mut zone_n = [0usize; 3];
        for idx in map.grid().iter() {
            let c = map.grid().cell_center(idx);
            let zone = env.zone_at(c);
            let v = map.congestion_of(idx);
            let zi = match zone {
                Zone::A => 0,
                Zone::B => 1,
                Zone::C => 2,
            };
            zone_sum[zi] += v;
            zone_n[zi] += 1;
        }
        let avg = |i: usize| zone_sum[i] / zone_n[i].max(1) as f64;
        assert!(avg(0) > avg(1), "zone A {} vs B {}", avg(0), avg(1));
        assert!(avg(2) > avg(1), "zone C {} vs B {}", avg(2), avg(1));
    }

    #[test]
    fn rows_cover_grid() {
        let bounds = Aabb::new(Vec3::new(0.0, -10.0, 0.0), Vec3::new(40.0, 10.0, 20.0));
        let map = CongestionMap::build_for_field(&ObstacleField::empty(), bounds, 5.0, 10.0);
        let rows = map.to_rows();
        let (nx, ny, _) = map.grid().dims();
        assert_eq!(rows.len(), ny);
        assert!(rows.iter().all(|r| r.len() == nx));
    }
}
