//! Procedural MAV mission environments for the RoboRun reproduction.
//!
//! The paper evaluates RoboRun inside an Unreal/AirSim hardware-in-the-loop
//! simulation whose worlds are produced by a custom *environment generator*
//! that "adjusts environment difficulty with hyperparameters that change the
//! number of congestion clusters, obstacle density, and spread" (Section IV).
//! This crate is our from-scratch substitute: deterministic, laptop-scale
//! obstacle worlds that expose exactly the spatial features RoboRun reasons
//! about — obstacle gaps, visibility, congestion and zone structure.
//!
//! Key types:
//!
//! * [`Obstacle`] / [`ObstacleField`] — axis-aligned obstacles with nearest
//!   -distance, occupancy and ray-cast queries.
//! * [`DifficultyConfig`] — the paper's Fig. 8a difficulty knobs
//!   (obstacle density, obstacle spread, goal distance), including the full
//!   27-environment evaluation matrix.
//! * [`EnvironmentGenerator`] / [`Environment`] — Gaussian congestion
//!   clusters arranged into the paper's A (congested start), B (open
//!   middle), C (congested end) zone layout.
//! * [`visibility`] — how far the MAV can see along a direction, limited by
//!   obstacles and a weather/fog ceiling (the paper's *space visibility*).
//! * [`gaps`] — average/minimum gap between obstacles near a position (the
//!   paper's *space precision* demand).
//!
//! # Example
//!
//! ```
//! use roborun_env::{DifficultyConfig, EnvironmentGenerator};
//!
//! let config = DifficultyConfig::mid();
//! let env = EnvironmentGenerator::new(config).generate(42);
//! assert!(env.obstacles().len() > 0);
//! assert!(env.start().distance(env.goal()) >= config.goal_distance * 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod difficulty;
pub mod gaps;
pub mod generator;
pub mod obstacle;
pub mod visibility;
pub mod zones;

pub use congestion::CongestionMap;
pub use difficulty::{DifficultyConfig, DifficultyLevel};
pub use gaps::GapAnalysis;
pub use generator::{Environment, EnvironmentGenerator, GeneratorParams};
pub use obstacle::{Obstacle, ObstacleField};
pub use visibility::VisibilityModel;
pub use zones::{Zone, ZoneLayout};
