//! Gap analysis between obstacles (the paper's *space precision* demand).
//!
//! The governor's precision constraint (paper Eq. 3) bounds the perception
//! precision `p₀` by `min(p₁, g_avg, d_obs)` and from below by `g_min`,
//! where `g_avg` / `g_min` are the average / minimum gap between obstacles
//! in the observed volume and `d_obs` is the distance to the nearest
//! obstacle. This module computes those quantities from the set of
//! obstacles near a position.

use crate::{Obstacle, ObstacleField};
use roborun_geom::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// Gap statistics around a query position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapAnalysis {
    /// Minimum surface-to-surface gap between any pair of nearby obstacles
    /// (metres). Equals `open_space_gap` when fewer than two obstacles are
    /// nearby.
    pub min_gap: f64,
    /// Average surface-to-surface gap between nearby obstacle pairs.
    pub avg_gap: f64,
    /// Distance from the query position to the nearest obstacle surface
    /// (the paper's `d_obs`). Equals `open_space_gap` with no obstacles.
    pub nearest_obstacle: f64,
    /// Number of obstacles considered.
    pub obstacle_count: usize,
}

impl GapAnalysis {
    /// Gap value reported in completely open space; chosen to exceed every
    /// precision knob's coarsest setting so it never constrains the solver.
    pub const OPEN_SPACE_GAP: f64 = 100.0;

    /// Analyses the gaps around `position`, considering obstacles whose
    /// surface lies within `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius <= 0`.
    pub fn analyze(field: &ObstacleField, position: Vec3, radius: f64) -> Self {
        assert!(
            radius > 0.0,
            "analysis radius must be positive, got {radius}"
        );
        let nearby: Vec<&Obstacle> = field.obstacles_within(position, radius);
        let nearest_obstacle = field
            .distance_to_nearest(position)
            .unwrap_or(Self::OPEN_SPACE_GAP)
            .min(Self::OPEN_SPACE_GAP);

        if nearby.len() < 2 {
            return GapAnalysis {
                min_gap: Self::OPEN_SPACE_GAP,
                avg_gap: Self::OPEN_SPACE_GAP,
                nearest_obstacle,
                obstacle_count: nearby.len(),
            };
        }

        let mut min_gap = f64::INFINITY;
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..nearby.len() {
            for j in (i + 1)..nearby.len() {
                let gap = aabb_gap(&nearby[i].bounds, &nearby[j].bounds);
                min_gap = min_gap.min(gap);
                sum += gap;
                pairs += 1;
            }
        }
        let avg_gap = sum / pairs as f64;
        GapAnalysis {
            min_gap: min_gap.min(Self::OPEN_SPACE_GAP),
            avg_gap: avg_gap.min(Self::OPEN_SPACE_GAP),
            nearest_obstacle,
            obstacle_count: nearby.len(),
        }
    }

    /// `true` when the surroundings are effectively open space.
    pub fn is_open_space(&self) -> bool {
        self.obstacle_count < 2 && self.nearest_obstacle >= Self::OPEN_SPACE_GAP * 0.5
    }
}

/// Surface-to-surface distance between two AABBs (zero when they touch or
/// overlap).
pub fn aabb_gap(a: &Aabb, b: &Aabb) -> f64 {
    let mut sq = 0.0;
    for axis in 0..3 {
        let lo_a = a.min[axis];
        let hi_a = a.max[axis];
        let lo_b = b.min[axis];
        let hi_b = b.max[axis];
        let d = if hi_a < lo_b {
            lo_b - hi_a
        } else if hi_b < lo_a {
            lo_a - hi_b
        } else {
            0.0
        };
        sq += d * d;
    }
    sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_at(id: u32, x: f64, y: f64, half: f64) -> Obstacle {
        Obstacle::new(
            id,
            Aabb::from_center_half_extents(Vec3::new(x, y, 5.0), Vec3::splat(half)),
        )
    }

    #[test]
    fn aabb_gap_cases() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::new(3.0, 0.0, 0.0), Vec3::new(4.0, 1.0, 1.0));
        assert!((aabb_gap(&a, &b) - 2.0).abs() < 1e-12);
        assert_eq!(aabb_gap(&a, &a), 0.0);
        let overlapping = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0));
        assert_eq!(aabb_gap(&a, &overlapping), 0.0);
        // Diagonal separation combines axes.
        let c = Aabb::new(Vec3::new(4.0, 4.0, 0.0), Vec3::new(5.0, 5.0, 1.0));
        assert!((aabb_gap(&a, &c) - (18.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn open_space_analysis() {
        let g = GapAnalysis::analyze(&ObstacleField::empty(), Vec3::ZERO, 30.0);
        assert_eq!(g.min_gap, GapAnalysis::OPEN_SPACE_GAP);
        assert_eq!(g.avg_gap, GapAnalysis::OPEN_SPACE_GAP);
        assert_eq!(g.nearest_obstacle, GapAnalysis::OPEN_SPACE_GAP);
        assert_eq!(g.obstacle_count, 0);
        assert!(g.is_open_space());
    }

    #[test]
    fn single_obstacle_reports_distance_not_gap() {
        let field = ObstacleField::new(vec![box_at(0, 10.0, 0.0, 1.0)]);
        let g = GapAnalysis::analyze(&field, Vec3::new(0.0, 0.0, 5.0), 30.0);
        assert_eq!(g.obstacle_count, 1);
        assert!((g.nearest_obstacle - 9.0).abs() < 1e-9);
        assert_eq!(g.min_gap, GapAnalysis::OPEN_SPACE_GAP);
        assert!(!g.is_open_space());
    }

    #[test]
    fn tight_aisle_has_small_gaps() {
        // Two rows of racks 3 m apart (surface to surface).
        let field = ObstacleField::new(vec![
            box_at(0, 10.0, -2.5, 1.0),
            box_at(1, 10.0, 2.5, 1.0),
            box_at(2, 14.0, -2.5, 1.0),
            box_at(3, 14.0, 2.5, 1.0),
        ]);
        let g = GapAnalysis::analyze(&field, Vec3::new(12.0, 0.0, 5.0), 20.0);
        assert_eq!(g.obstacle_count, 4);
        assert!((g.min_gap - 2.0).abs() < 1e-9, "min gap {}", g.min_gap);
        assert!(g.avg_gap >= g.min_gap);
        assert!(g.nearest_obstacle < 3.0);
        assert!(!g.is_open_space());
    }

    #[test]
    fn denser_fields_have_smaller_average_gap() {
        let sparse =
            ObstacleField::new(vec![box_at(0, 0.0, -15.0, 1.0), box_at(1, 0.0, 15.0, 1.0)]);
        let dense = ObstacleField::new(vec![
            box_at(0, 0.0, -4.0, 1.0),
            box_at(1, 0.0, 0.0, 1.0),
            box_at(2, 0.0, 4.0, 1.0),
        ]);
        let p = Vec3::new(0.0, 2.0, 5.0);
        let gs = GapAnalysis::analyze(&sparse, p, 40.0);
        let gd = GapAnalysis::analyze(&dense, p, 40.0);
        assert!(gd.avg_gap < gs.avg_gap);
        assert!(gd.min_gap <= gs.min_gap);
    }

    #[test]
    fn radius_limits_the_obstacles_considered() {
        let field = ObstacleField::new(vec![box_at(0, 5.0, 0.0, 1.0), box_at(1, 200.0, 0.0, 1.0)]);
        let g = GapAnalysis::analyze(&field, Vec3::new(0.0, 0.0, 5.0), 20.0);
        assert_eq!(g.obstacle_count, 1);
        let g_all = GapAnalysis::analyze(&field, Vec3::new(0.0, 0.0, 5.0), 500.0);
        assert_eq!(g_all.obstacle_count, 2);
        // Far-apart pair still gets capped at the open-space gap.
        assert!(g_all.min_gap <= GapAnalysis::OPEN_SPACE_GAP);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        let _ = GapAnalysis::analyze(&ObstacleField::empty(), Vec3::ZERO, 0.0);
    }
}
