//! The A / B / C zone layout of the paper's evaluation environments.
//!
//! Section V-B: "Each randomly generated environment contains two congested
//! (A and C) zones and one non-congested (B) zone. Congested zones are
//! located at the beginning and end of the mission to emulate
//! warehouse-building or hospital-building combinations. [...] zone B is
//! homogeneous and bigger, representing a longer distance traveled, either
//! in open skies or over a city."

use roborun_geom::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three mission zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// Congested zone at the start of the mission (e.g. origin warehouse).
    A,
    /// Large, open, homogeneous middle zone (open sky / over the city).
    B,
    /// Congested zone at the end of the mission (e.g. destination warehouse
    /// or disaster site).
    C,
}

impl Zone {
    /// All zones in mission order.
    pub const ALL: [Zone; 3] = [Zone::A, Zone::B, Zone::C];

    /// `true` for the congested zones (A and C).
    pub fn is_congested(self) -> bool {
        matches!(self, Zone::A | Zone::C)
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Zone::A => f.write_str("A"),
            Zone::B => f.write_str("B"),
            Zone::C => f.write_str("C"),
        }
    }
}

/// Partition of the mission corridor into zones along the mission axis.
///
/// The mission runs along the +X axis from `start_x` to
/// `start_x + total_length`. Zone A occupies the first `congested_fraction`
/// of the corridor, zone C the last `congested_fraction`, and zone B
/// everything in between.
///
/// # Example
///
/// ```
/// use roborun_env::{Zone, ZoneLayout};
/// let layout = ZoneLayout::new(0.0, 900.0, 0.2);
/// assert_eq!(layout.zone_at_x(50.0), Zone::A);
/// assert_eq!(layout.zone_at_x(450.0), Zone::B);
/// assert_eq!(layout.zone_at_x(880.0), Zone::C);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneLayout {
    start_x: f64,
    total_length: f64,
    congested_fraction: f64,
}

impl ZoneLayout {
    /// Creates a layout for a corridor starting at `start_x` with length
    /// `total_length`; each congested zone takes `congested_fraction` of
    /// the corridor.
    ///
    /// # Panics
    ///
    /// Panics if `total_length <= 0` or `congested_fraction` is outside
    /// `(0, 0.5)`.
    pub fn new(start_x: f64, total_length: f64, congested_fraction: f64) -> Self {
        assert!(total_length > 0.0, "corridor length must be positive");
        assert!(
            congested_fraction > 0.0 && congested_fraction < 0.5,
            "congested fraction must be in (0, 0.5), got {congested_fraction}"
        );
        ZoneLayout {
            start_x,
            total_length,
            congested_fraction,
        }
    }

    /// Mission corridor length.
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// X coordinate where the corridor starts.
    pub fn start_x(&self) -> f64 {
        self.start_x
    }

    /// X range `(min, max)` of a zone.
    pub fn zone_range(&self, zone: Zone) -> (f64, f64) {
        let a_end = self.start_x + self.total_length * self.congested_fraction;
        let c_start = self.start_x + self.total_length * (1.0 - self.congested_fraction);
        let end = self.start_x + self.total_length;
        match zone {
            Zone::A => (self.start_x, a_end),
            Zone::B => (a_end, c_start),
            Zone::C => (c_start, end),
        }
    }

    /// Zone containing the given X coordinate (clamped to the corridor).
    pub fn zone_at_x(&self, x: f64) -> Zone {
        let (_, a_end) = self.zone_range(Zone::A);
        let (c_start, _) = self.zone_range(Zone::C);
        if x < a_end {
            Zone::A
        } else if x < c_start {
            Zone::B
        } else {
            Zone::C
        }
    }

    /// Zone containing a world point (only the X coordinate matters).
    pub fn zone_at(&self, p: Vec3) -> Zone {
        self.zone_at_x(p.x)
    }

    /// Centre of a congestion cluster for the given zone: the middle of
    /// zone A / C, and the middle of the corridor for B.
    pub fn cluster_center_x(&self, zone: Zone) -> f64 {
        let (lo, hi) = self.zone_range(zone);
        0.5 * (lo + hi)
    }

    /// Fraction of the corridor each congested zone occupies.
    pub fn congested_fraction(&self) -> f64 {
        self.congested_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_partitions_cover_corridor_without_overlap() {
        let layout = ZoneLayout::new(10.0, 1000.0, 0.15);
        let (a_lo, a_hi) = layout.zone_range(Zone::A);
        let (b_lo, b_hi) = layout.zone_range(Zone::B);
        let (c_lo, c_hi) = layout.zone_range(Zone::C);
        assert_eq!(a_lo, 10.0);
        assert_eq!(c_hi, 1010.0);
        assert!((a_hi - b_lo).abs() < 1e-12);
        assert!((b_hi - c_lo).abs() < 1e-12);
        assert!((a_hi - a_lo) - 150.0 < 1e-9);
        assert!((c_hi - c_lo) - 150.0 < 1e-9);
        // Zone B is the biggest, per the paper.
        assert!(b_hi - b_lo > (a_hi - a_lo));
    }

    #[test]
    fn zone_lookup() {
        let layout = ZoneLayout::new(0.0, 900.0, 0.2);
        assert_eq!(layout.zone_at_x(-50.0), Zone::A); // before corridor clamps to A
        assert_eq!(layout.zone_at_x(0.0), Zone::A);
        assert_eq!(layout.zone_at_x(179.0), Zone::A);
        assert_eq!(layout.zone_at_x(181.0), Zone::B);
        assert_eq!(layout.zone_at_x(719.0), Zone::B);
        assert_eq!(layout.zone_at_x(721.0), Zone::C);
        assert_eq!(layout.zone_at_x(2000.0), Zone::C); // past corridor clamps to C
        assert_eq!(layout.zone_at(Vec3::new(450.0, 33.0, 5.0)), Zone::B);
    }

    #[test]
    fn cluster_centers_inside_their_zone() {
        let layout = ZoneLayout::new(0.0, 600.0, 0.25);
        for zone in Zone::ALL {
            let cx = layout.cluster_center_x(zone);
            let (lo, hi) = layout.zone_range(zone);
            assert!(cx > lo && cx < hi);
            assert_eq!(layout.zone_at_x(cx), zone);
        }
    }

    #[test]
    fn congested_flags() {
        assert!(Zone::A.is_congested());
        assert!(!Zone::B.is_congested());
        assert!(Zone::C.is_congested());
        assert_eq!(format!("{}", Zone::B), "B");
    }

    #[test]
    #[should_panic(expected = "congested fraction")]
    fn rejects_bad_fraction() {
        let _ = ZoneLayout::new(0.0, 100.0, 0.6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_length() {
        let _ = ZoneLayout::new(0.0, 0.0, 0.2);
    }
}
