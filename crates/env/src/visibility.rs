//! Space visibility (paper Section II-A, fourth spatial feature).
//!
//! "Visibility (measured in meters) depends on how occluded a MAV's view is
//! due to obstacles or weather conditions (i.e., blue sky vs. fog).
//! Visibility impacts the processing deadline as the further a MAV can see,
//! the more time it has to spot and plan around obstacles."
//!
//! The model casts a small horizontal fan of rays around the direction of
//! travel into the ground-truth obstacle field and takes the *minimum* free
//! distance (the MAV must plan for the most occluded direction it may fly
//! towards), capped by a weather ceiling.

use crate::ObstacleField;
use roborun_geom::{Ray, Vec3};
use serde::{Deserialize, Serialize};

/// Visibility model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisibilityModel {
    /// Weather/sensor ceiling on visibility (metres). Clear sky in the
    /// paper's setups corresponds to ~40 m sensing range; fog lowers it.
    pub max_visibility: f64,
    /// Floor on reported visibility (metres); even brushing an obstacle the
    /// MAV can "see" at least this far, preventing a zero time budget.
    pub min_visibility: f64,
    /// Half-angle of the horizontal fan of rays (radians).
    pub fan_half_angle: f64,
    /// Number of rays in the fan (≥ 1).
    pub fan_rays: usize,
}

impl Default for VisibilityModel {
    fn default() -> Self {
        VisibilityModel {
            max_visibility: 40.0,
            min_visibility: 2.0,
            fan_half_angle: 0.35, // ~20 degrees
            fan_rays: 5,
        }
    }
}

impl VisibilityModel {
    /// Creates a model with a given weather ceiling and the default fan.
    ///
    /// # Panics
    ///
    /// Panics if `max_visibility <= 0`.
    pub fn with_ceiling(max_visibility: f64) -> Self {
        assert!(max_visibility > 0.0, "visibility ceiling must be positive");
        VisibilityModel {
            max_visibility,
            ..VisibilityModel::default()
        }
    }

    /// Worst-case visibility a spatially-oblivious design must assume: the
    /// floor value, because a static design cannot rely on the environment
    /// ever being clearer than its most pessimistic assumption.
    pub fn worst_case(&self) -> f64 {
        self.min_visibility
    }

    /// Visibility (metres) from `position` when travelling towards
    /// `direction`, limited by obstacles and the weather ceiling.
    ///
    /// Returns the ceiling when the direction is degenerate (zero vector).
    pub fn visibility(&self, field: &ObstacleField, position: Vec3, direction: Vec3) -> f64 {
        let Some(dir) = Vec3::new(direction.x, direction.y, 0.0).try_normalize() else {
            return self.max_visibility;
        };
        let rays = self.fan_rays.max(1);
        let mut min_free = self.max_visibility;
        for i in 0..rays {
            let frac = if rays == 1 {
                0.0
            } else {
                (i as f64 / (rays - 1) as f64) * 2.0 - 1.0
            };
            let yaw = frac * self.fan_half_angle;
            let ray = Ray::new(position, dir.rotate_z(yaw));
            let free = field.free_distance(&ray, self.max_visibility);
            min_free = min_free.min(free);
        }
        min_free.max(self.min_visibility)
    }

    /// Visibility towards a specific goal point.
    pub fn visibility_towards(&self, field: &ObstacleField, position: Vec3, target: Vec3) -> f64 {
        self.visibility(field, position, target - position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obstacle;
    use roborun_geom::Aabb;

    fn wall_at(x: f64) -> ObstacleField {
        ObstacleField::new(vec![Obstacle::new(
            0,
            Aabb::new(Vec3::new(x, -50.0, 0.0), Vec3::new(x + 1.0, 50.0, 20.0)),
        )])
    }

    #[test]
    fn open_sky_reports_ceiling() {
        let m = VisibilityModel::default();
        let v = m.visibility(&ObstacleField::empty(), Vec3::new(0.0, 0.0, 5.0), Vec3::X);
        assert_eq!(v, m.max_visibility);
    }

    #[test]
    fn wall_limits_visibility() {
        let m = VisibilityModel::default();
        let field = wall_at(10.0);
        let v = m.visibility(&field, Vec3::new(0.0, 0.0, 5.0), Vec3::X);
        assert!(v < m.max_visibility);
        assert!(v <= 10.5 && v >= m.min_visibility);
        // Looking away from the wall restores the ceiling.
        let away = m.visibility(&field, Vec3::new(0.0, 0.0, 5.0), -Vec3::X);
        assert_eq!(away, m.max_visibility);
    }

    #[test]
    fn visibility_never_below_floor() {
        let m = VisibilityModel::default();
        let field = wall_at(0.5);
        let v = m.visibility(&field, Vec3::new(0.0, 0.0, 5.0), Vec3::X);
        assert_eq!(v, m.min_visibility);
        assert_eq!(m.worst_case(), m.min_visibility);
    }

    #[test]
    fn fog_ceiling_caps_visibility() {
        let clear = VisibilityModel::with_ceiling(40.0);
        let foggy = VisibilityModel::with_ceiling(8.0);
        let field = wall_at(30.0);
        let p = Vec3::new(0.0, 0.0, 5.0);
        assert!(clear.visibility(&field, p, Vec3::X) > foggy.visibility(&field, p, Vec3::X));
        assert_eq!(foggy.visibility(&ObstacleField::empty(), p, Vec3::X), 8.0);
    }

    #[test]
    fn degenerate_direction_returns_ceiling() {
        let m = VisibilityModel::default();
        let v = m.visibility(&wall_at(5.0), Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO);
        assert_eq!(v, m.max_visibility);
    }

    #[test]
    fn visibility_towards_goal() {
        let m = VisibilityModel::default();
        let field = wall_at(10.0);
        let v = m.visibility_towards(&field, Vec3::new(0.0, 0.0, 5.0), Vec3::new(100.0, 0.0, 5.0));
        assert!(v < m.max_visibility);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_ceiling() {
        let _ = VisibilityModel::with_ceiling(0.0);
    }
}
